//! SpMM-powered graph analytics: batched personalized PageRank and
//! semi-supervised label propagation over a simulated GPU — the class of
//! graph-computing workloads the paper's introduction motivates.
//!
//! Run with `cargo run --release --example graph_analytics`.

use hc_spmm::analytics;
use hc_spmm::gpu_sim::DeviceSpec;
use hc_spmm::graph_sparse::gen;
use hc_spmm::hc_core::HcSpmm;

fn main() {
    let device = DeviceSpec::rtx3090();
    let graph = gen::community(4_096, 24_576, 64, 0.92, 11);
    let kernel = HcSpmm::default();
    println!("graph: {} vertices, {} non-zeros", graph.nrows, graph.nnz());

    // Batched personalized PageRank from 32 sources at once: the batch
    // turns 32 SpMV sweeps into one SpMM per iteration.
    let p = analytics::transition_matrix(&graph);
    let sources: Vec<usize> = (0..32).map(|i| i * 128).collect();
    let pr = analytics::personalized_pagerank(&p, &sources, 0.85, 1e-6, 200, &kernel, &device);
    println!(
        "\npersonalized PageRank: {} sources, converged in {} iterations \
         (residual {:.2e}), simulated {:.3} ms",
        sources.len(),
        pr.iterations,
        pr.residual,
        pr.time_ms
    );
    let top = (0..graph.nrows)
        .max_by(|&a, &b| pr.state[(a, 0)].partial_cmp(&pr.state[(b, 0)]).unwrap())
        .unwrap();
    println!(
        "highest rank for source 0: vertex {top} ({:.4})",
        pr.state[(top, 0)]
    );

    // Label propagation: one seed per community, 8 communities labeled.
    let a_norm = graph.gcn_normalize();
    let seeds: Vec<(usize, usize)> = (0..8).map(|c| (c * 512, c)).collect();
    let lp = analytics::label_propagation(&a_norm, &seeds, 8, 20, &kernel, &device);
    let labels = analytics::argmax_labels(&lp.state);
    // The generator builds 64-vertex communities; each seed's own community
    // should adopt its label.
    let hits = seeds
        .iter()
        .map(|&(v, c)| {
            let block = v / 64;
            (block * 64..(block + 1) * 64)
                .filter(|&u| labels[u] == c)
                .count()
        })
        .sum::<usize>();
    println!(
        "\nlabel propagation: 20 rounds, 8 seeded communities of 64 vertices, \
         simulated {:.3} ms, {hits}/512 seed-community vertices labeled correctly",
        lp.time_ms
    );
}
