//! Quickstart: multiply a sparse graph adjacency by a dense feature matrix
//! with HC-SpMM and compare against the baseline kernels.
//!
//! Run with `cargo run --release --example quickstart`.

use hc_spmm::baselines::{CusparseSpmm, DtcSpmm, GeSpmm, SputnikSpmm, TcGnnSpmm};
use hc_spmm::gpu_sim::DeviceSpec;
use hc_spmm::graph_sparse::{gen, DenseMatrix};
use hc_spmm::hc_core::{HcSpmm, SpmmKernel};

fn main() {
    // A mid-sized community graph: 8 192 vertices, ~65 000 undirected edges.
    let graph = gen::community(8_192, 65_536, 256, 0.9, 42);
    let features = DenseMatrix::random_features(graph.nrows, 64, 7);
    let device = DeviceSpec::rtx3090();

    println!(
        "graph: {} vertices, {} non-zeros, density {:.5}",
        graph.nrows,
        graph.nnz(),
        graph.density()
    );

    // HC-SpMM: preprocessing (window condensing + core classification) is a
    // one-time step, then the hybrid kernel runs as often as needed.
    let hc = HcSpmm::default();
    let pre = hc.preprocess(&graph, &device);
    let (cuda_windows, tensor_windows) = pre.window_split();
    println!(
        "preprocessing: {:.3} ms, {} windows -> {} on CUDA cores, {} on Tensor cores",
        pre.run.time_ms,
        cuda_windows + tensor_windows,
        cuda_windows,
        tensor_windows
    );

    let result = hc.spmm_preprocessed(&pre, &graph, &features, &device);
    println!("HC-SpMM: {:.4} ms (simulated RTX 3090)", result.run.time_ms);

    // Validate against the trusted reference multiply.
    let reference = graph.spmm_reference(&features);
    let err = reference.max_abs_diff(&result.z);
    println!("max deviation from exact FP32 reference: {err:.2e} (TF32 Tensor windows)");
    assert!(err < 0.05);

    // How do the paper's comparison kernels fare on the same input?
    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(CusparseSpmm),
        Box::new(SputnikSpmm),
        Box::new(GeSpmm),
        Box::new(TcGnnSpmm::default()),
        Box::new(DtcSpmm::default()),
    ];
    println!("\nkernel comparison (same graph, same features):");
    for k in &kernels {
        let r = k.spmm(&graph, &features, &device);
        println!(
            "  {:<10} {:.4} ms  ({:.2}x vs HC-SpMM)",
            k.name(),
            r.run.time_ms,
            r.run.time_ms / result.run.time_ms
        );
    }
}
