//! Layout optimization with LOA: take a badly laid-out graph, run the
//! Algorithm 6 reordering, and watch row windows flip to Tensor cores
//! (§V-B / Figs. 14–15 in miniature).
//!
//! Run with `cargo run --release --example layout_tuning`.

use hc_spmm::gpu_sim::DeviceSpec;
use hc_spmm::graph_sparse::{gen, DenseMatrix, RowWindowPartition};
use hc_spmm::hc_core::{HcSpmm, Loa};

fn main() {
    let device = DeviceSpec::rtx3090();
    // A clustered graph whose vertex numbering was scattered — the Amazon
    // pathology from the paper's evaluation.
    let clustered = gen::molecules(8_192, 28_000, 5);
    let graph = gen::scatter_relabel(&clustered, 6);
    let x = DenseMatrix::random_features(graph.nrows, 96, 7);

    let hc = HcSpmm::default();
    let report = |name: &str, g: &hc_spmm::graph_sparse::Csr| {
        let pre = hc.preprocess(g, &device);
        let (cuda, tensor) = pre.window_split();
        let t = hc.spmm_preprocessed(&pre, g, &x, &device).run.time_ms;
        let intensity = RowWindowPartition::build(g).mean_computing_intensity();
        println!(
            "  {name:<10} SpMM {t:.4} ms | windows: {cuda} CUDA / {tensor} Tensor | \
             mean computing intensity {intensity:.2}"
        );
        t
    };

    println!("before LOA:");
    let before = report("original", &graph);

    let loa = Loa::default();
    let (optimized, rep) = loa.optimize(&graph);
    println!(
        "\nLOA: {} vertex moves computed with {} elementary ops \
         (modeled {:.4} s host time, paid once)",
        rep.perm.len(),
        rep.ops,
        rep.seconds
    );

    println!("\nafter LOA:");
    let after = report("optimized", &optimized);

    println!(
        "\nSpMM improvement: {:.1}% — amortized over thousands of training \
         iterations (Fig. 16)",
        (before - after) / before * 100.0
    );
}
