//! Train a two-layer GCN with HC-SpMM-backed aggregation and kernel fusion,
//! comparing epoch times against the GE-SpMM and TC-GNN backends — the
//! §VI-C workload in miniature.
//!
//! Run with `cargo run --release --example gnn_training`.

use hc_spmm::baselines;
use hc_spmm::gnn::aggregator::{Aggregator, HcAggregator, KernelAggregator};
use hc_spmm::gnn::train::{mean_timing, synthetic_labels, Trainer};
use hc_spmm::gnn::Gcn;
use hc_spmm::gpu_sim::DeviceSpec;
use hc_spmm::graph_sparse::{DatasetId, DenseMatrix};

fn main() {
    let device = DeviceSpec::rtx3090();
    // The Pubmed analogue from the dataset registry at 1/64 scale.
    let ds = DatasetId::PM.load();
    let a = ds.adj.gcn_normalize();
    let dim = ds.spec.dim.min(512);
    let x = DenseMatrix::random_features(a.nrows, dim, 1);
    let labels = synthetic_labels(a.nrows, 22);
    println!(
        "dataset: {} analogue ({} vertices, {} edges, dim {dim})",
        ds.spec.name,
        a.nrows,
        ds.adj.nnz() / 2
    );

    let trainer = Trainer {
        lr: 0.05,
        epochs: 5,
    };
    let report = |name: &str, agg: &dyn Aggregator| {
        let mut model = Gcn::new(dim, 32, 22, 3);
        let epochs = trainer.train_gcn(&mut model, &a, &x, &labels, agg, &device);
        let t = mean_timing(&epochs);
        println!(
            "  {name:<22} forward {:.4} ms  backward {:.4} ms  (final loss {:.4})",
            t.forward_ms, t.backward_ms, t.loss
        );
        t.forward_ms + t.backward_ms
    };

    println!("\naverage epoch time over {} epochs:", trainer.epochs);
    let hc = report("HC-SpMM (fused)", &HcAggregator::new(&a, &device));
    let hc_nf = report(
        "HC-SpMM (no fusion)",
        &HcAggregator::new_unfused(&a, &device),
    );
    let ge = report("GE-SpMM", &KernelAggregator::new(baselines::GeSpmm));
    let tc = report(
        "TC-GNN",
        &KernelAggregator::new(baselines::TcGnnSpmm::default()),
    );

    println!(
        "\nspeedups: {:.2}x vs GE-SpMM, {:.2}x vs TC-GNN, fusion gain {:.1}%",
        ge / hc,
        tc / hc,
        (hc_nf - hc) / hc * 100.0
    );
    assert!(hc <= ge && hc <= tc, "HC-SpMM should win end to end");
}
