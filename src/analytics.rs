//! SpMM-backed graph analytics.
//!
//! The paper motivates HC-SpMM with graph-computing workloads beyond GNNs:
//! PageRank, label propagation and other propagation-style algorithms whose
//! inner loop is exactly `Z = Ā·X` (§I cites PageRank and graph clustering;
//! batching personalized PageRank sources turns the SpMV into an SpMM).
//! This module implements three such workloads on top of any
//! [`SpmmKernel`], with simulated time accounting.

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::{Csr, DenseMatrix};
use hc_core::SpmmKernel;

/// Result of an iterative propagation run.
#[derive(Debug, Clone)]
pub struct PropagationResult {
    /// Final state matrix (`|V| × k`).
    pub state: DenseMatrix,
    /// Iterations executed.
    pub iterations: usize,
    /// Total simulated kernel time (ms).
    pub time_ms: f64,
    /// Final residual (max state change in the last iteration).
    pub residual: f32,
}

/// Column-stochastic transition matrix `P = A·D⁻¹` for PageRank.
pub fn transition_matrix(a: &Csr) -> Csr {
    assert_eq!(a.nrows, a.ncols);
    let mut out = a.clone();
    // Out-degree of column j = degree of row j (symmetric storage not
    // required; we use the transpose's row sums = column sums of A).
    let at = a.transpose();
    let mut inv_deg = vec![0f32; a.ncols];
    for (j, d) in inv_deg.iter_mut().enumerate() {
        let deg: f32 = at.row_vals(j).iter().sum();
        *d = if deg > 0.0 { 1.0 / deg } else { 0.0 };
    }
    for r in 0..out.nrows {
        let (s, e) = out.row_range(r);
        for i in s..e {
            out.vals[i] *= inv_deg[out.col_idx[i] as usize];
        }
    }
    out
}

/// Batched personalized PageRank: each column of the state is the rank
/// vector of one source. `P` must come from [`transition_matrix`].
///
/// Iterates `R ← (1-d)·E + d·P·R` until `max |ΔR| < tol` or `max_iters`.
pub fn personalized_pagerank(
    p: &Csr,
    sources: &[usize],
    damping: f32,
    tol: f32,
    max_iters: usize,
    kernel: &dyn SpmmKernel,
    dev: &DeviceSpec,
) -> PropagationResult {
    let n = p.nrows;
    let k = sources.len();
    let mut e = DenseMatrix::zeros(n, k);
    for (j, &s) in sources.iter().enumerate() {
        assert!(s < n, "source {s} out of range");
        e[(s, j)] = 1.0;
    }
    let mut state = e.clone();
    let mut time_ms = 0.0;
    let mut residual = f32::INFINITY;
    let mut iterations = 0;
    while iterations < max_iters && residual > tol {
        let r = kernel.spmm(p, &state, dev);
        time_ms += r.run.time_ms;
        let next = r.z.scale(damping).add(&e.scale(1.0 - damping));
        residual = next.max_abs_diff(&state);
        state = next;
        iterations += 1;
    }
    PropagationResult {
        state,
        iterations,
        time_ms,
        residual,
    }
}

/// Semi-supervised label propagation: seed rows carry one-hot labels, which
/// diffuse over the normalized adjacency; seeds are clamped each round.
pub fn label_propagation(
    a_norm: &Csr,
    seeds: &[(usize, usize)],
    classes: usize,
    iters: usize,
    kernel: &dyn SpmmKernel,
    dev: &DeviceSpec,
) -> PropagationResult {
    let n = a_norm.nrows;
    let mut state = DenseMatrix::zeros(n, classes);
    for &(v, c) in seeds {
        assert!(v < n && c < classes);
        state[(v, c)] = 1.0;
    }
    let mut time_ms = 0.0;
    let mut residual = 0.0;
    for _ in 0..iters {
        let r = kernel.spmm(a_norm, &state, dev);
        time_ms += r.run.time_ms;
        let mut next = r.z;
        for &(v, c) in seeds {
            let row = next.row_mut(v);
            row.iter_mut().for_each(|x| *x = 0.0);
            row[c] = 1.0;
        }
        residual = next.max_abs_diff(&state);
        state = next;
    }
    PropagationResult {
        state,
        iterations: iters,
        time_ms,
        residual,
    }
}

/// Predicted class per vertex = argmax over the propagated label matrix.
pub fn argmax_labels(state: &DenseMatrix) -> Vec<usize> {
    (0..state.rows)
        .map(|r| {
            state
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// K-hop feature aggregation (the SGC-style pre-propagation): returns
/// `Āᵏ · X` and the accumulated kernel run.
pub fn k_hop_features(
    a_norm: &Csr,
    x: &DenseMatrix,
    hops: usize,
    kernel: &dyn SpmmKernel,
    dev: &DeviceSpec,
) -> (DenseMatrix, KernelRun) {
    let mut state = x.clone();
    let mut run = KernelRun::default();
    for _ in 0..hops {
        let r = kernel.spmm(a_norm, &state, dev);
        state = r.z;
        run = run.then(&r.run);
    }
    (state, run)
}

/// Connected components via iterative min-label propagation. Each round is
/// an SpMM-shaped sweep (gather neighbours, reduce) and is charged the cost
/// of one SpMM with a single dense column; numerics use the min-semiring
/// directly.
pub fn connected_components(a: &Csr, kernel: &dyn SpmmKernel, dev: &DeviceSpec) -> (Vec<u32>, f64) {
    assert_eq!(a.nrows, a.ncols);
    let n = a.nrows;
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut time_ms = 0.0;
    let probe = DenseMatrix::zeros(n, 1);
    loop {
        // Charge one single-column SpMM sweep.
        time_ms += kernel.spmm(a, &probe, dev).run.time_ms;
        let mut changed = false;
        for u in 0..n {
            let mut m = label[u];
            for &v in a.row_cols(u) {
                m = m.min(label[v as usize]);
            }
            if m < label[u] {
                label[u] = m;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (label, time_ms)
}

/// Exact triangle count (each triangle once), the `(A²∘A)/6` computation
/// the paper's introduction lists among SpMM-accelerated graph analytics.
/// Numerics by sorted-neighbourhood intersection; the simulated cost is one
/// masked SpMM sweep (gathering each edge's endpoint rows).
pub fn triangle_count(a: &Csr, kernel: &dyn SpmmKernel, dev: &DeviceSpec) -> (u64, f64) {
    assert_eq!(a.nrows, a.ncols);
    let mut triangles = 0u64;
    for u in 0..a.nrows {
        let nu = a.row_cols(u);
        for &v in nu {
            if (v as usize) <= u {
                continue;
            }
            let nv = a.row_cols(v as usize);
            // |N(u) ∩ N(v)| restricted to w > v keeps each triangle once.
            let mut i = 0;
            let mut j = 0;
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nu[i] > v {
                            triangles += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    let probe = DenseMatrix::zeros(a.nrows, 1);
    let time_ms = kernel.spmm(a, &probe, dev).run.time_ms;
    (triangles, time_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;
    use hc_core::HcSpmm;

    fn device() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    #[test]
    fn transition_matrix_columns_sum_to_one() {
        let a = gen::erdos_renyi(50, 150, 1);
        let p = transition_matrix(&a);
        let pt = p.transpose();
        for c in 0..50 {
            let sum: f32 = pt.row_vals(c).iter().sum();
            if a.degree(c) > 0 {
                assert!((sum - 1.0).abs() < 1e-5, "column {c} sums to {sum}");
            }
        }
    }

    #[test]
    fn pagerank_converges_and_sums_to_one_ish() {
        let a = gen::community(128, 600, 8, 0.9, 2);
        let p = transition_matrix(&a);
        let hc = HcSpmm::default();
        let res = personalized_pagerank(&p, &[0, 5], 0.85, 1e-6, 200, &hc, &device());
        assert!(res.iterations < 200, "should converge: {}", res.residual);
        // Without dangling nodes, mass is conserved: each column sums to 1.
        for j in 0..2 {
            let sum: f32 = (0..128).map(|r| res.state[(r, j)]).sum();
            assert!((sum - 1.0).abs() < 0.02, "column {j} mass {sum}");
        }
        assert!(res.time_ms > 0.0);
    }

    #[test]
    fn pagerank_favors_the_source_neighborhood() {
        let a = gen::community(96, 400, 6, 0.95, 3);
        let p = transition_matrix(&a);
        let hc = HcSpmm::default();
        let res = personalized_pagerank(&p, &[0], 0.85, 1e-7, 300, &hc, &device());
        // The source itself should hold the largest rank in its column.
        let source_rank = res.state[(0, 0)];
        let max = (0..96).map(|r| res.state[(r, 0)]).fold(0.0f32, f32::max);
        assert_eq!(source_rank, max);
    }

    #[test]
    fn label_propagation_labels_everything_connected() {
        // Two clean communities, one seed each.
        let a = gen::community(64, 400, 2, 0.98, 4).gcn_normalize();
        let hc = HcSpmm::default();
        let res = label_propagation(&a, &[(0, 0), (63, 1)], 2, 30, &hc, &device());
        let labels = argmax_labels(&res.state);
        // Most of the first half should follow seed 0, second half seed 1.
        let first_ok = labels[..32].iter().filter(|&&l| l == 0).count();
        let second_ok = labels[32..].iter().filter(|&&l| l == 1).count();
        assert!(first_ok > 24, "first community mislabeled: {first_ok}/32");
        assert!(
            second_ok > 24,
            "second community mislabeled: {second_ok}/32"
        );
    }

    #[test]
    fn components_of_disconnected_communities() {
        // Two disjoint cliques of 8.
        let mut coo = graph_sparse::Coo::new(16, 16);
        for base in [0u32, 8] {
            for u in 0..8u32 {
                for v in 0..8u32 {
                    if u != v {
                        coo.push(base + u, base + v, 1.0);
                    }
                }
            }
        }
        let a = coo.to_csr();
        let hc = HcSpmm::default();
        let (labels, ms) = connected_components(&a, &hc, &device());
        assert!(labels[..8].iter().all(|&l| l == 0));
        assert!(labels[8..].iter().all(|&l| l == 8));
        assert!(ms > 0.0);
    }

    #[test]
    fn triangles_of_known_graphs() {
        let hc = HcSpmm::default();
        // K4 has 4 triangles.
        let mut coo = graph_sparse::Coo::new(4, 4);
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    coo.push(u, v, 1.0);
                }
            }
        }
        let (t, _) = triangle_count(&coo.to_csr(), &hc, &device());
        assert_eq!(t, 4);
        // A star has none.
        let mut coo = graph_sparse::Coo::new(6, 6);
        for v in 1..6u32 {
            coo.push(0, v, 1.0);
            coo.push(v, 0, 1.0);
        }
        let (t, _) = triangle_count(&coo.to_csr(), &hc, &device());
        assert_eq!(t, 0);
    }

    #[test]
    fn triangle_count_matches_clustering_metric() {
        // Consistency with graph_sparse::metrics on a random graph: both
        // count the same triangles (transitivity = 3T / wedges... compare T
        // via an independent wedge-closure count).
        let a = gen::community(96, 500, 6, 0.9, 5);
        let hc = HcSpmm::default();
        let (t, _) = triangle_count(&a, &hc, &device());
        // Brute force over vertex triples.
        let d = a.to_dense();
        let mut brute = 0u64;
        for u in 0..96 {
            for v in (u + 1)..96 {
                for w in (v + 1)..96 {
                    if d[(u, v)] != 0.0 && d[(v, w)] != 0.0 && d[(u, w)] != 0.0 {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(t, brute);
    }

    #[test]
    fn k_hop_matches_repeated_reference() {
        let a = gen::erdos_renyi(80, 300, 5).gcn_normalize();
        let x = DenseMatrix::random_features(80, 8, 6);
        let hc = HcSpmm::default();
        let (z, run) = k_hop_features(&a, &x, 3, &hc, &device());
        let want = a.spmm_reference(&a.spmm_reference(&a.spmm_reference(&x)));
        assert!(want.max_abs_diff(&z) < 0.05);
        assert_eq!(run.profile.launches, 3);
    }
}
