//! `hc-spmm` command-line tool: run SpMM kernels, LOA, GNN training and the
//! selector pipeline from the shell. See `hc-spmm help`.
//!
//! Exit codes: 0 success, 2 bad input (unknown flags, malformed graphs,
//! unparsable values), 1 internal fault (failed requests, sanitizer
//! findings, or an escaped panic — reported as one line, not a backtrace).

fn main() {
    // Piping into `head` (or any consumer that exits early) closes stdout;
    // the std print macros panic on the resulting EPIPE. Exit quietly like
    // other line-oriented tools instead of dumping a backtrace.
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("failed printing to") && s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        // Stay quiet here: the catch_unwind below reports the payload as
        // a single line instead of the default multi-line panic dump.
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    // The library path returns typed errors; anything that still unwinds
    // is an internal fault. Surface it as a one-line message and exit 1
    // (bad input exits 2 from `cli::run` before ever panicking).
    match std::panic::catch_unwind(|| hc_spmm::cli::run(args)) {
        Ok(code) => std::process::exit(code),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            eprintln!("hc-spmm: internal fault: {msg}");
            std::process::exit(1);
        }
    }
}
