//! `hc-spmm` command-line tool: run SpMM kernels, LOA, GNN training and the
//! selector pipeline from the shell. See `hc-spmm help`.

fn main() {
    // Piping into `head` (or any consumer that exits early) closes stdout;
    // the std print macros panic on the resulting EPIPE. Exit quietly like
    // other line-oriented tools instead of dumping a backtrace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("failed printing to") && s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(hc_spmm::cli::run(args));
}
