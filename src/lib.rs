//! # hc-spmm — reproduction suite for HC-SpMM (ICDE 2025)
//!
//! Umbrella crate re-exporting the whole workspace: the GPU performance
//! model, the sparse/graph substrate, the HC-SpMM hybrid kernel, the
//! baseline kernels, and the GNN training pipeline. See `README.md` for the
//! architecture and `DESIGN.md` for the paper-to-module mapping.

#![warn(missing_docs)]

pub mod analytics;
pub mod cli;

pub use baselines;
pub use gnn;
pub use gpu_sim;
pub use graph_sparse;
pub use hc_core;
