//! Command-line interface for the `hc-spmm` binary.
//!
//! Hand-rolled flag parsing (no CLI dependency): subcommands `datasets`,
//! `spmm`, `batch`, `loa`, `train`, `selector`. Run `hc-spmm help` for
//! usage.

use std::collections::HashMap;
use std::sync::Arc;

use gnn::aggregator::{HcAggregator, KernelAggregator};
use gnn::gin::gin_propagation;
use gnn::train::{mean_timing, synthetic_labels, Trainer};
use gnn::{Gcn, Gin};
use gpu_sim::sanitizer::SanitizerConfig;
use gpu_sim::{DeviceKind, DeviceSpec};
use graph_sparse::{gen, io, Csr, DatasetId, DenseMatrix};
use hc_core::ResiliencePolicy;
use hc_core::{sanitize_family, HcSpmm, KernelFamily, Loa, PlanSpec, SampleSpec, SpmmKernel};
use hc_serve::{BatchDriver, BatchSummary, Outcome, Request};

/// Entry point; returns the process exit code.
pub fn run(args: Vec<String>) -> i32 {
    let mut it = args.into_iter();
    let cmd = it.next().unwrap_or_else(|| "help".into());
    let flags = parse_flags(it.collect());
    // Global flag: worker-thread count for every parallel region (wins
    // over `HC_THREADS`; default = available cores). Output is
    // bit-identical at any setting.
    if let Some(v) = flags.get("threads") {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => hc_parallel::set_threads(n),
            _ => {
                eprintln!("--threads requires a positive integer, got {v:?}");
                return 2;
            }
        }
    }
    match cmd.as_str() {
        "datasets" => cmd_datasets(),
        "metrics" => cmd_metrics(&flags),
        "spmm" => cmd_spmm(&flags),
        "batch" => cmd_batch(&flags),
        "serve-load" => cmd_serve_load(&flags),
        "serve-churn" => cmd_serve_churn(&flags),
        "loa" => cmd_loa(&flags),
        "train" => cmd_train(&flags),
        "selector" => cmd_selector(),
        "sanitize" => cmd_sanitize(&flags),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            0
        }
        other => {
            eprintln!("unknown command {other:?}\n{}", usage());
            2
        }
    }
}

/// Usage text.
pub fn usage() -> String {
    "\
hc-spmm — hybrid-core SpMM reproduction toolkit

USAGE:
  hc-spmm datasets                               list the Table II registry
  hc-spmm spmm     [--dataset CODE | --edge-list FILE] [--scale N]
                   [--kernel hc|cusparse|sputnik|ge|tcgnn|dtc] [--dim N]
                   [--gpu 3090|4090|a100]        run one SpMM, report time
  hc-spmm batch    [--requests N] [--graphs N] [--cache-bytes B] [--dim N]
                   [--kernel straightforward|cuda|tensor|hybrid] [--loa]
                   [--nodes N] [--gpu 3090|4090|a100]
                   [--fault-rate P] [--fault-seed S] [--max-retries N]
                   serve a round-robin request stream through the
                   structure-keyed plan cache; reports per-request
                   hit/miss and outcome, amortized vs cold cost, cache
                   counters, and degradation stats. --fault-rate injects
                   a deterministic device-fault schedule; faulted
                   requests retry, fall back (tensor → cuda →
                   straightforward → CPU) or fail with a typed error.
                   Exits 1 if any request failed.
  hc-spmm serve-load [--requests N] [--graphs N] [--tenants N] [--nodes N]
                   [--dim N] [--cache-bytes B] [--workers N]
                   [--queue-depth N] [--tenant-quota N] [--epoch N]
                   [--max-cohort N] [--slo-ms MS] [--gpu 3090|4090|a100]
                   [--fault-rate P] [--fault-seed S] [--max-retries N]
                   push a multi-tenant request mix through the concurrent
                   serving front-end: epoch-batched admission with
                   per-tenant quotas and a bounded queue (overload sheds
                   with a typed error), structure-keyed cohorts that
                   amortize one plan preparation across every in-flight
                   request on the same graph, and p50/p99 simulated
                   latency plus per-tenant SLO accounting. Deterministic
                   at any --workers count. Exits 1 if any admitted
                   request failed.
  hc-spmm serve-churn [--requests N] [--mutations N] [--graphs N]
                   [--tenants N] [--nodes N] [--dim N] [--cache-bytes B]
                   [--workers N] [--queue-depth N] [--tenant-quota N]
                   [--epoch N] [--max-cohort N] [--slo-ms MS]
                   [--gpu 3090|4090|a100] [--wal PATH]
                   [--snapshot-every N] [--crash-at K] [--recover]
                   serve a request mix under structure churn: edge
                   insert/delete deltas arrive on the control plane
                   between requests, the superseded plan keeps serving
                   (flagged stale) while an incremental patched plan is
                   built from the dirty row windows only, and the swap
                   is first-insert-wins with quarantine preserved.
                   Reports stale-serve counts and per-mutation patch
                   cost vs a from-scratch prepare. Exits 1 if any
                   admitted request failed. --wal write-ahead logs every
                   applied delta (checksummed, fsync-marked at epoch
                   barriers) and snapshots recoverable state to
                   PATH.snap every --snapshot-every epochs; --crash-at K
                   aborts at the K-th crash point (0-based), leaving the
                   log for a later run with --recover, which rebuilds
                   plans warm (prepare + patch replay), rolls torn WAL
                   tails back to the last fsync marker, and resumes the
                   trace where durability left off.
  hc-spmm metrics  [--dataset CODE | --edge-list FILE] [--scale N]
                   structural report: degrees, clustering, locality, windows
  hc-spmm loa      [--dataset CODE | --edge-list FILE] [--scale N] [--vw N]
                   run the layout optimizer, report improvement
  hc-spmm train    [--dataset CODE] [--scale N] [--model gcn|gin]
                   [--epochs N] [--hidden N]     train a GNN, report epochs
  hc-spmm selector retrain the core-selection model on every GPU preset
  hc-spmm sanitize [--dataset CODE | --edge-list FILE] [--scale N] [--dim N]
                   [--gpu 3090|4090|a100] [--windows N]
                   [--kernel straightforward|cuda|tensor|hybrid]
                   race / bounds / barrier / cost-conformance checks over
                   kernel window traces; with no graph flags, runs the
                   built-in suite (3 generated graphs + fixtures).
                   Exits non-zero when any check finds something.

Every command also accepts --threads N: worker-thread count for host
parallel regions (overrides HC_THREADS; default = available cores).
Results are bit-identical at any thread count.
"
    .into()
}

fn parse_flags(rest: Vec<String>) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = rest.into_iter().peekable();
    while let Some(tok) = it.next() {
        if let Some(name) = tok.strip_prefix("--") {
            let val = if it.peek().map(|v| !v.starts_with("--")).unwrap_or(false) {
                it.next().unwrap_or_default()
            } else {
                "true".into()
            };
            flags.insert(name.to_string(), val);
        } else {
            eprintln!("ignoring stray argument {tok:?}");
        }
    }
    flags
}

fn flag_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn device_for(flags: &HashMap<String, String>) -> DeviceSpec {
    match flags.get("gpu").map(|s| s.as_str()) {
        Some("4090") => DeviceSpec::new(DeviceKind::Rtx4090),
        Some("a100") | Some("A100") => DeviceSpec::new(DeviceKind::A100),
        _ => DeviceSpec::rtx3090(),
    }
}

fn load_graph(flags: &HashMap<String, String>) -> Result<(Csr, usize, String), String> {
    if let Some(path) = flags.get("edge-list") {
        let g = io::read_edge_list_file(path).map_err(|e| format!("reading {path}: {e}"))?;
        g.validate()
            .map_err(|e| format!("invalid graph in {path}: {e}"))?;
        let dim = flag_usize(flags, "dim", 64);
        return Ok((g, dim, path.clone()));
    }
    let code = flags
        .get("dataset")
        .map(|s| s.to_uppercase())
        .unwrap_or_else(|| "PM".into());
    let id = DatasetId::ALL
        .into_iter()
        .find(|d| d.code() == code)
        .ok_or_else(|| format!("unknown dataset code {code:?} (try `hc-spmm datasets`)"))?;
    let scale = flag_usize(flags, "scale", graph_sparse::datasets::DEFAULT_SCALE);
    let ds = id.load_scaled(scale);
    ds.adj
        .validate()
        .map_err(|e| format!("invalid graph from dataset {code}: {e}"))?;
    let dim = flag_usize(flags, "dim", ds.spec.dim.min(512));
    Ok((ds.adj, dim, format!("{} (1/{scale} scale)", ds.spec.name)))
}

fn cmd_datasets() -> i32 {
    println!(
        "{:<4} {:<12} {:>12} {:>13} {:>6}  structure",
        "code", "name", "vertices", "edges", "dim"
    );
    for id in DatasetId::ALL {
        let e = id.spec();
        println!(
            "{:<4} {:<12} {:>12} {:>13} {:>6}  {:?}",
            e.name_code, e.name, e.vertices, e.edges, e.dim, e.structure
        );
    }
    0
}

fn cmd_metrics(flags: &HashMap<String, String>) -> i32 {
    use graph_sparse::metrics;
    let (graph, _, label) = match load_graph(flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let d = metrics::degree_stats(&graph);
    let w = metrics::window_stats(&graph);
    println!(
        "{label}: {} vertices, {} non-zeros",
        graph.nrows,
        graph.nnz()
    );
    println!(
        "degrees: mean {:.2}, median {}, max {} (skew {:.1}), isolated {:.1}%",
        d.mean,
        d.median,
        d.max,
        d.skew,
        d.isolated * 100.0
    );
    println!(
        "clustering {:.4} | locality spread {:.4} | far-gather fraction {:.3}",
        metrics::clustering_coefficient(&graph),
        metrics::locality_spread(&graph),
        metrics::far_gather_fraction(&graph, 64)
    );
    println!(
        "row windows: {} live, mean sparsity {:.3}, mean nnz-cols {:.1}, mean intensity {:.2}",
        w.windows, w.mean_sparsity, w.mean_nnz_cols, w.mean_intensity
    );
    0
}

fn cmd_spmm(flags: &HashMap<String, String>) -> i32 {
    let (graph, dim, label) = match load_graph(flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let dev = device_for(flags);
    let x = DenseMatrix::random_features(graph.nrows, dim, 1);
    let kernel: Box<dyn SpmmKernel> = match flags.get("kernel").map(|s| s.as_str()) {
        None | Some("hc") => Box::new(HcSpmm::default()),
        Some("cusparse") => Box::new(baselines::CusparseSpmm),
        Some("sputnik") => Box::new(baselines::SputnikSpmm),
        Some("ge") => Box::new(baselines::GeSpmm),
        Some("tcgnn") => Box::new(baselines::TcGnnSpmm::default()),
        Some("dtc") => Box::new(baselines::DtcSpmm::default()),
        Some(other) => {
            eprintln!("unknown kernel {other:?}");
            return 2;
        }
    };
    println!(
        "{label}: {} vertices, {} non-zeros, dim {dim}, {} on {:?}",
        graph.nrows,
        graph.nnz(),
        kernel.name(),
        dev.kind
    );
    let r = kernel.spmm(&graph, &x, &dev);
    let err = graph.spmm_reference(&x).max_abs_diff(&r.z);
    println!(
        "time {:.4} ms | DRAM {:.2} MB | blocks {} | max error vs reference {err:.2e}",
        r.run.time_ms,
        r.run.profile.dram_bytes() as f64 / 1e6,
        r.run.profile.blocks
    );
    0
}

fn cmd_batch(flags: &HashMap<String, String>) -> i32 {
    let dev = device_for(flags);
    let requests = flag_usize(flags, "requests", 32);
    let distinct = flag_usize(flags, "graphs", 4).max(1);
    let nodes = flag_usize(flags, "nodes", 1024);
    let dim = flag_usize(flags, "dim", 32);
    let cache_bytes = match flags.get("cache-bytes") {
        None => 64 << 20,
        Some(v) => match v.parse::<u64>() {
            Ok(b) => b,
            Err(_) => {
                eprintln!("--cache-bytes requires a byte count, got {v:?}");
                return 2;
            }
        },
    };
    let family = match flags.get("kernel") {
        None => KernelFamily::Hybrid,
        Some(name) => match KernelFamily::parse(name) {
            Some(f) => f,
            None => {
                eprintln!("unknown kernel family {name:?} (straightforward|cuda|tensor|hybrid)");
                return 2;
            }
        },
    };
    let spec = PlanSpec {
        family,
        use_loa: flags.contains_key("loa"),
    };
    let fault_rate = match flags.get("fault-rate") {
        None => 0.0,
        Some(v) => match v.parse::<f64>() {
            Ok(r) if (0.0..=1.0).contains(&r) => r,
            _ => {
                eprintln!("--fault-rate requires a probability in [0, 1], got {v:?}");
                return 2;
            }
        },
    };
    let fault_seed = match flags.get("fault-seed") {
        None => 42,
        Some(v) => match v.parse::<u64>() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("--fault-seed requires an integer, got {v:?}");
                return 2;
            }
        },
    };
    let policy = ResiliencePolicy {
        max_retries: flag_usize(flags, "max-retries", 2) as u32,
        faults: gpu_sim::FaultConfig::uniform(fault_seed, fault_rate),
        ..Default::default()
    };

    // A serving mix: `distinct` structurally different graphs, requests
    // round-robin across them so every graph past the first round hits.
    let graphs: Vec<Arc<Csr>> = (0..distinct)
        .map(|s| Arc::new(gen::community(nodes, nodes * 8, 16, 0.9, s as u64 + 1)))
        .collect();
    let stream: Vec<Request> = (0..requests)
        .map(|i| Request {
            graph: Arc::clone(&graphs[i % distinct]),
            features: DenseMatrix::random_features(nodes, dim, i as u64),
        })
        .collect();

    println!(
        "batch: {requests} requests over {distinct} graphs ({nodes} vertices, dim {dim}), \
         {} plans, cache budget {cache_bytes} B, {:?}",
        family.name(),
        dev.kind
    );
    if fault_rate > 0.0 {
        println!("fault injection: rate {fault_rate}, seed {fault_seed}");
    }
    let mut driver = BatchDriver::with_policy(cache_bytes, spec, policy);
    let responses = driver.run(&stream, &dev);
    let mut exec_total = 0.0;
    let mut prepare_total = 0.0;
    for (i, r) in responses.iter().enumerate() {
        let outcome = match &r.outcome {
            Outcome::Ok(_) => "ok".to_string(),
            Outcome::Degraded {
                fallback, retries, ..
            } => format!("degraded via {} ({retries} retries)", fallback.name()),
            Outcome::Failed(e) => format!("failed: {e}"),
        };
        println!(
            "  request {i:>3}: {}  exec {:>8.4} ms  prepare {:>8.4} ms  {outcome}",
            if r.hit { "hit " } else { "miss" },
            r.exec_sim_ms,
            r.prepare_sim_ms
        );
        exec_total += r.exec_sim_ms;
        prepare_total += r.prepare_sim_ms;
    }
    let s = driver.stats();
    let n = responses.len() as f64;
    // Cold = what every request would cost if nothing were ever cached:
    // each would pay its own preparation on top of the SpMM.
    let cold_prepare: f64 = responses
        .iter()
        .filter(|r| !r.hit)
        .map(|r| r.prepare_sim_ms)
        .sum::<f64>()
        / s.misses.max(1) as f64;
    println!(
        "amortized {:.4} ms/request vs cold {:.4} ms/request (sim)",
        (exec_total + prepare_total) / n,
        exec_total / n + cold_prepare
    );
    println!(
        "cache: {} hits / {} misses ({} evictions, {} rejected) — hit rate {:.1}%, \
         {} plans resident, {} / {} B used",
        s.hits,
        s.misses,
        s.evictions,
        s.rejected,
        s.hit_rate() * 100.0,
        driver.cache.len(),
        driver.cache.bytes_used(),
        driver.cache.budget()
    );
    let sum = BatchSummary::of(&responses, family);
    println!(
        "degradation: {} ok / {} degraded / {} failed — rate {:.1}%, {} retries, \
         {} fallbacks, {:.4} ms wasted (sim), {} structures quarantined",
        sum.ok,
        sum.degraded,
        sum.failed,
        sum.degraded_rate() * 100.0,
        sum.retries,
        sum.fallbacks,
        sum.wasted_sim_ms,
        s.quarantined
    );
    // Failed requests are an internal-fault outcome: exit 1, not 2 (the
    // inputs were fine; the device wasn't).
    if sum.failed > 0 {
        eprintln!("batch: {} request(s) failed", sum.failed);
        1
    } else {
        0
    }
}

fn cmd_serve_load(flags: &HashMap<String, String>) -> i32 {
    use hc_serve::{Front, FrontConfig, FrontRequest, TenantId};
    let dev = device_for(flags);
    let requests = flag_usize(flags, "requests", 48);
    let distinct = flag_usize(flags, "graphs", 4).max(1);
    let tenants = flag_usize(flags, "tenants", 4).max(1);
    let nodes = flag_usize(flags, "nodes", 1024);
    let dim = flag_usize(flags, "dim", 32);
    let cache_bytes = match flags.get("cache-bytes") {
        None => 64 << 20,
        Some(v) => match v.parse::<u64>() {
            Ok(b) => b,
            Err(_) => {
                eprintln!("--cache-bytes requires a byte count, got {v:?}");
                return 2;
            }
        },
    };
    let slo_sim_ms = match flags.get("slo-ms") {
        None => 50.0,
        Some(v) => match v.parse::<f64>() {
            Ok(ms) if ms > 0.0 => ms,
            _ => {
                eprintln!("--slo-ms requires a positive number of ms, got {v:?}");
                return 2;
            }
        },
    };
    let fault_rate = match flags.get("fault-rate") {
        None => 0.0,
        Some(v) => match v.parse::<f64>() {
            Ok(r) if (0.0..=1.0).contains(&r) => r,
            _ => {
                eprintln!("--fault-rate requires a probability in [0, 1], got {v:?}");
                return 2;
            }
        },
    };
    let fault_seed = match flags.get("fault-seed") {
        None => 42,
        Some(v) => match v.parse::<u64>() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("--fault-seed requires an integer, got {v:?}");
                return 2;
            }
        },
    };
    let cfg = FrontConfig {
        workers: flag_usize(flags, "workers", 0),
        queue_depth: flag_usize(flags, "queue-depth", 16),
        tenant_quota: flag_usize(flags, "tenant-quota", 8),
        arrivals_per_epoch: flag_usize(flags, "epoch", 16),
        max_cohort: flag_usize(flags, "max-cohort", 8),
        slo_sim_ms,
        policy: ResiliencePolicy {
            max_retries: flag_usize(flags, "max-retries", 2) as u32,
            faults: gpu_sim::FaultConfig::uniform(fault_seed, fault_rate),
            ..Default::default()
        },
    };

    // The serving mix: `distinct` structures round-robin (cohort
    // material), tenants round-robin on a different stride so structure
    // and tenant decorrelate.
    let graphs: Vec<Arc<Csr>> = (0..distinct)
        .map(|s| Arc::new(gen::community(nodes, nodes * 8, 16, 0.9, s as u64 + 1)))
        .collect();
    let trace: Vec<FrontRequest> = (0..requests)
        .map(|i| FrontRequest {
            tenant: TenantId((i % tenants) as u32),
            request: Request {
                graph: Arc::clone(&graphs[i % distinct]),
                features: DenseMatrix::random_features(nodes, dim, i as u64),
            },
        })
        .collect();

    println!(
        "serve-load: {requests} arrivals from {tenants} tenants over {distinct} graphs \
         ({nodes} vertices, dim {dim}), epochs of {}, queue {}, quota {}/tenant, \
         cohorts ≤ {}, SLO {slo_sim_ms} ms (sim), cache budget {cache_bytes} B, {:?}",
        cfg.arrivals_per_epoch, cfg.queue_depth, cfg.tenant_quota, cfg.max_cohort, dev.kind
    );
    if fault_rate > 0.0 {
        println!("fault injection: rate {fault_rate}, seed {fault_seed}");
    }
    let front = Front::new(cache_bytes, PlanSpec::hybrid(), 4, cfg);
    let rep = front.run_trace(&trace, &dev);
    for r in &rep.responses {
        let outcome = match &r.outcome {
            Outcome::Ok(_) => "ok".to_string(),
            Outcome::Degraded {
                fallback, retries, ..
            } => format!("degraded via {} ({retries} retries)", fallback.name()),
            Outcome::Failed(e) => {
                format!("{}: {e}", if r.is_rejected() { "shed" } else { "failed" })
            }
        };
        match r.cohort {
            Some(c) => println!(
                "  request {:>3} {} epoch {} cohort {c:>3} ({}/{}) {}  \
                 latency {:>8.4} ms  {outcome}",
                r.trace_index,
                r.tenant,
                r.epoch,
                r.cohort_size,
                if r.hit { "hit " } else { "miss" },
                if r.prepare_sim_ms > 0.0 {
                    "charged prepare"
                } else {
                    "shared plan   "
                },
                r.latency_sim_ms
            ),
            None => println!(
                "  request {:>3} {} epoch {}              {outcome}",
                r.trace_index, r.tenant, r.epoch
            ),
        }
    }
    let c = rep.counters;
    println!(
        "admission: {} submitted, {} admitted, {} shed ({} queue-full, {} over-quota) \
         across {} epochs",
        c.submitted,
        c.admitted,
        c.rejected(),
        c.rejected_queue,
        c.rejected_quota,
        c.epochs
    );
    println!(
        "cohorts: {} dispatched, {} requests rode a shared plan (rate {:.1}%), \
         {} quarantined; cache {} hits / {} misses",
        c.cohorts,
        c.cohorted_requests,
        c.cohort_rate() * 100.0,
        c.quarantined_cohorts,
        rep.cache.hits,
        rep.cache.misses
    );
    println!(
        "latency (sim): p50 {:.4} / p99 {:.4} / mean {:.4} / max {:.4} ms over {} served; \
         amortized {:.4} ms/request",
        rep.latency.p50_sim_ms,
        rep.latency.p99_sim_ms,
        rep.latency.mean_sim_ms,
        rep.latency.max_sim_ms,
        rep.latency.served,
        rep.amortized_sim_ms()
    );
    for t in &rep.tenants {
        println!(
            "  tenant {}: {} submitted, {} admitted, {} shed, {} served, {} failed, \
             {} SLO violations, p99 {:.4} ms",
            t.tenant,
            t.submitted,
            t.admitted,
            t.rejected,
            t.served,
            t.failed,
            t.slo_violations,
            t.p99_sim_ms
        );
    }
    println!(
        "outcomes: {} ok / {} degraded / {} failed",
        c.ok, c.degraded, c.failed
    );
    // Like `batch`: post-admission failures are an internal-fault
    // outcome (exit 1); shed requests are the front doing its job.
    if c.failed > 0 {
        eprintln!("serve-load: {} admitted request(s) failed", c.failed);
        1
    } else {
        0
    }
}

/// A deterministic one-insert-one-delete churn delta for `g`, salted so
/// successive mutations touch different rows. `None` only for edgeless
/// graphs.
fn churn_delta(g: &Csr, salt: u64) -> Option<graph_sparse::DeltaCsr> {
    let n = g.nrows;
    let start = (salt as usize).wrapping_mul(131) % n.max(1);
    // Delete the first edge at or after a salted start row.
    let (dr, dc) = (0..n)
        .map(|i| (start + i) % n)
        .find_map(|r| g.row_cols(r).first().map(|&c| (r as u32, c)))?;
    // Insert into the first absent cell probed from a salted position.
    let mut inserts = Vec::new();
    'probe: for i in 0..n {
        let r = (start + 7 * i + 3) % n;
        let cols = g.row_cols(r);
        for j in 0..n {
            let c = ((salt as usize + 13 * j) % n) as u32;
            if !cols.contains(&c) && (r as u32, c) != (dr, dc) {
                inserts.push((r as u32, c, 1.0f32));
                break 'probe;
            }
        }
    }
    graph_sparse::DeltaCsr::new(n, g.ncols, inserts, vec![(dr, dc)]).ok()
}

fn cmd_serve_churn(flags: &HashMap<String, String>) -> i32 {
    use hc_serve::{Front, FrontConfig, FrontEvent, FrontRequest, Mutation, TenantId};
    let dev = device_for(flags);
    let requests = flag_usize(flags, "requests", 48);
    let mutations = flag_usize(flags, "mutations", 4);
    let distinct = flag_usize(flags, "graphs", 3).max(1);
    let tenants = flag_usize(flags, "tenants", 4).max(1);
    let nodes = flag_usize(flags, "nodes", 1024);
    let dim = flag_usize(flags, "dim", 32);
    let cache_bytes = match flags.get("cache-bytes") {
        None => 64 << 20,
        Some(v) => match v.parse::<u64>() {
            Ok(b) => b,
            Err(_) => {
                eprintln!("--cache-bytes requires a byte count, got {v:?}");
                return 2;
            }
        },
    };
    let slo_sim_ms = match flags.get("slo-ms") {
        None => 50.0,
        Some(v) => match v.parse::<f64>() {
            Ok(ms) if ms > 0.0 => ms,
            _ => {
                eprintln!("--slo-ms requires a positive number of ms, got {v:?}");
                return 2;
            }
        },
    };
    let cfg = FrontConfig {
        workers: flag_usize(flags, "workers", 0),
        queue_depth: flag_usize(flags, "queue-depth", 16),
        tenant_quota: flag_usize(flags, "tenant-quota", 8),
        arrivals_per_epoch: flag_usize(flags, "epoch", 16),
        max_cohort: flag_usize(flags, "max-cohort", 8),
        slo_sim_ms,
        policy: ResiliencePolicy::default(),
    };

    // Evolving structures: requests always target the *current* version
    // of their graph; every `gap` arrivals one graph takes an edge-churn
    // delta on the control plane.
    let mut current: Vec<Arc<Csr>> = (0..distinct)
        .map(|s| Arc::new(gen::community(nodes, nodes * 8, 16, 0.9, s as u64 + 1)))
        .collect();
    let gap = (requests / (mutations + 1)).max(1);
    let mut events: Vec<FrontEvent> = Vec::new();
    let mut issued = 0usize;
    for i in 0..requests {
        if i > 0 && i % gap == 0 && issued < mutations {
            let gi = issued % distinct;
            let base = Arc::clone(&current[gi]);
            match churn_delta(&base, issued as u64 + 1) {
                Some(delta) => match delta.apply(&base) {
                    Ok(next) => {
                        current[gi] = Arc::new(next);
                        events.push(FrontEvent::Mutate(Mutation { base, delta }));
                        issued += 1;
                    }
                    Err(e) => {
                        eprintln!("internal churn delta failed to apply: {e}");
                        return 2;
                    }
                },
                None => {
                    eprintln!("graph {gi} has no edges to churn");
                    return 2;
                }
            }
        }
        events.push(FrontEvent::Serve(FrontRequest {
            tenant: TenantId((i % tenants) as u32),
            request: Request {
                graph: Arc::clone(&current[i % distinct]),
                features: DenseMatrix::random_features(nodes, dim, i as u64),
            },
        }));
    }

    println!(
        "serve-churn: {requests} arrivals from {tenants} tenants over {distinct} evolving \
         graphs ({nodes} vertices, dim {dim}), {issued} mutations every {gap} arrivals, \
         epochs of {}, cache budget {cache_bytes} B, {:?}",
        cfg.arrivals_per_epoch, dev.kind
    );
    let front = Front::new(cache_bytes, PlanSpec::hybrid(), 4, cfg);
    if let Some(wal) = flags.get("wal") {
        return serve_churn_durable(front, &events, &dev, flags, wal);
    }
    let rep = front.run_events(&events, &dev);
    print_churn_report(&rep)
}

/// The shared report tail of `serve-churn`: per-mutation patch outcomes,
/// churn/admission/latency summaries, and the exit code.
fn print_churn_report(rep: &hc_serve::FrontReport) -> i32 {
    for m in &rep.mutations {
        let status = if m.patched {
            format!(
                "patched ({:.4} ms sim, dirty windows only) and {}",
                m.patch_sim_ms,
                match m.swap {
                    Some(hc_serve::SwapOutcome::Swapped) => "swapped in",
                    Some(hc_serve::SwapOutcome::Quarantined) => "quarantined",
                    None => "not offered",
                }
            )
        } else {
            "no resident plan to patch (next request prepares fresh)".to_string()
        };
        println!(
            "  mutation @{:>3} epoch {}: {status}",
            m.trace_index, m.epoch
        );
    }
    let c = rep.counters;
    println!(
        "churn: {} mutations, {} plans patched incrementally, {} requests served by a \
         stale plan while patching, {} swaps",
        c.mutations, c.patched_plans, c.stale_served, rep.cache.swaps
    );
    println!(
        "admission: {} submitted, {} admitted, {} shed across {} epochs; cache {} hits / \
         {} misses ({} stale hits)",
        c.submitted,
        c.admitted,
        c.rejected(),
        c.epochs,
        rep.cache.hits,
        rep.cache.misses,
        rep.cache.stale_hits
    );
    println!(
        "latency (sim): p50 {:.4} / p99 {:.4} / max {:.4} ms over {} served; amortized \
         {:.4} ms/request",
        rep.latency.p50_sim_ms,
        rep.latency.p99_sim_ms,
        rep.latency.max_sim_ms,
        rep.latency.served,
        rep.amortized_sim_ms()
    );
    println!(
        "outcomes: {} ok / {} degraded / {} failed",
        c.ok, c.degraded, c.failed
    );
    if c.failed > 0 {
        eprintln!("serve-churn: {} admitted request(s) failed", c.failed);
        1
    } else {
        0
    }
}

/// `serve-churn` with durability: mutations are write-ahead logged and
/// the recoverable state snapshots every `--snapshot-every` epochs.
/// `--crash-at K` injects a crash at the K-th crash point (0-based) and
/// leaves the WAL + snapshot on disk; a second invocation with
/// `--recover` rebuilds the front from them (warm plan rebuild, torn-tail
/// rollback, idempotent delta replay) and resumes the identical trace
/// from the first epoch past the last fsync marker.
fn serve_churn_durable(
    front: hc_serve::Front,
    events: &[hc_serve::FrontEvent],
    dev: &DeviceSpec,
    flags: &HashMap<String, String>,
    wal: &str,
) -> i32 {
    use gpu_sim::{CrashConfig, CrashScope};
    use hc_serve::{DurabilityConfig, DurableFront};
    use std::path::PathBuf;

    let snapshot_every = flag_usize(flags, "snapshot-every", 4).max(1) as u64;
    let crash_at = match flags.get("crash-at") {
        None => None,
        Some(v) => match v.parse::<u64>() {
            Ok(k) => Some(k),
            Err(_) => {
                eprintln!("--crash-at requires a crash-point index, got {v:?}");
                return 2;
            }
        },
    };
    let wal_path = PathBuf::from(wal);
    let mut snap = wal_path.as_os_str().to_owned();
    snap.push(".snap");
    let dcfg = DurabilityConfig {
        wal_path,
        snapshot_path: PathBuf::from(snap),
        snapshot_every,
    };

    let mut df = if flags.contains_key("recover") {
        match DurableFront::recover(front, dcfg, events, dev) {
            Ok((df, stats)) => {
                println!(
                    "recovered from {wal}: resuming at epoch {}; {} plans rebuilt warm \
                     ({} full prepares + {} patch replays, {:.4} ms sim), {} deltas \
                     replayed ({} duplicates skipped, {} double-applied), {} records \
                     rolled back to the last fsync marker, {} torn bytes discarded",
                    stats.resume_epoch,
                    stats.restored_plans,
                    stats.full_prepares,
                    stats.patch_replays,
                    stats.recovery_sim_ms,
                    stats.reapplied_deltas,
                    stats.skipped_duplicates,
                    stats.double_applied,
                    stats.rolled_back_records,
                    stats.torn_bytes,
                );
                df
            }
            Err(e) => {
                eprintln!("serve-churn: recovery from {wal} failed: {e}");
                return 2;
            }
        }
    } else {
        match DurableFront::create(front, dcfg) {
            Ok(df) => df,
            Err(e) => {
                eprintln!("serve-churn: cannot create WAL at {wal}: {e}");
                return 2;
            }
        }
    };

    let _scope = crash_at.map(|k| CrashScope::install(CrashConfig::at(k)));
    match df.run(events, dev) {
        Err(e) => {
            eprintln!("serve-churn: durability error: {e}");
            2
        }
        Ok(attempt) => match attempt.crash {
            Some(site) => {
                println!(
                    "crashed (injected) at {site}, crash point {}: {} responses were \
                     delivered durably before the crash; resume with \
                     `serve-churn --wal {wal} --recover` and the same trace flags",
                    crash_at.map_or_else(|| "?".into(), |k| k.to_string()),
                    attempt.delivered.len(),
                );
                0
            }
            None => {
                let rep = attempt
                    .report
                    .expect("an uncrashed attempt always carries its report");
                print_churn_report(&rep)
            }
        },
    }
}

fn cmd_loa(flags: &HashMap<String, String>) -> i32 {
    let (graph, dim, label) = match load_graph(flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let dev = device_for(flags);
    let x = DenseMatrix::random_features(graph.nrows, dim, 1);
    let hc = HcSpmm::default();
    let before = hc.spmm(&graph, &x, &dev);
    let loa = Loa {
        vw: flag_usize(flags, "vw", Loa::default().vw),
    };
    let (optimized, rep) = loa.optimize(&graph);
    let after = hc.spmm(&optimized, &x, &dev);
    let (cb, tb) = hc.preprocess(&graph, &dev).window_split();
    let (ca, ta) = hc.preprocess(&optimized, &dev).window_split();
    println!("{label}: LOA with VW={}", loa.vw);
    println!(
        "SpMM {:.4} → {:.4} ms ({:+.2}%) | windows CUDA/Tensor {cb}/{tb} → {ca}/{ta} | \
         LOA host cost {:.4} s ({} ops)",
        before.run.time_ms,
        after.run.time_ms,
        (before.run.time_ms - after.run.time_ms) / before.run.time_ms * 100.0,
        rep.seconds,
        rep.ops
    );
    0
}

fn cmd_train(flags: &HashMap<String, String>) -> i32 {
    let (graph, dim, label) = match load_graph(flags) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let dev = device_for(flags);
    let hidden = flag_usize(flags, "hidden", 32);
    let epochs = flag_usize(flags, "epochs", 5);
    let classes = 22;
    let x = DenseMatrix::random_features(graph.nrows, dim, 1);
    let labels = synthetic_labels(graph.nrows, classes);
    let tr = Trainer { lr: 0.05, epochs };

    let model_kind = flags.get("model").map(|s| s.as_str()).unwrap_or("gcn");
    println!("{label}: training {model_kind} ({epochs} epochs, hidden {hidden})");
    let timings = match model_kind {
        "gin" => {
            let s = gin_propagation(&graph, 0.1);
            let agg = HcAggregator::new(&s, &dev);
            let mut m = Gin::new(dim, hidden, classes, 3);
            tr.train_gin(&mut m, &s, &x, &labels, &agg, &dev)
        }
        "gcn" => {
            let a = graph.gcn_normalize();
            let agg = HcAggregator::new(&a, &dev);
            let mut m = Gcn::new(dim, hidden, classes, 3);
            tr.train_gcn(&mut m, &a, &x, &labels, &agg, &dev)
        }
        other => {
            eprintln!("unknown model {other:?} (gcn|gin)");
            return 2;
        }
    };
    for (i, e) in timings.iter().enumerate() {
        println!(
            "  epoch {i}: forward {:.4} ms, backward {:.4} ms, loss {:.4}",
            e.forward_ms, e.backward_ms, e.loss
        );
    }
    let m = mean_timing(&timings);
    println!(
        "mean: forward {:.4} ms, backward {:.4} ms",
        m.forward_ms, m.backward_ms
    );

    // Baseline comparison for context.
    if model_kind == "gcn" {
        let a = graph.gcn_normalize();
        let ge = KernelAggregator::new(baselines::GeSpmm);
        let mut mm = Gcn::new(dim, hidden, classes, 3);
        let t = mean_timing(&tr.train_gcn(&mut mm, &a, &x, &labels, &ge, &dev));
        println!(
            "GE-SpMM backend for reference: forward {:.4} ms, backward {:.4} ms",
            t.forward_ms, t.backward_ms
        );
    }
    0
}

fn cmd_sanitize(flags: &HashMap<String, String>) -> i32 {
    let dev = device_for(flags);
    let sample = SampleSpec {
        max_windows: flag_usize(flags, "windows", SampleSpec::default().max_windows),
    };
    let cfg = SanitizerConfig::default();
    let families: Vec<KernelFamily> = match flags.get("kernel") {
        None => KernelFamily::ALL.to_vec(),
        Some(name) => match KernelFamily::parse(name) {
            Some(f) => vec![f],
            None => {
                eprintln!("unknown kernel family {name:?} (straightforward|cuda|tensor|hybrid)");
                return 2;
            }
        },
    };

    // Either the explicitly requested graph, or the built-in acceptance
    // suite: three structurally different generated graphs plus fixtures.
    let mut graphs: Vec<(String, Csr, usize)> = Vec::new();
    if flags.contains_key("edge-list") || flags.contains_key("dataset") {
        match load_graph(flags) {
            Ok((g, dim, label)) => graphs.push((label, g, dim)),
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    } else {
        let dim = flag_usize(flags, "dim", 32);
        graphs.push((
            "community(1024, 8000)".into(),
            gen::community(1024, 8_000, 32, 0.9, 1),
            dim,
        ));
        graphs.push((
            "molecules(2048, 5000)".into(),
            gen::molecules(2_048, 5_000, 2),
            dim,
        ));
        graphs.push((
            "erdos_renyi(2048, 12000)".into(),
            gen::erdos_renyi(2_048, 12_000, 3),
            dim,
        ));
        match io::read_edge_list_file("fixtures/karate.txt") {
            Ok(g) => graphs.push(("fixtures/karate.txt".into(), g, dim)),
            Err(e) => eprintln!("skipping fixtures/karate.txt: {e}"),
        }
    }

    println!(
        "kernel sanitizer on {:?}: racecheck · memcheck · synccheck · cost-conformance",
        dev.kind
    );
    let mut total_findings = 0usize;
    for (label, graph, dim) in &graphs {
        println!(
            "{label}: {} vertices, {} non-zeros, dim {dim}",
            graph.nrows,
            graph.nnz()
        );
        for &family in &families {
            let r = sanitize_family(family, graph, *dim, &dev, &cfg, sample);
            let verdict = if r.is_clean() {
                "clean".to_string()
            } else {
                format!("{} finding(s)", r.findings.len() + r.suppressed)
            };
            println!(
                "  {:<16} windows {:>4}  ops {:>9}  {verdict}",
                family.name(),
                r.windows_checked,
                r.ops_checked
            );
            for (w, f) in &r.findings {
                println!("    window {w}: {f}");
            }
            if r.suppressed > 0 {
                println!(
                    "    … {} more finding(s) suppressed by the cap",
                    r.suppressed
                );
            }
            total_findings += r.findings.len() + r.suppressed;
        }
    }
    if total_findings > 0 {
        eprintln!("sanitize: {total_findings} finding(s)");
        1
    } else {
        println!("sanitize: all checks clean");
        0
    }
}

fn cmd_selector() -> i32 {
    print!("{}", bench_free_selector_report());
    0
}

/// Selector pipeline report (duplicated from the bench crate to keep the
/// CLI dependency-light).
fn bench_free_selector_report() -> String {
    let mut out = String::from("§IV-C selector training pipeline\n");
    for kind in DeviceKind::ALL {
        let dev = DeviceSpec::new(kind);
        let (m, acc) = hc_core::selector::train_default(&dev);
        out.push_str(&format!(
            "{:>5}: w1={:+.6} w2={:+.6} b={:+.6} accuracy={:.2}%\n",
            kind.name(),
            m.w1,
            m.w2,
            m.b,
            acc * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_values_and_booleans() {
        let f = parse_flags(vec![
            "--dataset".into(),
            "rd".into(),
            "--verbose".into(),
            "--scale".into(),
            "128".into(),
        ]);
        assert_eq!(f.get("dataset").unwrap(), "rd");
        assert_eq!(f.get("verbose").unwrap(), "true");
        assert_eq!(flag_usize(&f, "scale", 64), 128);
        assert_eq!(flag_usize(&f, "missing", 7), 7);
    }

    #[test]
    fn dataset_lookup_is_case_insensitive() {
        let mut f = HashMap::new();
        f.insert("dataset".to_string(), "cr".to_string());
        f.insert("scale".to_string(), "1024".to_string());
        let (g, dim, label) = load_graph(&f).unwrap();
        assert!(g.nrows >= 64);
        assert_eq!(dim, 512);
        assert!(label.contains("Cora"));
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let mut f = HashMap::new();
        f.insert("dataset".to_string(), "zz".to_string());
        assert!(load_graph(&f).is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        assert_eq!(
            run(vec![
                "spmm".into(),
                "--dataset".into(),
                "cs".into(),
                "--scale".into(),
                "1024".into(),
            ]),
            0
        );
        assert_eq!(
            run(vec![
                "loa".into(),
                "--dataset".into(),
                "pt".into(),
                "--scale".into(),
                "1024".into(),
            ]),
            0
        );
        assert_eq!(
            run(vec![
                "train".into(),
                "--dataset".into(),
                "cr".into(),
                "--scale".into(),
                "1024".into(),
                "--epochs".into(),
                "1".into(),
            ]),
            0
        );
        assert_eq!(
            run(vec![
                "batch".into(),
                "--requests".into(),
                "9".into(),
                "--graphs".into(),
                "3".into(),
                "--nodes".into(),
                "256".into(),
                "--dim".into(),
                "8".into(),
            ]),
            0
        );
        assert_eq!(
            run(vec![
                "batch".into(),
                "--requests".into(),
                "4".into(),
                "--nodes".into(),
                "256".into(),
                "--dim".into(),
                "8".into(),
                "--cache-bytes".into(),
                "0".into(),
                "--loa".into(),
            ]),
            0
        );
        assert_eq!(
            run(vec!["batch".into(), "--kernel".into(), "bogus".into()]),
            2
        );
        assert_eq!(
            run(vec!["batch".into(), "--cache-bytes".into(), "много".into()]),
            2
        );
        assert_eq!(run(vec!["datasets".into()]), 0);
        assert_eq!(
            run(vec![
                "sanitize".into(),
                "--dataset".into(),
                "cr".into(),
                "--scale".into(),
                "1024".into(),
                "--windows".into(),
                "8".into(),
            ]),
            0
        );
        assert_eq!(
            run(vec!["sanitize".into(), "--kernel".into(), "bogus".into()]),
            2
        );
        assert_eq!(
            run(vec![
                "metrics".into(),
                "--dataset".into(),
                "gh".into(),
                "--scale".into(),
                "1024".into(),
            ]),
            0
        );
        assert_eq!(run(vec!["help".into()]), 0);
        assert_eq!(run(vec!["bogus".into()]), 2);
    }

    #[test]
    fn serve_load_runs_sheds_and_rejects_garbage() {
        // Tight quota + queue: the front sheds (typed, exit stays 0 —
        // shedding is the front doing its job, not a failure).
        assert_eq!(
            run(vec![
                "serve-load".into(),
                "--requests".into(),
                "18".into(),
                "--graphs".into(),
                "3".into(),
                "--tenants".into(),
                "2".into(),
                "--nodes".into(),
                "256".into(),
                "--dim".into(),
                "8".into(),
                "--epoch".into(),
                "6".into(),
                "--tenant-quota".into(),
                "2".into(),
                "--queue-depth".into(),
                "4".into(),
                "--max-cohort".into(),
                "2".into(),
                "--workers".into(),
                "2".into(),
            ]),
            0
        );
        // Full fault rate degrades to the CPU reference; still served.
        assert_eq!(
            run(vec![
                "serve-load".into(),
                "--requests".into(),
                "6".into(),
                "--nodes".into(),
                "256".into(),
                "--dim".into(),
                "8".into(),
                "--fault-rate".into(),
                "1.0".into(),
            ]),
            0
        );
        for (flag, bad) in [
            ("--cache-bytes", "много"),
            ("--slo-ms", "-3"),
            ("--fault-rate", "1.5"),
            ("--fault-seed", "nope"),
        ] {
            assert_eq!(
                run(vec!["serve-load".into(), flag.into(), bad.into()]),
                2,
                "{flag} {bad} should be rejected"
            );
        }
    }

    #[test]
    fn serve_churn_runs_and_rejects_garbage() {
        assert_eq!(
            run(vec![
                "serve-churn".into(),
                "--requests".into(),
                "18".into(),
                "--mutations".into(),
                "2".into(),
                "--graphs".into(),
                "2".into(),
                "--nodes".into(),
                "256".into(),
                "--dim".into(),
                "8".into(),
                "--epoch".into(),
                "6".into(),
                "--workers".into(),
                "2".into(),
            ]),
            0
        );
        for (flag, bad) in [("--cache-bytes", "много"), ("--slo-ms", "-3")] {
            assert_eq!(
                run(vec!["serve-churn".into(), flag.into(), bad.into()]),
                2,
                "{flag} {bad} should be rejected"
            );
        }
    }

    #[test]
    fn serve_churn_crashes_then_recovers_from_the_wal() {
        let wal = std::env::temp_dir().join(format!("hc-cli-churn-{}.wal", std::process::id()));
        let wal_s = wal.to_string_lossy().into_owned();
        let snap = format!("{wal_s}.snap");
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(&snap);
        let trace_flags = |extra: &[&str]| {
            let mut v: Vec<String> = vec![
                "serve-churn".into(),
                "--requests".into(),
                "18".into(),
                "--mutations".into(),
                "2".into(),
                "--graphs".into(),
                "2".into(),
                "--nodes".into(),
                "256".into(),
                "--dim".into(),
                "8".into(),
                "--epoch".into(),
                "6".into(),
                "--workers".into(),
                "2".into(),
                "--wal".into(),
                wal_s.clone(),
                "--snapshot-every".into(),
                "2".into(),
            ];
            v.extend(extra.iter().map(|s| s.to_string()));
            v
        };
        // Durable run, no crash: completes like the plain run.
        assert_eq!(run(trace_flags(&[])), 0);
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(&snap);
        // Crash mid-trace, then recover and resume from disk.
        assert_eq!(run(trace_flags(&["--crash-at", "2"])), 0);
        assert!(wal.exists(), "the crashed run must leave its WAL behind");
        assert_eq!(run(trace_flags(&["--recover"])), 0);
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(&snap);
        assert_eq!(
            run(trace_flags(&["--crash-at", "zero"])),
            2,
            "--crash-at zero should be rejected"
        );
        // Recovering with no WAL on disk is a typed failure, not a panic.
        assert_eq!(run(trace_flags(&["--recover"])), 2);
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn batch_fault_flags_degrade_gracefully_or_reject_garbage() {
        // Rate 1.0: every launch faults, every request degrades to the CPU
        // reference — served, not failed, so the exit code stays 0.
        assert_eq!(
            run(vec![
                "batch".into(),
                "--requests".into(),
                "4".into(),
                "--nodes".into(),
                "256".into(),
                "--dim".into(),
                "8".into(),
                "--fault-rate".into(),
                "1.0".into(),
                "--fault-seed".into(),
                "7".into(),
            ]),
            0
        );
        for bad in ["-0.5", "1.5", "x"] {
            assert_eq!(
                run(vec!["batch".into(), "--fault-rate".into(), bad.into()]),
                2,
                "--fault-rate {bad} should be rejected"
            );
        }
        assert_eq!(
            run(vec!["batch".into(), "--fault-seed".into(), "nope".into()]),
            2
        );
    }

    #[test]
    fn threads_flag_sets_override_and_rejects_garbage() {
        assert_eq!(
            run(vec![
                "metrics".into(),
                "--dataset".into(),
                "cr".into(),
                "--scale".into(),
                "1024".into(),
                "--threads".into(),
                "2".into(),
            ]),
            0
        );
        hc_parallel::set_threads(0); // clear the global override for other tests
        for bad in ["0", "-2", "lots"] {
            assert_eq!(
                run(vec!["datasets".into(), "--threads".into(), bad.into()]),
                2,
                "--threads {bad} should be rejected"
            );
        }
    }
}
