//! No-op derive macros for the vendored `serde` shim: each derive emits an
//! empty marker-trait impl for the annotated type. Only plain (non-generic)
//! structs and enums are supported, which covers every derived type in this
//! workspace.

use proc_macro::{TokenStream, TokenTree};

/// Locate the type name: the identifier following `struct` or `enum`,
/// skipping visibility modifiers, attributes and doc comments.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
                panic!("serde_derive shim: expected a type name after `{kw}`");
            }
        }
    }
    panic!("serde_derive shim: input is not a struct or enum");
}

/// Emit `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Emit `impl<'de> serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
