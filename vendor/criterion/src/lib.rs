//! Offline stand-in for `criterion`.
//!
//! Provides the API the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box`) with a
//! simple best-of-N wall-clock measurement instead of criterion's full
//! statistical machinery. Good enough to smoke-run benches and eyeball
//! relative numbers; not a statistics-grade harness.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param` identifier.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Measurement context handed to bench closures.
pub struct Bencher {
    iters: u32,
    best_ns: u128,
}

impl Bencher {
    /// Run `f` a few times, recording the fastest iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            self.best_ns = self.best_ns.min(t0.elapsed().as_nanos());
        }
    }
}

fn run_one(label: &str, iters: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        best_ns: u128::MAX,
    };
    f(&mut b);
    if b.best_ns == u128::MAX {
        println!("bench {label}: no measurement");
    } else {
        println!("bench {label}: best {:.3} ms", b.best_ns as f64 / 1e6);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // When cargo runs bench targets under `cargo test` it passes
        // `--test`; measure a single iteration there to keep test runs fast.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iters: if test_mode { 1 } else { 3 },
        }
    }
}

impl Criterion {
    /// Measure one function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.iters, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measure one function in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.iters,
            &mut f,
        );
        self
    }

    /// Measure one function with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.criterion.iters,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundle bench functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
