//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro with `#![proptest_config(...)]`, range and
//! tuple strategies, `prop_map`/`prop_flat_map`, `collection::vec`, `Just`,
//! and the `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce exactly.
//! There is **no shrinking**: a failing case reports its case index and
//! message and panics immediately.

/// Test-case generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a hash of a test name, used to give each test its own stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runner configuration and failure types.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Chain into a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy yielding a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(width) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi as u128 - lo as u128 + 1) as u64;
                    lo + rng.below(width) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_excl: usize,
    }

    /// Lengths accepted by [`vec`].
    pub trait SizeRange {
        /// `(min, max_exclusive)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max_excl) = size.bounds();
        assert!(min < max_excl, "empty vec size range");
        VecStrategy {
            element,
            min,
            max_excl,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_excl - self.min) as u64;
            let len = self.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias so `prop::collection::vec(...)` works as in upstream proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
        let _ = r;
    }};
}

/// Define property tests: each function's arguments are drawn from the given
/// strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(seed ^ case.wrapping_mul(0xa076_1d64_78bd_642f));
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{} failed (seed {seed:#x}): {e}",
                        config.cases
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::generate(&(-5.0f32..5.0), &mut rng);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (2usize..6, 2usize..6)
            .prop_flat_map(|(r, c)| {
                crate::collection::vec((0..r as u32, 0..c as u32), 1..20)
                    .prop_map(move |es| (r, c, es))
            })
            .boxed();
        let mut rng = crate::TestRng::new(9);
        for _ in 0..200 {
            let (r, c, es) = Strategy::generate(&strat, &mut rng);
            assert!(es
                .iter()
                .all(|&(a, b)| (a as usize) < r && (b as usize) < c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_draws_and_asserts(x in 1u32..100, y in 1u32..100) {
            prop_assert!(x >= 1 && y >= 1);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x, x + y);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in crate::collection::vec(0u8..255, 0..10)) {
            prop_assert!(v.len() < 10);
        }
    }
}
