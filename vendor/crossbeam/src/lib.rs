//! Offline stand-in for `crossbeam`, providing `crossbeam::thread::scope` on
//! top of `std::thread::scope` (stable since Rust 1.63). Only the scoped
//! spawning API the workspace uses is reproduced.

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    /// First panic payload raised by any thread of a scope. `std`'s scope
    /// replaces child payloads with a generic "a scoped thread panicked"
    /// message at auto-join; stashing the original here lets [`scope`]
    /// return it through the `Err`, as real crossbeam does. Shared by
    /// `Arc` rather than borrowed: the scope closure is higher-ranked over
    /// `'scope`, which would force a borrow to outlive `'env`.
    type PanicSlot = Arc<Mutex<Option<Box<dyn Any + Send + 'static>>>>;

    /// Handle through which scoped threads are spawned. Mirrors crossbeam's
    /// `Scope`, whose `spawn` passes the scope back into the closure so
    /// workers can spawn nested workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        first_panic: PanicSlot,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. The closure receives the scope
        /// (crossbeam's signature); most callers ignore it (`|_| ...`).
        ///
        /// Shim divergence: a panicking child's original payload travels to
        /// [`scope`]'s `Err`; `join`ing the child directly yields a
        /// placeholder payload instead (payloads are not cloneable).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let first_panic = Arc::clone(&self.first_panic);
            inner.spawn(move || {
                let scope = Scope {
                    inner,
                    first_panic: Arc::clone(&first_panic),
                };
                match catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    Ok(v) => v,
                    Err(payload) => {
                        let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                        let payload = if slot.is_none() {
                            *slot = Some(payload);
                            Box::new("scoped thread panicked (payload captured by scope)")
                                as Box<dyn Any + Send>
                        } else {
                            payload
                        };
                        drop(slot);
                        resume_unwind(payload)
                    }
                }
            })
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; all are joined before `scope` returns. As in real
    /// crossbeam, a panicking child is captured: `scope` returns
    /// `Err(first_child_payload)` instead of unwinding through the caller.
    /// (Shim divergence: a panic in `f` itself is also captured into the
    /// `Err`, where crossbeam would propagate it — no caller in this
    /// workspace panics in the closure body.)
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let first_panic: PanicSlot = Arc::new(Mutex::new(None));
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    first_panic: Arc::clone(&first_panic),
                })
            })
        }));
        match result {
            Ok(v) => Ok(v),
            Err(outer) => {
                let stashed = first_panic.lock().unwrap_or_else(|e| e.into_inner()).take();
                Err(stashed.unwrap_or(outer))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_child_is_captured_into_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("child panic"));
            scope.spawn(|_| 7).join().expect("healthy child joins")
        });
        let payload = result.expect_err("child panic must surface as Err");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"child panic"));
    }

    #[test]
    fn scoped_threads_fill_disjoint_chunks() {
        let mut data = vec![0u32; 64];
        super::thread::scope(|scope| {
            for (t, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for (i, cell) in chunk.iter_mut().enumerate() {
                        *cell = (t * 16 + i) as u32;
                    }
                });
            }
        })
        .expect("workers joined");
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }
}
