//! Offline stand-in for `crossbeam`, providing `crossbeam::thread::scope` on
//! top of `std::thread::scope` (stable since Rust 1.63). Only the scoped
//! spawning API the workspace uses is reproduced.

/// Scoped threads.
pub mod thread {
    /// Handle through which scoped threads are spawned. Mirrors crossbeam's
    /// `Scope`, whose `spawn` passes the scope back into the closure so
    /// workers can spawn nested workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. The closure receives the scope
        /// (crossbeam's signature); most callers ignore it (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; all are joined before `scope` returns. Unlike crossbeam,
    /// a panicking child propagates its panic at join rather than being
    /// captured into the `Result` — callers that `.expect()` the result see
    /// the same process-level failure either way.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_disjoint_chunks() {
        let mut data = vec![0u32; 64];
        super::thread::scope(|scope| {
            for (t, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for (i, cell) in chunk.iter_mut().enumerate() {
                        *cell = (t * 16 + i) as u32;
                    }
                });
            }
        })
        .expect("workers joined");
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }
}
