//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's panic-free, guard-returning API
//! (poisoning is swallowed — a poisoned lock just hands back the inner
//! guard, matching parking_lot's behaviour of not tracking poison at all).

/// Mutual exclusion lock with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Reader-writer lock with parking_lot's guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        static M: Mutex<i32> = Mutex::new(0);
        *M.lock() += 41;
        *M.lock() += 1;
        assert_eq!(*M.lock(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
