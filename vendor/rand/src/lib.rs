//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the small API surface the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`. The
//! generator is SplitMix64 — deterministic, seedable, and statistically fine
//! for synthetic-graph generation (it is not the real `StdRng` stream, so
//! seeded outputs differ from upstream `rand`, which no test relies on).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output range.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; panics when `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let width = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if width == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let f = f64::sample_standard(rng) as $t;
                lo + f * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`]-distributed value (floats in `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
