//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never instantiates a serializer (no serde_json or bincode is present), so
//! the traits here are pure markers and the derive macros emit empty impls.
//! If a future change needs real serialization, replace this shim with the
//! actual crate once the build environment has registry access.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
