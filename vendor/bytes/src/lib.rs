//! Offline stand-in for the `bytes` crate: a `Vec<u8>`-backed [`BytesMut`]
//! and the little-endian [`Buf`]/[`BufMut`] accessors used by the binary CSR
//! codec in `graph-sparse::io`.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

/// Write-side cursor operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor operations. Reads advance the cursor and panic when the
/// buffer is exhausted (callers check [`Buf::remaining`] first, as upstream
/// `bytes` requires).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Take the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize) {
        self.take_bytes(n);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underrun: {n} > {}", self.len());
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }
}
