//! Precision behaviour through the full kernels (Appendix B territory).

use gpu_sim::{DeviceSpec, Precision};
use graph_sparse::{gen, Coo, DenseMatrix};
use hc_core::{HcSpmm, SpmmKernel, TensorSpmm};

fn device() -> DeviceSpec {
    DeviceSpec::rtx3090()
}

#[test]
fn error_ordering_fp32_tf32_bf16() {
    // Through a full SpMM: fp32 exact, tf32 better than bf16.
    let a = gen::community(512, 4_000, 16, 0.9, 1);
    let x = DenseMatrix::random_features(512, 32, 2);
    let dev = device();
    let want = a.spmm_reference(&x);
    let err = |p: Precision| -> f64 {
        want.max_abs_diff(&TensorSpmm::with_precision(p).spmm(&a, &x, &dev).z) as f64
    };
    assert_eq!(err(Precision::Fp32), 0.0);
    let tf = err(Precision::Tf32);
    let bf = err(Precision::Bf16);
    assert!(tf > 0.0 && bf > tf, "tf32 {tf} should beat bf16 {bf}");
}

#[test]
fn fp16_overflows_where_bf16_does_not() {
    // Values beyond the f16 range collapse to infinity under half but
    // survive bfloat16 — the classic range-vs-precision trade.
    let a = Coo::from_triples(16, 16, [(0, 0, 70_000.0)]).to_csr();
    let x = DenseMatrix::from_fn(16, 8, |_, _| 1.0);
    let dev = device();
    let half = TensorSpmm::with_precision(Precision::Fp16).spmm(&a, &x, &dev);
    let bf = TensorSpmm::with_precision(Precision::Bf16).spmm(&a, &x, &dev);
    assert!(half.z[(0, 0)].is_infinite(), "fp16 should overflow");
    assert!(bf.z[(0, 0)].is_finite(), "bf16 should survive");
    assert!((bf.z[(0, 0)] - 70_000.0).abs() / 70_000.0 < 0.01);
}

#[test]
fn reduced_precision_is_faster_due_to_halved_traffic() {
    let a = gen::molecules(4_096, 8_000, 3);
    let x = DenseMatrix::random_features(4_096, 96, 4);
    let dev = device();
    let full = HcSpmm::default().spmm(&a, &x, &dev).run.time_ms;
    let half = HcSpmm::with_precision(Precision::Fp16)
        .spmm(&a, &x, &dev)
        .run
        .time_ms;
    assert!(
        half < full,
        "half precision should be faster: {half} vs {full}"
    );
}

#[test]
fn half_tile_shape_reduces_wmma_issue_count() {
    // 16×16×16 tiles consume twice the K per issue (Appendix B's TC-GNN
    // observation, inverted: fewer issues but more wasted zeros).
    let dev = device();
    let tf = TensorSpmm::with_precision(Precision::Tf32);
    let fp16 = TensorSpmm::with_precision(Precision::Fp16);
    let b_tf = tf.window_block_cost(100, 64, 16, 64, &dev);
    let b_half = fp16.window_block_cost(100, 64, 16, 64, &dev);
    assert_eq!(b_tf.wmma_issues, 8 * 4); // ceil(64/8) tiles × 4 chunks
    assert_eq!(b_half.wmma_issues, 4 * 4); // ceil(64/16) tiles × 4 chunks
    assert!(b_half.dram.bytes_loaded < b_tf.dram.bytes_loaded);
}

#[test]
fn quantized_kernels_are_deterministic() {
    let a = gen::erdos_renyi(256, 1_200, 5);
    let x = DenseMatrix::random_features(256, 32, 6);
    let dev = device();
    for p in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
        let z1 = HcSpmm::with_precision(p).spmm(&a, &x, &dev).z;
        let z2 = HcSpmm::with_precision(p).spmm(&a, &x, &dev).z;
        assert_eq!(z1, z2, "{p:?} nondeterministic");
    }
}
