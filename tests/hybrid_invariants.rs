//! Invariants of the hybrid kernel, the selector, and preprocessing.

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, DenseMatrix, RowWindowPartition};
use hc_core::{CoreChoice, CudaSpmm, HcSpmm, Selector, SpmmKernel, TensorSpmm, WindowFeatures};
use proptest::prelude::*;

fn device() -> DeviceSpec {
    DeviceSpec::rtx3090()
}

#[test]
fn hybrid_never_loses_badly_to_either_pure_path() {
    // Across a spread of graph shapes, the hybrid kernel stays within a few
    // percent of the better pure path (selector errors at the decision
    // boundary bound the loss) and usually beats both.
    let dev = device();
    let graphs = [
        gen::erdos_renyi(2_048, 10_000, 1),
        gen::community(2_048, 16_000, 64, 0.95, 2),
        gen::barabasi_albert(2_048, 5, 3),
        gen::molecules(2_048, 4_000, 4),
        gen::banded(2_048, 6, 5),
        gen::scatter_relabel(&gen::molecules(2_048, 8_000, 6), 7),
    ];
    for (i, a) in graphs.iter().enumerate() {
        let x = DenseMatrix::random_features(a.nrows, 64, i as u64);
        let hybrid = HcSpmm::default().spmm(a, &x, &dev).run.time_ms;
        let cuda = CudaSpmm::optimized().spmm(a, &x, &dev).run.time_ms;
        let tensor = TensorSpmm::optimized().spmm(a, &x, &dev).run.time_ms;
        let best = cuda.min(tensor);
        assert!(
            hybrid <= best * 1.05,
            "graph {i}: hybrid {hybrid} vs best pure {best}"
        );
    }
}

#[test]
fn forced_selectors_reduce_to_pure_paths() {
    let dev = device();
    let a = gen::community(1_024, 8_000, 32, 0.9, 1);
    let x = DenseMatrix::random_features(1_024, 32, 2);

    let all_cuda = HcSpmm {
        selector: Selector {
            w1: 0.0,
            w2: 0.0,
            b: 1.0,
        },
        ..HcSpmm::default()
    };
    let all_tensor = HcSpmm {
        selector: Selector {
            w1: 0.0,
            w2: 0.0,
            b: -1.0,
        },
        ..HcSpmm::default()
    };
    let tc = all_cuda.spmm(&a, &x, &dev);
    let tt = all_tensor.spmm(&a, &x, &dev);
    let pure_cuda = CudaSpmm::optimized().spmm(&a, &x, &dev);
    let pure_tensor = TensorSpmm::optimized().spmm(&a, &x, &dev);
    assert!((tc.run.time_ms - pure_cuda.run.time_ms).abs() < 1e-9);
    assert!((tt.run.time_ms - pure_tensor.run.time_ms).abs() < 1e-9);
    assert_eq!(tc.z, pure_cuda.z);
    assert_eq!(tt.z, pure_tensor.z);
}

#[test]
fn preprocessing_is_reusable_and_consistent() {
    let dev = device();
    let a = gen::molecules(1_024, 2_000, 3);
    let hc = HcSpmm::default();
    let pre1 = hc.preprocess(&a, &dev);
    let pre2 = hc.preprocess(&a, &dev);
    assert_eq!(pre1.choices, pre2.choices);
    assert_eq!(pre1.partition, pre2.partition);
    // Choices must agree with direct selector evaluation on each window.
    for (w, c) in pre1.partition.windows.iter().zip(&pre1.choices) {
        let expect = hc.selector.choose(&WindowFeatures::of(w));
        assert_eq!(*c, expect);
    }
}

#[test]
fn per_core_times_bracket_the_combined_makespan() {
    let dev = device();
    let a = gen::molecules(4_096, 8_000, 5);
    let hc = HcSpmm::default();
    let pre = hc.preprocess(&a, &dev);
    let (tc, tt) = hc.per_core_time(&pre, 64, &dev);
    let combined = hc
        .spmm_preprocessed(&pre, &a, &DenseMatrix::random_features(4_096, 64, 6), &dev)
        .run
        .time_ms
        - dev.launch_overhead_us * 1e-3;
    // One launch, blocks of both kinds: combined makespan is at least each
    // side alone minus scheduling slack, and at most their sum.
    assert!(combined <= (tc + tt) * 1.01 + 1e-9);
    assert!(combined >= tc.max(tt) * 0.5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn selector_is_monotone_in_sparsity(cols in 1.0f64..130.0, s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        // Denser window (lower sparsity) can only move the choice toward
        // Tensor, never away from it.
        let sel = Selector::DEFAULT;
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        let dense = sel.choose(&WindowFeatures { nnz_cols: cols, sparsity: lo });
        let sparse = sel.choose(&WindowFeatures { nnz_cols: cols, sparsity: hi });
        if dense == CoreChoice::Cuda {
            prop_assert_eq!(sparse, CoreChoice::Cuda);
        }
    }

    #[test]
    fn window_partition_preserves_mass(n in 16usize..300, edges in 1usize..2000, seed in 0u64..50) {
        let a = gen::erdos_renyi(n, edges, seed);
        let p = RowWindowPartition::build(&a);
        let total: usize = p.windows.iter().map(|w| w.nnz).sum();
        prop_assert_eq!(total, a.nnz());
        for w in &p.windows {
            // Sparsity and intensity are consistent: nnz = intensity·cols
            // and nnz = (1-sparsity)·rows·cols.
            if !w.is_empty() {
                let via_intensity = w.computing_intensity() * w.nnz_cols() as f64;
                prop_assert!((via_intensity - w.nnz as f64).abs() < 1e-9);
                let via_sparsity = (1.0 - w.sparsity()) * (w.rows * w.nnz_cols()) as f64;
                prop_assert!((via_sparsity - w.nnz as f64).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn hybrid_numeric_matches_reference_loosely(n in 32usize..200, edges in 10usize..1500, seed in 0u64..50) {
        let a = gen::erdos_renyi(n, edges, seed);
        let x = DenseMatrix::random_features(n, 8, seed);
        let dev = device();
        let r = HcSpmm::default().spmm(&a, &x, &dev);
        let want = a.spmm_reference(&x);
        prop_assert!(want.max_abs_diff(&r.z) < 0.1);
    }
}
