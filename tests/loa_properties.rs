//! Property-based tests of the LOA layout optimizer.

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Coo, Csr, DenseMatrix, RowWindowPartition};
use hc_core::{HcSpmm, Loa, SpmmKernel};
use proptest::prelude::*;

fn arb_symmetric_graph() -> impl Strategy<Value = Csr> {
    (4usize..120, 0usize..400, 0u64..1000).prop_map(|(n, e, seed)| {
        if e == 0 {
            Csr::empty(n, n)
        } else {
            gen::erdos_renyi(n, e, seed)
        }
    })
}

fn is_permutation(perm: &[u32], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p as usize >= n || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn loa_always_emits_a_valid_permutation(a in arb_symmetric_graph(), vw in 1usize..200) {
        let rep = Loa { vw }.run(&a);
        prop_assert!(is_permutation(&rep.perm, a.nrows));
    }

    #[test]
    fn reordered_graph_is_isomorphic(a in arb_symmetric_graph()) {
        let (b, rep) = Loa::default().optimize(&a);
        prop_assert_eq!(b.nnz(), a.nnz());
        prop_assert_eq!(b.transpose(), b.clone()); // stays symmetric
        // Degree multiset is preserved.
        let mut da: Vec<usize> = (0..a.nrows).map(|r| a.degree(r)).collect();
        let mut db: Vec<usize> = (0..b.nrows).map(|r| b.degree(r)).collect();
        da.sort_unstable();
        db.sort_unstable();
        prop_assert_eq!(da, db);
        // And specifically: new row i is old row perm[i].
        for (new, &old) in rep.perm.iter().enumerate() {
            prop_assert_eq!(b.degree(new), a.degree(old as usize));
        }
    }

    #[test]
    fn spmm_result_is_equivalent_up_to_permutation(
        entries in proptest::collection::vec((0u32..48, 0u32..48), 1..150),
        seed in 0u64..100,
    ) {
        // Build a symmetric matrix from random pairs.
        let mut coo = Coo::new(48, 48);
        for (u, v) in entries {
            if u != v {
                coo.push(u, v, 1.0);
                coo.push(v, u, 1.0);
            }
        }
        coo.deduplicate();
        coo.vals.iter_mut().for_each(|x| *x = 1.0);
        let a = coo.to_csr();

        let x = DenseMatrix::random_features(48, 8, seed);
        let (b, rep) = Loa::default().optimize(&a);
        let mut xp = DenseMatrix::zeros(48, 8);
        for (new, &old) in rep.perm.iter().enumerate() {
            xp.row_mut(new).copy_from_slice(x.row(old as usize));
        }
        let z = a.spmm_reference(&x);
        let zp = b.spmm_reference(&xp);
        for (new, &old) in rep.perm.iter().enumerate() {
            for (p, q) in zp.row(new).iter().zip(z.row(old as usize)) {
                prop_assert!((p - q).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn loa_never_panics_on_pathologies(n in 1usize..80) {
        // Fully isolated vertices, a clique, and a star.
        let empty = Csr::empty(n, n);
        prop_assert!(is_permutation(&Loa::default().run(&empty).perm, n));
        if n >= 3 {
            let mut coo = Coo::new(n, n);
            for v in 1..n as u32 {
                coo.push(0, v, 1.0);
                coo.push(v, 0, 1.0);
            }
            let star = coo.to_csr();
            prop_assert!(is_permutation(&Loa::default().run(&star).perm, n));
        }
    }
}

#[test]
fn loa_recovers_scattered_molecule_layouts() {
    // The headline behaviour: scatter a molecule collection, run LOA, and
    // both the computing intensity and the simulated SpMM time recover.
    let dev = DeviceSpec::rtx3090();
    let clean = gen::molecules(4_096, 10_000, 3);
    let scattered = gen::scatter_relabel(&clean, 4);
    let x = DenseMatrix::random_features(4_096, 64, 5);
    let hc = HcSpmm::default();

    let t_scattered = hc.spmm(&scattered, &x, &dev).run.time_ms;
    let (optimized, rep) = Loa::default().optimize(&scattered);
    let t_optimized = hc.spmm(&optimized, &x, &dev).run.time_ms;

    let i_scattered = RowWindowPartition::build(&scattered).mean_computing_intensity();
    let i_optimized = RowWindowPartition::build(&optimized).mean_computing_intensity();

    assert!(
        i_optimized > i_scattered * 1.3,
        "intensity should recover: {i_scattered:.2} → {i_optimized:.2}"
    );
    assert!(
        t_optimized < t_scattered,
        "time should recover: {t_scattered} → {t_optimized}"
    );
    assert!(rep.ops > 0 && rep.seconds > 0.0);
}

#[test]
fn larger_vw_searches_no_worse_windows() {
    // A wider candidate window can only improve (or tie) the greedy's
    // objective on average.
    let scattered = gen::scatter_relabel(&gen::molecules(2_048, 5_000, 7), 8);
    let narrow = Loa { vw: 8 }.optimize(&scattered).0;
    let wide = Loa { vw: 256 }.optimize(&scattered).0;
    let i_narrow = RowWindowPartition::build(&narrow).mean_computing_intensity();
    let i_wide = RowWindowPartition::build(&wide).mean_computing_intensity();
    assert!(
        i_wide >= i_narrow * 0.95,
        "wider VW should not be much worse: {i_narrow:.3} vs {i_wide:.3}"
    );
}
