//! Property tests over the sparse formats and IO paths.

use graph_sparse::{gen, io, Coo, Csr, DenseMatrix, MeTcf};
use proptest::prelude::*;

fn arb_entries() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f32)>)> {
    (2usize..80, 2usize..80).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r as u32, 0..c as u32, -5.0f32..5.0), 0..300)
            .prop_map(move |es| (r, c, es))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_csr_roundtrip_preserves_matrix((r, c, es) in arb_entries()) {
        let csr = Coo::from_triples(r, c, es).to_csr();
        let back = csr.to_coo().to_csr();
        prop_assert_eq!(back, csr);
    }

    #[test]
    fn csr_rows_are_sorted_and_within_bounds((r, c, es) in arb_entries()) {
        let csr = Coo::from_triples(r, c, es).to_csr();
        for row in 0..csr.nrows {
            let cols = csr.row_cols(row);
            for w in cols.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate column");
            }
            for &col in cols {
                prop_assert!((col as usize) < csr.ncols);
            }
        }
        prop_assert_eq!(*csr.row_ptr.last().unwrap() as usize, csr.nnz());
    }

    #[test]
    fn transpose_preserves_spmm_transposed((r, c, es) in arb_entries(), seed in 0u64..50) {
        let a = Coo::from_triples(r, c, es).to_csr();
        // (Aᵀ·y)ᵀ == yᵀ·A: check via dense equivalence.
        let y = DenseMatrix::random_features(a.nrows, 4, seed);
        let lhs = a.transpose().spmm_reference(&y);
        let dense = a.to_dense();
        let rhs = dense.transposed().matmul(&y);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn metcf_is_lossless((r, c, es) in arb_entries(), seed in 0u64..50) {
        let a = Coo::from_triples(r, c, es).to_csr();
        let m = MeTcf::from_csr(&a);
        prop_assert_eq!(m.nnz(), a.nnz());
        let x = DenseMatrix::random_features(c, 4, seed);
        let want = a.spmm_reference(&x);
        prop_assert!(want.max_abs_diff(&m.spmm_reference(&x)) < 1e-3);
    }

    #[test]
    fn binary_io_roundtrips_exactly((r, c, es) in arb_entries()) {
        let a = Coo::from_triples(r, c, es).to_csr();
        let bytes = io::csr_to_bytes(&a);
        prop_assert_eq!(io::csr_from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn truncated_binary_never_panics((r, c, es) in arb_entries(), cut in 0usize..64) {
        let a = Coo::from_triples(r, c, es).to_csr();
        let bytes = io::csr_to_bytes(&a);
        let take = bytes.len().saturating_sub(cut + 1);
        // Any truncation must fail cleanly, never panic.
        let _ = io::csr_from_bytes(&bytes[..take]);
    }

    #[test]
    fn symmetric_permutation_is_an_isomorphism(n in 2usize..60, edges in 0usize..200, seed in 0u64..50) {
        let a = if edges == 0 {
            Csr::empty(n, n)
        } else {
            gen::erdos_renyi(n, edges, seed)
        };
        // Random permutation via scatter_relabel.
        let b = gen::scatter_relabel(&a, seed ^ 99);
        prop_assert_eq!(b.nnz(), a.nnz());
        let mut da: Vec<usize> = (0..n).map(|r| a.degree(r)).collect();
        let mut db: Vec<usize> = (0..n).map(|r| b.degree(r)).collect();
        da.sort_unstable();
        db.sort_unstable();
        prop_assert_eq!(da, db);
    }

    #[test]
    fn gcn_normalize_keeps_rows_bounded(n in 2usize..60, edges in 1usize..200, seed in 0u64..50) {
        // Symmetric normalization: each entry ≤ 1, and row sums ≤ √(deg+1).
        let a = gen::erdos_renyi(n, edges, seed);
        let norm = a.gcn_normalize();
        for &v in &norm.vals {
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn edge_list_io_roundtrips_structure(n in 2usize..60, edges in 1usize..150, seed in 0u64..50) {
        let g = gen::erdos_renyi(n, edges, seed);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(std::io::BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(back.nnz(), g.nnz());
        // Degree multiset survives relabeling.
        let mut da: Vec<usize> = (0..g.nrows).map(|r| g.degree(r)).collect();
        let mut db: Vec<usize> = (0..back.nrows).map(|r| back.degree(r)).collect();
        da.sort_unstable();
        db.sort_unstable();
        prop_assert_eq!(da.iter().filter(|&&d| d > 0).collect::<Vec<_>>(),
                        db.iter().filter(|&&d| d > 0).collect::<Vec<_>>());
    }
}
