//! End-to-end runs over a real (public-domain) graph fixture: Zachary's
//! karate club, loaded through the edge-list IO path — the same route a
//! downstream user's SNAP download would take.

use gpu_sim::DeviceSpec;
use graph_sparse::{io, metrics, DenseMatrix};
use hc_core::{HcSpmm, Loa, SpmmKernel};
use hc_spmm::analytics;

fn karate() -> graph_sparse::Csr {
    let g = io::read_edge_list_file(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/karate.txt"))
        .expect("fixture parses");
    g.validate().expect("fixture is well-formed");
    g
}

#[test]
fn karate_club_loads_with_known_structure() {
    let g = karate();
    assert_eq!(g.nrows, 34);
    assert_eq!(g.nnz(), 156); // 78 undirected edges, stored both ways
    let d = metrics::degree_stats(&g);
    assert_eq!(d.max, 17); // the instructor (vertex 34 / id 33)
                           // The club is one connected component with 45 triangles (known values).
    let dev = DeviceSpec::rtx3090();
    let hc = HcSpmm::default();
    let (labels, _) = analytics::connected_components(&g, &hc, &dev);
    assert!(labels.iter().all(|&l| l == 0));
    let (tri, _) = analytics::triangle_count(&g, &hc, &dev);
    assert_eq!(tri, 45);
}

#[test]
fn karate_club_spmm_pipeline_runs() {
    let g = karate();
    let dev = DeviceSpec::rtx3090();
    let x = DenseMatrix::random_features(g.nrows, 16, 1);
    let r = HcSpmm::default().spmm(&g, &x, &dev);
    assert!(g.spmm_reference(&x).max_abs_diff(&r.z) < 0.05);
    // LOA on a 34-vertex graph is a no-op-scale exercise but must be sound.
    let (opt, rep) = Loa::default().optimize(&g);
    assert_eq!(opt.nnz(), g.nnz());
    assert_eq!(rep.perm.len(), 34);
}

#[test]
fn karate_club_pagerank_finds_the_hubs() {
    // The two faction leaders (ids 0 and 33) hold the top global PageRank.
    let g = karate();
    let dev = DeviceSpec::rtx3090();
    let p = analytics::transition_matrix(&g);
    let hc = HcSpmm::default();
    // Global PageRank = personalized with uniform restart: approximate by
    // averaging over all sources... instead run with damping toward every
    // vertex via a uniform seed column.
    let res = analytics::personalized_pagerank(
        &p,
        &(0..34).collect::<Vec<_>>(),
        0.85,
        1e-7,
        500,
        &hc,
        &dev,
    );
    // Sum each row across source columns ≈ global rank (uniform restart).
    let mut global: Vec<(usize, f32)> = (0..34)
        .map(|v| (v, (0..34).map(|s| res.state[(v, s)]).sum::<f32>()))
        .collect();
    global.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    // Vertex ids are remapped by first appearance in the edge list, so
    // identify the two faction leaders by their degrees (16 and 17).
    let mut by_degree: Vec<(usize, usize)> = (0..34).map(|v| (v, g.degree(v))).collect();
    by_degree.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    let leaders: Vec<usize> = by_degree[..2].iter().map(|&(v, _)| v).collect();
    let top2: Vec<usize> = global[..2].iter().map(|&(v, _)| v).collect();
    for l in &leaders {
        assert!(
            top2.contains(l),
            "leaders {leaders:?} should top the rank: {top2:?}"
        );
    }
}
