//! The paper's headline claims, asserted end to end at test scale.
//!
//! Each test names the section of the paper it guards. These are the
//! regression tripwires for the whole reproduction: if a model or dataset
//! change breaks one of the evaluation's qualitative findings, it fails
//! here with the section reference in the name.

use baselines::{CusparseSpmm, DtcSpmm, GeSpmm, SputnikSpmm, TcGnnSpmm};
use gnn::aggregator::{Aggregator, HcAggregator, KernelAggregator};
use gnn::train::{mean_timing, synthetic_labels, Trainer};
use gnn::Gcn;
use gpu_sim::DeviceSpec;
use graph_sparse::{DatasetId, DenseMatrix};
use hc_core::{HcSpmm, Loa, SpmmKernel};

const SCALE: usize = 384;

fn device() -> DeviceSpec {
    DeviceSpec::rtx3090()
}

fn geomean(v: &[f64]) -> f64 {
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

#[test]
fn sec6b_hc_spmm_beats_every_kernel_on_geomean() {
    // §VI-B1: "HC-SpMM consistently outperforms all compared methods".
    let dev = device();
    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(CusparseSpmm),
        Box::new(SputnikSpmm),
        Box::new(GeSpmm),
        Box::new(TcGnnSpmm::default()),
        Box::new(DtcSpmm::default()),
    ];
    let hc = HcSpmm::default();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); kernels.len()];
    for id in DatasetId::SPMM_SET {
        let ds = id.load_cached(SCALE);
        let x = DenseMatrix::random_features(ds.adj.nrows, ds.spec.dim.min(256), id as u64);
        let t_hc = hc.spmm(&ds.adj, &x, &dev).run.time_ms;
        for (k, kern) in kernels.iter().enumerate() {
            ratios[k].push(kern.spmm(&ds.adj, &x, &dev).run.time_ms / t_hc);
        }
    }
    for (k, r) in ratios.iter().enumerate() {
        let g = geomean(r);
        assert!(
            g >= 0.99,
            "HC-SpMM should not lose on geomean to kernel {k}: {g:.3}"
        );
    }
    // And cuSPARSE specifically loses by a clear margin.
    assert!(geomean(&ratios[0]) > 1.3, "cuSPARSE gap too small");
}

#[test]
fn sec6b_cusparse_is_worst_on_scattered_layouts() {
    // §VI-B1: AZ/DP's scattered adjacency makes cuSPARSE's memory access
    // inefficient; tiled kernels cope.
    let dev = device();
    let az = DatasetId::AZ.load_cached(SCALE);
    let gh = DatasetId::GH.load_cached(SCALE);
    let gap = |ds: &graph_sparse::Dataset| {
        let x = DenseMatrix::random_features(ds.adj.nrows, 96, 1);
        let cu = CusparseSpmm.spmm(&ds.adj, &x, &dev).run.time_ms;
        let hc = HcSpmm::default().spmm(&ds.adj, &x, &dev).run.time_ms;
        cu / hc
    };
    let (g_az, g_gh) = (gap(&az), gap(&gh));
    // At integration-test scale the fixed launch overhead compresses all
    // ratios; the ordering and a clear absolute gap are the claims.
    assert!(
        g_az > 1.15 * g_gh,
        "cuSPARSE's AZ gap ({g_az:.2}) should exceed its GH gap ({g_gh:.2})"
    );
    assert!(g_az > 1.6, "cuSPARSE should clearly lose on AZ: {g_az:.2}");
}

#[test]
fn sec6c_backward_gains_exceed_forward_gains_for_gcn() {
    // §VI-C1: "HC-SpMM exhibits a higher speedup ratio during backward
    // propagation" (fusion applies there).
    let dev = device();
    let ds = DatasetId::YS.load_cached(SCALE);
    let a = ds.adj.gcn_normalize();
    let dim = ds.spec.dim.min(256);
    let x = DenseMatrix::random_features(a.nrows, dim, 2);
    let labels = synthetic_labels(a.nrows, 8);
    let tr = Trainer {
        lr: 0.01,
        epochs: 1,
    };
    let run = |agg: &dyn Aggregator| {
        let mut m = Gcn::new(dim, 32, 8, 3);
        mean_timing(&tr.train_gcn(&mut m, &a, &x, &labels, agg, &dev))
    };
    let hc = run(&HcAggregator::new(&a, &dev));
    let ge = run(&KernelAggregator::new(GeSpmm));
    let fwd_gain = ge.forward_ms / hc.forward_ms;
    let bwd_gain = ge.backward_ms / hc.backward_ms;
    assert!(bwd_gain > 1.0, "backward should win: {bwd_gain:.3}");
    assert!(
        bwd_gain > fwd_gain,
        "backward gain {bwd_gain:.3} should exceed forward gain {fwd_gain:.3}"
    );
}

#[test]
fn sec5b_loa_improves_scattered_and_spares_clean_layouts() {
    // Fig. 14's sign structure: big win on AZ, small/none on the clean GH.
    let dev = device();
    let improvement = |id: DatasetId| {
        let ds = id.load_cached(SCALE);
        let x = DenseMatrix::random_features(ds.adj.nrows, ds.spec.dim.min(256), 3);
        let hc = HcSpmm::default();
        let before = hc.spmm(&ds.adj, &x, &dev).run.time_ms;
        let (opt, _) = Loa::default().optimize(&ds.adj);
        let after = hc.spmm(&opt, &x, &dev).run.time_ms;
        (before - after) / before
    };
    let az = improvement(DatasetId::AZ);
    let gh = improvement(DatasetId::GH);
    assert!(az > 0.10, "LOA should clearly help scattered AZ: {az:.3}");
    assert!(az > gh, "AZ ({az:.3}) should gain more than GH ({gh:.3})");
}

#[test]
fn sec5b_loa_multiplies_tensor_suited_windows() {
    // Fig. 15's direction on a molecule dataset.
    let dev = device();
    let ds = DatasetId::DD.load_cached(SCALE);
    let hc = HcSpmm::default();
    let (_, before_tensor) = hc.preprocess(&ds.adj, &dev).window_split();
    let (opt, _) = Loa::default().optimize(&ds.adj);
    let (_, after_tensor) = hc.preprocess(&opt, &dev).window_split();
    assert!(
        after_tensor > before_tensor,
        "LOA should create Tensor-suited windows: {before_tensor} → {after_tensor}"
    );
}

#[test]
fn sec4c_selector_transfers_across_architectures() {
    // Appendix A: the regression model is stable across GPU types.
    for kind in gpu_sim::DeviceKind::ALL {
        let dev = DeviceSpec::new(kind);
        let set = hc_core::selector::generate_training_set(&dev, 4);
        let acc = hc_core::Selector::DEFAULT.accuracy(&set);
        assert!(acc > 0.85, "{kind:?}: {acc:.3}");
    }
}

#[test]
fn appendix_f_preprocessing_amortizes_quickly() {
    // Appendix F: preprocessing is "negligible in … scenarios that require
    // thousands of SpMM operations such as GNN".
    let dev = device();
    let ds = DatasetId::YS.load_cached(SCALE);
    let x = DenseMatrix::random_features(ds.adj.nrows, 74, 5);
    let hc = HcSpmm::default();
    let pre = hc.preprocess(&ds.adj, &dev);
    let per_exec = hc.spmm_preprocessed(&pre, &ds.adj, &x, &dev).run.time_ms;
    // Preprocessing under 100 SpMM executions' worth of time: trivially
    // amortized over a 200-epoch training run (≥ 800 SpMM calls).
    assert!(
        pre.run.time_ms < 100.0 * per_exec,
        "preprocess {} vs per-exec {}",
        pre.run.time_ms,
        per_exec
    );
}
