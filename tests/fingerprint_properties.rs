//! Property tests for the structure fingerprint that keys the plan cache.
//!
//! The cache contract is exactly these three properties: graphs with the
//! same CSR structure share a plan no matter their values (same key), any
//! structural difference gets its own plan (different key), and the key a
//! process computes does not depend on how many worker threads are
//! configured (stable across thread counts).

use graph_sparse::{gen, Coo, Csr, DeltaCsr, FingerprintState, StructureFingerprint};
use proptest::prelude::*;

fn arb_entries() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f32)>)> {
    (2usize..60, 2usize..60).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r as u32, 0..c as u32, -5.0f32..5.0), 1..250)
            .prop_map(move |es| (r, c, es))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn values_never_affect_the_key((r, c, es) in arb_entries(), scale in -3.0f32..3.0) {
        let a = Coo::from_triples(r, c, es).to_csr();
        let mut b = a.clone();
        for (i, v) in b.vals.iter_mut().enumerate() {
            *v = *v * scale + i as f32;
        }
        prop_assert_eq!(
            StructureFingerprint::of(&a),
            StructureFingerprint::of(&b),
            "identical structure must key identically regardless of values"
        );
    }

    #[test]
    fn removing_any_single_entry_changes_the_key(
        (r, c, es) in arb_entries(),
        pick in 0usize..1000,
    ) {
        let a = Coo::from_triples(r, c, es).to_csr();
        let victim = pick % a.nnz();
        let mut triples = Vec::with_capacity(a.nnz() - 1);
        let mut k = 0;
        for row in 0..a.nrows {
            for (col, val) in a.row_cols(row).iter().zip(a.row_vals(row)) {
                if k != victim {
                    triples.push((row as u32, *col, *val));
                }
                k += 1;
            }
        }
        let b = Coo::from_triples(a.nrows, a.ncols, triples).to_csr();
        // Dropping one entry must change the key.
        prop_assert_ne!(StructureFingerprint::of(&a), StructureFingerprint::of(&b));
    }

    #[test]
    fn moving_any_single_entry_changes_the_key(
        (r, c, es) in arb_entries(),
        pick in 0usize..1000,
        shift in 1u32..7,
    ) {
        let a = Coo::from_triples(r, c, es).to_csr();
        let victim = pick % a.nnz();
        let mut triples = Vec::with_capacity(a.nnz());
        let mut k = 0;
        for row in 0..a.nrows {
            for (col, val) in a.row_cols(row).iter().zip(a.row_vals(row)) {
                let col = if k == victim {
                    // Offset in [1, ncols-1]: the entry always truly moves.
                    let offset = 1 + shift % (a.ncols as u32 - 1);
                    (*col + offset) % a.ncols as u32
                } else {
                    *col
                };
                triples.push((row as u32, col, *val));
                k += 1;
            }
        }
        let b = Coo::from_triples(a.nrows, a.ncols, triples).to_csr();
        // Moving one entry to another column must change the key. The
        // shifted column can collide with an existing entry in the same row
        // (COO de-duplicates) — then nnz shrank, still a structural edit.
        prop_assert_ne!(StructureFingerprint::of(&a), StructureFingerprint::of(&b));
    }

    /// Churning one edge and resuming the hash from the mutated row's
    /// checkpoint lands on the exact key a full recompute produces — the
    /// incremental path the plan patcher uses is not a different hash.
    #[test]
    fn incremental_update_equals_full_recompute(
        (r, c, es) in arb_entries(),
        pick in 0usize..1000,
    ) {
        let a = Coo::from_triples(r, c, es).to_csr();
        let victim = pick % a.nnz();
        let (mut k, mut delete) = (0, None);
        for row in 0..a.nrows {
            for &col in a.row_cols(row) {
                if k == victim {
                    delete = Some((row as u32, col));
                }
                k += 1;
            }
        }
        let (dr, dc) = delete.expect("victim index is in range");
        let delta = DeltaCsr::new(a.nrows, a.ncols, vec![], vec![(dr, dc)])
            .expect("deleting an existing edge is a valid delta");
        let b = delta.apply(&a).expect("valid against its base");
        let first_dirty = delta.first_dirty_row().expect("delta is non-empty");
        let incremental = FingerprintState::of(&a).update(&b, first_dirty);
        prop_assert_eq!(&incremental, &FingerprintState::of(&b));
        prop_assert_eq!(incremental.fingerprint(), StructureFingerprint::of(&b));
    }

    #[test]
    fn shape_is_part_of_the_structure((r, c, es) in arb_entries()) {
        let a = Coo::from_triples(r, c, es).to_csr();
        let wider = Coo::from_triples(r, c + 1, es_of(&a)).to_csr();
        let taller = Coo::from_triples(r + 1, c, es_of(&a)).to_csr();
        prop_assert_ne!(StructureFingerprint::of(&a), StructureFingerprint::of(&wider));
        prop_assert_ne!(StructureFingerprint::of(&a), StructureFingerprint::of(&taller));
    }
}

fn es_of(a: &Csr) -> Vec<(u32, u32, f32)> {
    (0..a.nrows)
        .flat_map(|row| {
            a.row_cols(row)
                .iter()
                .zip(a.row_vals(row))
                .map(move |(c, v)| (row as u32, *c, *v))
        })
        .collect()
}

/// The fingerprint is computed serially, and this pins that down as an
/// observable guarantee: the key is bit-identical at any configured worker
/// count. (Fingerprints above are all computed under the default thread
/// setting; this is the only test in the binary that changes it, and the
/// hash itself never touches the pool, so concurrent tests are unaffected.)
#[test]
fn keys_are_stable_across_thread_counts() {
    let graphs = [
        gen::erdos_renyi(512, 3_000, 5),
        gen::community(1_024, 8_000, 32, 0.9, 6),
        gen::molecules(600, 1_400, 7),
    ];
    let saved = hc_parallel::thread_override();
    let keys_at = |threads: usize| -> Vec<StructureFingerprint> {
        hc_parallel::set_threads(threads);
        graphs.iter().map(StructureFingerprint::of).collect()
    };
    let serial = keys_at(1);
    for threads in [2, 8] {
        assert_eq!(
            serial,
            keys_at(threads),
            "fingerprints at {threads} threads differ from single-thread"
        );
    }
    hc_parallel::set_threads(saved);
}
