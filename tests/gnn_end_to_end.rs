//! End-to-end GNN training across aggregation backends.
//!
//! §VI-A: "Due to the GNN algorithm remaining unchanged, the training
//! results of these frameworks are identical." We verify that — every
//! backend with exact numerics produces the same loss trajectory — plus
//! fusion equivalence and timing sanity at the pipeline level.

use gnn::aggregator::{Aggregator, HcAggregator, KernelAggregator};
use gnn::gin::gin_propagation;
use gnn::train::{synthetic_labels, Trainer};
use gnn::{Gcn, Gin};
use gpu_sim::DeviceSpec;
use graph_sparse::{gen, DatasetId, DenseMatrix};
use hc_core::{HcSpmm, Selector};

fn device() -> DeviceSpec {
    DeviceSpec::rtx3090()
}

/// HC aggregator pinned to the CUDA path — exact f32, comparable
/// bit-for-bit with the CUDA-core baselines.
fn exact_hc(a: &graph_sparse::Csr, dev: &DeviceSpec, fuse: bool) -> HcAggregator {
    let hc = HcSpmm {
        selector: Selector {
            w1: 0.0,
            w2: 0.0,
            b: 1.0,
        },
        ..HcSpmm::default()
    };
    HcAggregator::with_kernel(hc, a, dev, fuse)
}

#[test]
fn all_exact_backends_produce_identical_training() {
    let dev = device();
    let a = gen::community(512, 3_000, 16, 0.9, 1).gcn_normalize();
    let x = DenseMatrix::random_features(512, 32, 2);
    let labels = synthetic_labels(512, 8);
    let tr = Trainer { lr: 0.1, epochs: 4 };

    let run = |agg: &dyn Aggregator| -> Vec<f64> {
        let mut m = Gcn::new(32, 16, 8, 7);
        tr.train_gcn(&mut m, &a, &x, &labels, agg, &dev)
            .iter()
            .map(|e| e.loss)
            .collect()
    };

    let fused = run(&exact_hc(&a, &dev, true));
    let unfused = run(&exact_hc(&a, &dev, false));
    let ge = run(&KernelAggregator::new(baselines::GeSpmm));
    let sputnik = run(&KernelAggregator::new(baselines::SputnikSpmm));

    assert_eq!(fused, unfused, "fusion changed the numerics");
    assert_eq!(fused, ge, "GE-SpMM trained differently");
    assert_eq!(fused, sputnik, "Sputnik trained differently");
}

#[test]
fn default_hybrid_trains_close_to_exact() {
    // With TF32 Tensor windows the trajectory deviates slightly but must
    // stay close and keep descending.
    let dev = device();
    let ds = DatasetId::PT.load_scaled(512);
    let a = ds.adj.gcn_normalize();
    let x = DenseMatrix::random_features(a.nrows, 29, 3);
    let labels = synthetic_labels(a.nrows, 4);
    let tr = Trainer { lr: 0.2, epochs: 6 };

    let mut m1 = Gcn::new(29, 16, 4, 9);
    let hybrid = HcAggregator::new(&a, &dev);
    let traj_h = tr.train_gcn(&mut m1, &a, &x, &labels, &hybrid, &dev);

    let mut m2 = Gcn::new(29, 16, 4, 9);
    let exact = exact_hc(&a, &dev, true);
    let traj_e = tr.train_gcn(&mut m2, &a, &x, &labels, &exact, &dev);

    for (h, e) in traj_h.iter().zip(&traj_e) {
        assert!(
            (h.loss - e.loss).abs() < 0.02,
            "TF32 trajectory drifted: {} vs {}",
            h.loss,
            e.loss
        );
    }
    assert!(traj_h.last().unwrap().loss < traj_h[0].loss);
}

#[test]
fn gin_forward_fusion_preserves_training() {
    let dev = device();
    let a = gen::molecules(400, 700, 5);
    let s = gin_propagation(&a, 0.1);
    let x = DenseMatrix::random_features(s.nrows, 16, 6);
    let labels = synthetic_labels(s.nrows, 4);
    let tr = Trainer { lr: 0.1, epochs: 3 };

    let run = |fuse: bool| -> (Vec<f64>, f64) {
        let agg = exact_hc(&s, &dev, fuse);
        let mut m = Gin::new(16, 8, 4, 11);
        let epochs = tr.train_gin(&mut m, &s, &x, &labels, &agg, &dev);
        (
            epochs.iter().map(|e| e.loss).collect(),
            epochs.iter().map(|e| e.forward_ms).sum(),
        )
    };
    let (loss_f, time_f) = run(true);
    let (loss_u, time_u) = run(false);
    assert_eq!(loss_f, loss_u);
    assert!(
        time_f < time_u,
        "GIN forward should benefit from fusion: {time_f} vs {time_u}"
    );
}

#[test]
fn epoch_time_scales_with_graph_size() {
    let dev = device();
    let tr = Trainer {
        lr: 0.05,
        epochs: 1,
    };
    let mut times = Vec::new();
    for n in [256usize, 1024, 4096] {
        let a = gen::community(n, n * 6, n / 32, 0.9, 2).gcn_normalize();
        let x = DenseMatrix::random_features(n, 32, 3);
        let labels = synthetic_labels(n, 8);
        let agg = HcAggregator::new(&a, &dev);
        let mut m = Gcn::new(32, 16, 8, 4);
        let e = &tr.train_gcn(&mut m, &a, &x, &labels, &agg, &dev)[0];
        times.push(e.forward_ms + e.backward_ms);
    }
    assert!(times[0] < times[1] && times[1] < times[2], "{times:?}");
}

#[test]
fn dataset_registry_trains_without_panics() {
    // Smoke: a few registry analogues run the full pipeline at tiny scale.
    let dev = device();
    let tr = Trainer {
        lr: 0.05,
        epochs: 1,
    };
    for id in [DatasetId::CS, DatasetId::YS, DatasetId::RD] {
        let ds = id.load_scaled(1024);
        let a = ds.adj.gcn_normalize();
        let dim = ds.spec.dim.min(128);
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let labels = synthetic_labels(a.nrows, 22);
        let agg = HcAggregator::new(&a, &dev);
        let mut m = Gcn::new(dim, 32, 22, 5);
        let e = tr.train_gcn(&mut m, &a, &x, &labels, &agg, &dev);
        assert!(e[0].loss.is_finite(), "{id:?} diverged");
        assert!(e[0].forward_ms > 0.0 && e[0].backward_ms > 0.0);
    }
}
