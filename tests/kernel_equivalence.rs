//! Every SpMM kernel in the workspace must compute the same product.
//!
//! CUDA-path kernels are bit-exact against the reference multiply; Tensor
//! paths match within TF32 tolerance. Property-based over random graphs.

use baselines::{cpu_spmm, CusparseSpmm, DtcSpmm, GeSpmm, SputnikSpmm, TcGnnSpmm};
use gpu_sim::{DeviceSpec, Precision};
use graph_sparse::{gen, Coo, Csr, DenseMatrix};
use hc_core::{CudaSpmm, HcSpmm, SpmmKernel, TensorSpmm};
use proptest::prelude::*;

fn exact_kernels() -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(CudaSpmm::optimized()),
        Box::new(CudaSpmm::unoptimized()),
        Box::new(CusparseSpmm),
        Box::new(SputnikSpmm),
        Box::new(GeSpmm),
    ]
}

fn quantized_kernels() -> Vec<Box<dyn SpmmKernel>> {
    vec![
        Box::new(TensorSpmm::optimized()),
        Box::new(TensorSpmm::unoptimized()),
        Box::new(TcGnnSpmm::default()),
        Box::new(DtcSpmm::default()),
        Box::new(HcSpmm::default()),
    ]
}

/// Random sparse matrix strategy: shape plus entry list.
fn arb_csr() -> impl Strategy<Value = Csr> {
    (2usize..60, 2usize..60).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r as u32, 0..c as u32, -2.0f32..2.0), 0..200)
            .prop_map(move |entries| Coo::from_triples(r, c, entries).to_csr())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cuda_family_is_bit_exact(a in arb_csr(), dim in 1usize..70, seed in 0u64..100) {
        let x = DenseMatrix::random_features(a.ncols, dim, seed);
        let dev = DeviceSpec::rtx3090();
        let want = a.spmm_reference(&x);
        for k in exact_kernels() {
            let r = k.spmm(&a, &x, &dev);
            prop_assert_eq!(&r.z, &want, "{} diverged", k.name());
            prop_assert!(r.run.time_ms >= 0.0);
        }
        prop_assert_eq!(&cpu_spmm(&a, &x).z, &want);
    }

    #[test]
    fn tensor_family_matches_within_tf32(a in arb_csr(), dim in 1usize..70, seed in 0u64..100) {
        let x = DenseMatrix::random_features(a.ncols, dim, seed);
        let dev = DeviceSpec::rtx3090();
        let want = a.spmm_reference(&x);
        // Worst-case TF32 error ~ 2^-11 per product, summed over a row.
        let max_row_nnz = (0..a.nrows).map(|r| a.degree(r)).max().unwrap_or(0);
        let tol = 1e-3 * (max_row_nnz as f32 + 1.0) * 4.0;
        for k in quantized_kernels() {
            let r = k.spmm(&a, &x, &dev);
            let err = want.max_abs_diff(&r.z);
            prop_assert!(err <= tol, "{}: err {} > tol {}", k.name(), err, tol);
        }
    }

    #[test]
    fn spmm_is_linear_in_x(a in arb_csr(), dim in 1usize..20, seed in 0u64..50) {
        // A·(x + y) == A·x + A·y for the exact paths.
        let x = DenseMatrix::random_features(a.ncols, dim, seed);
        let y = DenseMatrix::random_features(a.ncols, dim, seed ^ 0xbeef);
        let dev = DeviceSpec::rtx3090();
        let k = CudaSpmm::optimized();
        let lhs = k.spmm(&a, &x.add(&y), &dev).z;
        let rhs = k.spmm(&a, &x, &dev).z.add(&k.spmm(&a, &y, &dev).z);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn simulated_time_is_deterministic(a in arb_csr(), seed in 0u64..50) {
        let x = DenseMatrix::random_features(a.ncols, 16, seed);
        let dev = DeviceSpec::rtx3090();
        for k in exact_kernels().into_iter().chain(quantized_kernels()) {
            let t1 = k.spmm(&a, &x, &dev).run.time_ms;
            let t2 = k.spmm(&a, &x, &dev).run.time_ms;
            prop_assert_eq!(t1, t2, "{} nondeterministic", k.name());
        }
    }
}

#[test]
fn fp32_tensor_and_hybrid_are_bit_exact() {
    let a = gen::community(700, 5_000, 20, 0.9, 3);
    let x = DenseMatrix::random_features(700, 48, 4);
    let dev = DeviceSpec::rtx3090();
    let want = a.spmm_reference(&x);
    assert_eq!(
        TensorSpmm::with_precision(Precision::Fp32)
            .spmm(&a, &x, &dev)
            .z,
        want
    );
    assert_eq!(
        HcSpmm::with_precision(Precision::Fp32).spmm(&a, &x, &dev).z,
        want
    );
}

#[test]
fn empty_and_degenerate_inputs() {
    let dev = DeviceSpec::rtx3090();
    for k in exact_kernels().into_iter().chain(quantized_kernels()) {
        // Empty matrix.
        let a = Csr::empty(33, 17);
        let x = DenseMatrix::random_features(17, 5, 1);
        let r = k.spmm(&a, &x, &dev);
        assert_eq!(r.z, DenseMatrix::zeros(33, 5), "{} on empty", k.name());
        // Single entry.
        let a = Coo::from_triples(3, 3, [(1, 2, 4.0)]).to_csr();
        let x = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let r = k.spmm(&a, &x, &dev);
        assert!(
            (r.z[(1, 0)] - 12.0).abs() < 1e-2,
            "{} single entry",
            k.name()
        );
    }
}

#[test]
fn all_kernels_report_plausible_profiles() {
    let a = gen::barabasi_albert(2_000, 4, 9);
    let x = DenseMatrix::random_features(2_000, 64, 10);
    let dev = DeviceSpec::rtx3090();
    for k in baselines::all_kernels() {
        let r = k.spmm(&a, &x, &dev);
        let p = &r.run.profile;
        assert!(p.dram_bytes() > 0, "{}: no traffic", k.name());
        assert!(p.blocks > 0, "{}: no blocks", k.name());
        assert_eq!(p.launches, 1, "{}: wrong launch count", k.name());
        // Output bytes at least the Z matrix (stored once).
        assert!(
            p.dram_bytes_stored >= (a.nrows * x.cols * 4) as u64,
            "{}: Z not stored",
            k.name()
        );
    }
}
