//! Property-based gradient checks: random tiny GCNs against finite
//! differences, across random graph shapes and layer widths.

use gnn::aggregator::HcAggregator;
use gnn::ops;
use gnn::Gcn;
use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Csr, DenseMatrix};
use hc_core::{HcSpmm, Selector};
use proptest::prelude::*;

fn exact_agg(a: &Csr, dev: &DeviceSpec) -> HcAggregator {
    let hc = HcSpmm {
        selector: Selector {
            w1: 0.0,
            w2: 0.0,
            b: 1.0,
        },
        ..HcSpmm::default()
    };
    HcAggregator::with_kernel(hc, a, dev, true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gcn_gradients_hold_on_random_shapes(
        n in 8usize..24,
        edges in 5usize..60,
        in_dim in 2usize..6,
        hidden in 2usize..6,
        classes in 2usize..4,
        seed in 0u64..1000,
    ) {
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(n, edges, seed).gcn_normalize();
        let x = DenseMatrix::random_features(n, in_dim, seed ^ 1);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let agg = exact_agg(&a, &dev);
        let model = Gcn::new(in_dim, hidden, classes, seed ^ 2);

        let loss_of = |m: &Gcn| {
            let (c, _) = m.forward(&a, &x, &agg, &dev);
            ops::softmax_cross_entropy(&c.logits, &labels, &dev).0
        };

        // Analytic gradient of one probed w1 entry via lr=1 backward.
        let mut probe = model.clone();
        let (cache, _) = probe.forward(&a, &x, &agg, &dev);
        let (_, dl, _) = ops::softmax_cross_entropy(&cache.logits, &labels, &dev);
        let before = probe.w1.data[0];
        probe.backward(&a, &x, &cache, &dl, &agg, 1.0, &dev);
        let analytic = before - probe.w1.data[0];

        let eps = 1e-2f32;
        let mut mp = model.clone();
        let mut mm = model.clone();
        mp.w1.data[0] += eps;
        mm.w1.data[0] -= eps;
        let fd = ((loss_of(&mp) - loss_of(&mm)) / (2.0 * eps as f64)) as f32;
        prop_assert!(
            (fd - analytic).abs() < 3e-2 * (1.0 + fd.abs().max(analytic.abs())),
            "fd {} vs analytic {}", fd, analytic
        );
    }
}
