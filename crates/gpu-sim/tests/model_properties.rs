//! Property-based tests of the GPU performance model.

use gpu_sim::{
    coalesced_transactions, gather_transactions, shared_store_conflicts, BlockCost, DeviceKind,
    DeviceSpec,
};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = BlockCost> {
    (
        0u64..100_000,
        0u64..10_000,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..50_000,
        1u32..32,
    )
        .prop_map(|(fma, wmma, loaded, stored, tx, warps)| {
            let mut b = BlockCost {
                cuda_fma_issues: fma,
                wmma_issues: wmma,
                warps,
                ..Default::default()
            };
            b.dram.bytes_loaded = loaded;
            b.dram.bytes_stored = stored;
            b.dram.transactions = tx;
            b
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn block_cycles_are_finite_and_nonnegative(b in arb_block()) {
        for kind in DeviceKind::ALL {
            let d = DeviceSpec::new(kind);
            let c = b.cycles(&d);
            prop_assert!(c.is_finite() && c >= 0.0);
            prop_assert!(b.compute_cycles(&d) >= 0.0);
            prop_assert!(b.memory_cycles(&d) >= 0.0);
        }
    }

    #[test]
    fn warm_view_never_costs_more(b in arb_block()) {
        let d = DeviceSpec::rtx3090();
        prop_assert!(b.warm().cycles(&d) <= b.cycles(&d) + 1e-9);
    }

    #[test]
    fn kernel_time_is_monotone_in_block_count(b in arb_block(), n in 1usize..200) {
        let d = DeviceSpec::rtx3090();
        let few = d.execute(&vec![b; n]);
        let more = d.execute(&vec![b; n + 50]);
        prop_assert!(more.time_ms >= few.time_ms - 1e-12);
    }

    #[test]
    fn makespan_bounds_hold(costs in proptest::collection::vec(0.0f64..1e6, 1..300)) {
        let d = DeviceSpec::rtx3090();
        let blocks: Vec<BlockCost> = costs
            .iter()
            .map(|&c| BlockCost::with_cuda_compute(c))
            .collect();
        let run = d.execute(&blocks);
        let cycle_costs: Vec<f64> = blocks.iter().map(|b| b.cycles(&d)).collect();
        let total: f64 = cycle_costs.iter().sum();
        let max = cycle_costs.iter().cloned().fold(0.0, f64::max);
        // Classic multiprocessor-scheduling bounds.
        prop_assert!(run.makespan_cycles + 1e-6 >= max);
        prop_assert!(run.makespan_cycles + 1e-6 >= total / d.num_sms as f64);
        prop_assert!(run.makespan_cycles <= total + 1e-6);
    }

    #[test]
    fn coalesced_transactions_are_subadditive(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        // Splitting a transfer can never reduce the transaction count.
        let whole = coalesced_transactions(a + b, 128);
        let split = coalesced_transactions(a, 128) + coalesced_transactions(b, 128);
        prop_assert!(split >= whole);
    }

    #[test]
    fn gather_never_beats_coalesced(count in 1u64..10_000, item in 1u32..64) {
        let g = gather_transactions(count, item, 128);
        let c = coalesced_transactions(count * item as u64, 128);
        prop_assert!(g >= c);
    }

    #[test]
    fn gather_charges_ceil_per_item_at_least_one(
        count in 0u64..100_000,
        item in 0u32..100_000,
        tx in 1u32..4_096,
    ) {
        // Per-item cost is exactly ceil(item_bytes / transaction_bytes),
        // floored at one transaction — including item_bytes = 0, where the
        // address still has to be dereferenced.
        let per_item = (item as u64).div_ceil(tx as u64).max(1);
        prop_assert!(per_item >= 1);
        prop_assert_eq!(gather_transactions(count, item, tx), count * per_item);
    }

    #[test]
    fn gather_is_monotone_in_every_argument(
        count in 0u64..10_000,
        item in 0u32..10_000,
        tx in 1u32..2_048,
    ) {
        let base = gather_transactions(count, item, tx);
        prop_assert!(gather_transactions(count + 1, item, tx) >= base);
        prop_assert!(gather_transactions(count, item + 1, tx) >= base);
        // A wider transaction never costs more.
        prop_assert!(gather_transactions(count, item, tx * 2) <= base);
    }

    #[test]
    fn bank_conflicts_bounded_by_warp_size(offsets in proptest::collection::vec(0u32..4096, 1..32)) {
        let conflicts = shared_store_conflicts(&offsets, 32);
        prop_assert!(conflicts < offsets.len() as u64);
    }

    #[test]
    fn profile_metrics_stay_in_percent_range(b in arb_block(), t in 1e-6f64..1e3) {
        let d = DeviceSpec::rtx3090();
        let run = d.execute(&[b]);
        for v in [
            run.profile.tensor_core_utilization(&d, t),
            run.profile.compute_throughput(&d, t),
            run.profile.memory_throughput(&d, t),
        ] {
            prop_assert!((0.0..=100.0).contains(&v));
        }
    }
}

#[test]
fn device_presets_are_distinct_and_ordered() {
    let d3090 = DeviceSpec::rtx3090();
    let d4090 = DeviceSpec::rtx4090();
    let a100 = DeviceSpec::a100();
    // Published spec relationships.
    assert!(d4090.clock_ghz > d3090.clock_ghz);
    assert!(a100.dram_bandwidth_gbs > d4090.dram_bandwidth_gbs);
    assert!(a100.cuda_cores_per_sm < d3090.cuda_cores_per_sm);
    // Same compute-bound kernel: the 4090's clock makes it faster.
    let blocks = vec![BlockCost::with_cuda_compute(1e5); 512];
    let t3090 = d3090.execute(&blocks).time_ms;
    let t4090 = d4090.execute(&blocks).time_ms;
    assert!(t4090 < t3090);
}
