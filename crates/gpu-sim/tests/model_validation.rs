//! Cross-validation of the analytic block-cost model against the
//! trace-level interpreter.
//!
//! The two estimators share the architectural constants but nothing else:
//! the analytic model works from aggregate counts with closed-form overlap,
//! the interpreter executes per-warp programs against explicit ports. If
//! the analytic model is sane, the two must *rank* workloads consistently
//! (high rank correlation) — and agree on the Fig. 1 regime boundaries.

use gpu_sim::trace::{cuda_window_trace, simulate_block, tensor_window_trace};
use gpu_sim::{BlockCost, DeviceSpec};

/// Spearman rank correlation.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap());
        let mut r = vec![0f64; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let (mut da, mut db) = (0.0, 0.0);
    for i in 0..a.len() {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    num / (da.sqrt() * db.sqrt()).max(1e-12)
}

/// Analytic cycles for a CUDA window with uniform row occupancy.
fn analytic_cuda(nnz: usize, cols: usize, dim: usize, d: &DeviceSpec) -> f64 {
    // Mirror CudaSpmm::window_block_cost's structure without depending on
    // hc-core (which would be a circular dev-dependency).
    let slices = dim.div_ceil(32);
    let mut b = BlockCost {
        warps: 16,
        cuda_fma_issues: (nnz * slices) as u64,
        ..Default::default()
    };
    b.shared.loads = (nnz * slices) as u64;
    b.dram.transactions = (nnz * slices) as u64 + 16;
    b.dram.bytes_loaded = (cols * dim) as u64 * 4 + nnz as u64 * 8;
    b.dram.bytes_stored = (16 * dim) as u64 * 4;
    b.cycles(d)
}

fn analytic_tensor(nnz: usize, cols: usize, dim: usize, d: &DeviceSpec) -> f64 {
    let tiles = cols.div_ceil(8);
    let chunks = dim.div_ceil(16);
    let frags = (tiles * chunks) as u64;
    let mut b = BlockCost {
        warps: 8,
        wmma_issues: frags,
        ..Default::default()
    };
    b.shared.loads = frags * 2;
    b.shared.stores = frags * 4 + (nnz as u64).div_ceil(32);
    b.dram.transactions = frags * 8 + (nnz as u64 * 10) / 128 + 16;
    b.dram.bytes_loaded = (cols * dim) as u64 * 4 + nnz as u64 * 10;
    b.dram.bytes_stored = (16 * dim) as u64 * 4;
    b.cycles(d)
}

#[test]
fn cuda_model_ranks_like_the_trace_interpreter() {
    let d = DeviceSpec::rtx3090();
    let mut analytic = Vec::new();
    let mut traced = Vec::new();
    for &per_row in &[1usize, 2, 4, 8, 12, 15] {
        for &dim in &[32usize, 64, 96] {
            let nnz = per_row * 16;
            let cols = (nnz / 2).clamp(1, 130);
            analytic.push(analytic_cuda(nnz, cols, dim, &d));
            traced.push(simulate_block(
                &cuda_window_trace(&[per_row; 16], dim, &d),
                &d,
            ));
        }
    }
    let rho = spearman(&analytic, &traced);
    assert!(
        rho > 0.85,
        "analytic CUDA model disagrees with trace interpreter: rho = {rho:.3}"
    );
}

#[test]
fn tensor_model_ranks_like_the_trace_interpreter() {
    let d = DeviceSpec::rtx3090();
    let mut analytic = Vec::new();
    let mut traced = Vec::new();
    for &cols in &[8usize, 16, 32, 64, 96, 128] {
        for &dim in &[32usize, 64, 96] {
            let nnz = cols * 4;
            analytic.push(analytic_tensor(nnz, cols, dim, &d));
            traced.push(simulate_block(&tensor_window_trace(nnz, cols, dim, &d), &d));
        }
    }
    let rho = spearman(&analytic, &traced);
    assert!(
        rho > 0.85,
        "analytic Tensor model disagrees with trace interpreter: rho = {rho:.3}"
    );
}

#[test]
fn both_estimators_agree_on_the_fig1_regimes() {
    // Dense few-column window → Tensor wins under BOTH estimators; sparse
    // wide window → CUDA wins under both (warm, like Fig. 1).
    let d = DeviceSpec::rtx3090();
    let dim = 32;

    // Dense: 16×16 fully occupied (256 nnz, 16 cols).
    let dense_cuda_trace = simulate_block(&cuda_window_trace(&[16; 16], dim, &d), &d);
    let dense_tensor_trace = simulate_block(&tensor_window_trace(256, 16, dim, &d), &d);
    assert!(
        dense_tensor_trace < dense_cuda_trace,
        "trace: tensor should win dense windows ({dense_tensor_trace} vs {dense_cuda_trace})"
    );

    // Sparse & wide: 1 nnz/row over 128 columns.
    let sparse_cuda_trace = simulate_block(&cuda_window_trace(&[1; 16], dim, &d), &d);
    let sparse_tensor_trace = simulate_block(&tensor_window_trace(16, 128, dim, &d), &d);
    assert!(
        sparse_cuda_trace < sparse_tensor_trace,
        "trace: cuda should win sparse wide windows ({sparse_cuda_trace} vs {sparse_tensor_trace})"
    );

    // The analytic (warm) model draws the same two conclusions.
    let dc = analytic_cuda(256, 16, dim, &d);
    let dt = analytic_tensor(256, 16, dim, &d);
    let sc = analytic_cuda(16, 128, dim, &d);
    let st = analytic_tensor(16, 128, dim, &d);
    assert!(dt < dc && sc < st, "analytic regimes: {dc} {dt} {sc} {st}");
}
