//! Kernel profiling counters — the stand-in for nvprof / Nsight Compute.
//!
//! The paper's appendix tables report Tensor-core utilization (Table XIII),
//! per-core execution time (Table XIV), and compute/memory throughput
//! (Table XV). Those quantities derive from hardware counters; here they
//! derive from the same counters collected by construction.

use serde::{Deserialize, Serialize};

use crate::cost::BlockCost;
use crate::device::DeviceSpec;

/// Aggregated counters of one simulated kernel (or kernel sequence).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Warp-wide FP32 FMA issues on CUDA cores.
    pub cuda_fma_issues: u64,
    /// Warp-level WMMA issues on Tensor cores.
    pub wmma_issues: u64,
    /// Bytes loaded from global memory.
    pub dram_bytes_loaded: u64,
    /// Bytes stored to global memory.
    pub dram_bytes_stored: u64,
    /// Global-memory transactions.
    pub dram_transactions: u64,
    /// Warp-wide shared-memory loads.
    pub shared_loads: u64,
    /// Warp-wide shared-memory stores.
    pub shared_stores: u64,
    /// Serialized bank-conflict replays.
    pub bank_conflicts: u64,
    /// Kernel launches included in this profile.
    pub launches: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Warps executed.
    pub warps: u64,
}

impl KernelProfile {
    /// Fold one block's counters into the profile.
    pub fn absorb(&mut self, b: &BlockCost) {
        self.cuda_fma_issues += b.cuda_fma_issues;
        self.wmma_issues += b.wmma_issues;
        self.dram_bytes_loaded += b.dram.bytes_loaded;
        self.dram_bytes_stored += b.dram.bytes_stored;
        self.dram_transactions += b.dram.transactions;
        self.shared_loads += b.shared.loads;
        self.shared_stores += b.shared.stores;
        self.bank_conflicts += b.shared.bank_conflicts;
        self.blocks += 1;
        self.warps += b.warps as u64;
    }

    /// Merge another kernel's profile (for sequences / training epochs).
    pub fn merge(&mut self, other: &KernelProfile) {
        self.cuda_fma_issues += other.cuda_fma_issues;
        self.wmma_issues += other.wmma_issues;
        self.dram_bytes_loaded += other.dram_bytes_loaded;
        self.dram_bytes_stored += other.dram_bytes_stored;
        self.dram_transactions += other.dram_transactions;
        self.shared_loads += other.shared_loads;
        self.shared_stores += other.shared_stores;
        self.bank_conflicts += other.bank_conflicts;
        self.launches += other.launches;
        self.blocks += other.blocks;
        self.warps += other.warps;
    }

    /// Total bytes moved to/from DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes_loaded + self.dram_bytes_stored
    }

    /// Tensor-core utilization over a run of `time_ms`: the fraction of the
    /// device's total WMMA issue slots the kernel used (Table XIII's
    /// metric). Low single-digit percentages are expected — the paper
    /// measures 2–4 % because CUDA and Tensor phases do not overlap.
    pub fn tensor_core_utilization(&self, d: &DeviceSpec, time_ms: f64) -> f64 {
        if time_ms <= 0.0 {
            return 0.0;
        }
        let cycles = time_ms * 1e-3 * d.clock_hz();
        let slots = cycles * d.num_sms as f64 * d.tensor_cores_per_sm as f64;
        let used = self.wmma_issues as f64 * d.wmma_cycles;
        (used / slots * 100.0).min(100.0)
    }

    /// Compute-throughput percentage (Table XV): issued arithmetic cycles as
    /// a fraction of the device's arithmetic capacity over the run.
    pub fn compute_throughput(&self, d: &DeviceSpec, time_ms: f64) -> f64 {
        if time_ms <= 0.0 {
            return 0.0;
        }
        let cycles = time_ms * 1e-3 * d.clock_hz();
        let warp_slots = (d.cuda_cores_per_sm / d.warp_size) as f64 * d.num_sms as f64;
        let cuda_capacity = cycles * warp_slots;
        let tensor_capacity = cycles * d.num_sms as f64 * d.tensor_cores_per_sm as f64;
        let used = self.cuda_fma_issues as f64 * d.cuda_fma_cycles
            + self.wmma_issues as f64 * d.wmma_cycles;
        (used / (cuda_capacity + tensor_capacity) * 100.0).min(100.0)
    }

    /// Memory-throughput percentage (Table XV): achieved DRAM bandwidth as a
    /// fraction of peak.
    pub fn memory_throughput(&self, d: &DeviceSpec, time_ms: f64) -> f64 {
        if time_ms <= 0.0 {
            return 0.0;
        }
        let achieved = self.dram_bytes() as f64 / (time_ms * 1e-3);
        (achieved / (d.dram_bandwidth_gbs * 1e9) * 100.0).min(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DramTraffic;

    fn sample_block() -> BlockCost {
        BlockCost {
            cuda_fma_issues: 100,
            wmma_issues: 10,
            dram: DramTraffic {
                bytes_loaded: 1024,
                bytes_stored: 256,
                transactions: 10,
            },
            warps: 4,
            ..Default::default()
        }
    }

    #[test]
    fn absorb_accumulates() {
        let mut p = KernelProfile::default();
        p.absorb(&sample_block());
        p.absorb(&sample_block());
        assert_eq!(p.cuda_fma_issues, 200);
        assert_eq!(p.wmma_issues, 20);
        assert_eq!(p.dram_bytes(), 2 * 1280);
        assert_eq!(p.blocks, 2);
        assert_eq!(p.warps, 8);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = KernelProfile::default();
        a.absorb(&sample_block());
        a.launches = 1;
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.cuda_fma_issues, 2 * a.cuda_fma_issues);
        assert_eq!(b.launches, 2);
    }

    #[test]
    fn utilizations_bounded() {
        let d = DeviceSpec::rtx3090();
        let mut p = KernelProfile::default();
        p.absorb(&sample_block());
        for t in [1e-6, 1.0, 100.0] {
            assert!(p.tensor_core_utilization(&d, t) <= 100.0);
            assert!(p.compute_throughput(&d, t) <= 100.0);
            assert!(p.memory_throughput(&d, t) <= 100.0);
        }
        assert_eq!(p.memory_throughput(&d, 0.0), 0.0);
    }

    #[test]
    fn shorter_time_means_higher_utilization() {
        let d = DeviceSpec::rtx3090();
        let mut p = KernelProfile::default();
        p.absorb(&sample_block());
        assert!(p.memory_throughput(&d, 0.001) > p.memory_throughput(&d, 0.01));
    }
}
