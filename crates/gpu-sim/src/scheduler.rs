//! SM-level block scheduling.
//!
//! A kernel's thread blocks are distributed across SMs by the hardware work
//! scheduler. We model it as LPT (longest-processing-time-first) list
//! scheduling onto `num_sms` machines, each of which runs up to
//! `blocks_per_sm` blocks concurrently — concurrency within an SM is modeled
//! as processor sharing, so an SM's effective capacity is one block-cycle per
//! cycle regardless of how many resident blocks share it (their latencies
//! interleave; aggregate throughput is what the makespan needs).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total ordering for f64 keys in the scheduling heap (costs are finite).
#[derive(PartialEq, PartialOrd)]
struct Finite(f64);

impl Eq for Finite {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Finite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite cost")
    }
}

/// Makespan (in cycles) of scheduling `block_cycles` onto `num_sms` SMs.
///
/// `blocks_per_sm` caps how many blocks can be resident at once, which only
/// matters for latency (ignored here) — throughput-wise each SM retires work
/// serially, so the makespan is the classic multiprocessor scheduling bound
/// computed greedily.
pub fn makespan(block_cycles: &[f64], num_sms: u32, blocks_per_sm: u32) -> f64 {
    let _ = blocks_per_sm;
    if block_cycles.is_empty() {
        return 0.0;
    }
    let machines = num_sms.max(1) as usize;

    // LPT: sort descending, place each block on the least-loaded SM.
    let mut sorted: Vec<f64> = block_cycles.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite cost"));

    let mut heap: BinaryHeap<Reverse<Finite>> = (0..machines.min(sorted.len()))
        .map(|_| Reverse(Finite(0.0)))
        .collect();
    for c in sorted {
        let Reverse(Finite(load)) = heap.pop().expect("non-empty heap");
        heap.push(Reverse(Finite(load + c)));
    }
    heap.into_iter()
        .map(|Reverse(Finite(l))| l)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_runs_alone() {
        assert_eq!(makespan(&[100.0], 82, 16), 100.0);
    }

    #[test]
    fn fewer_blocks_than_sms_is_max() {
        let costs = [10.0, 50.0, 30.0];
        assert_eq!(makespan(&costs, 82, 16), 50.0);
    }

    #[test]
    fn many_equal_blocks_divide_evenly() {
        let costs = vec![10.0; 164]; // exactly two waves on 82 SMs
        assert!((makespan(&costs, 82, 16) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_at_least_average_load() {
        let costs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let total: f64 = costs.iter().sum();
        let ms = makespan(&costs, 82, 16);
        assert!(ms >= total / 82.0);
        // LPT is within 4/3 of optimal.
        assert!(ms <= total / 82.0 * 4.0 / 3.0 + 1000.0);
    }

    #[test]
    fn one_giant_block_dominates() {
        let mut costs = vec![1.0; 500];
        costs.push(1_000_000.0);
        assert!(makespan(&costs, 82, 16) >= 1_000_000.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(makespan(&[], 82, 16), 0.0);
    }
}
