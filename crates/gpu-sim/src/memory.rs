//! Warp-level memory access pattern models.
//!
//! These helpers turn the access patterns a kernel issues into transaction
//! and bank-conflict counts, following the §III-A description: global memory
//! is accessed in 128-byte transactions when the L1 is enabled, and shared
//! memory is organized as 32 four-byte-wide banks where concurrent access by
//! multiple lanes to the same bank serializes.

/// Transactions needed for one warp to read `bytes` of *contiguous* global
/// memory starting at an aligned address (coalesced access).
pub fn coalesced_transactions(bytes: u64, transaction_bytes: u32) -> u64 {
    debug_assert!(transaction_bytes > 0);
    bytes.div_ceil(transaction_bytes as u64)
}

/// Transactions needed for a warp to gather `count` items of `item_bytes`
/// each from *unrelated* addresses (e.g. rows of the dense matrix selected
/// by CSR column indices): every distinct address costs a full transaction,
/// no matter how few bytes are used from it.
pub fn gather_transactions(count: u64, item_bytes: u32, transaction_bytes: u32) -> u64 {
    debug_assert!(transaction_bytes > 0);
    // Each gathered item may span several transactions if it is larger than
    // one transaction; smaller items — even degenerate zero-byte probes,
    // whose address must still reach the LSU — cost one each.
    let per_item = item_bytes.div_ceil(transaction_bytes).max(1) as u64;
    count * per_item
}

/// Transactions for a warp reading `rows` rows of a row-major matrix with
/// `row_bytes` bytes per row, where consecutive lanes read consecutive
/// elements *within* a row (the common SpMM pattern of fetching X rows).
///
/// Each row is contiguous, so it coalesces internally, but distinct rows are
/// far apart and never share transactions.
pub fn row_gather_transactions(rows: u64, row_bytes: u64, transaction_bytes: u32) -> u64 {
    rows * coalesced_transactions(row_bytes, transaction_bytes)
}

/// Bank-conflict replays for a warp-wide shared-memory access in which lane
/// `i` touches 4-byte word index `offsets[i]`.
///
/// Returns the number of *extra* serialized passes beyond the first (0 means
/// conflict-free). Lanes touching the same word broadcast and do not
/// conflict.
pub fn shared_store_conflicts(offsets: &[u32], banks: u32) -> u64 {
    debug_assert!(banks > 0);
    let mut per_bank: Vec<u32> = vec![0; banks as usize];
    let mut words_seen: Vec<Vec<u32>> = vec![Vec::new(); banks as usize];
    for &off in offsets {
        let bank = (off % banks) as usize;
        if !words_seen[bank].contains(&off) {
            words_seen[bank].push(off);
            per_bank[bank] += 1;
        }
    }
    let max = per_bank.iter().copied().max().unwrap_or(0);
    max.saturating_sub(1) as u64
}

/// Conflict count for a strided warp access: lane `i` accesses word
/// `i * stride_words`. This is the pattern of naive column-major stores,
/// which the paper's Fig. 6 data-loading strategy exists to avoid.
pub fn strided_conflicts(lanes: u32, stride_words: u32, banks: u32) -> u64 {
    let offsets: Vec<u32> = (0..lanes).map(|i| i * stride_words).collect();
    shared_store_conflicts(&offsets, banks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_full_warp_float_load_is_one_transaction() {
        // 32 lanes × 4 bytes = 128 bytes = exactly one transaction, the
        // §III-A example.
        assert_eq!(coalesced_transactions(32 * 4, 128), 1);
    }

    #[test]
    fn coalesced_rounds_up() {
        assert_eq!(coalesced_transactions(129, 128), 2);
        assert_eq!(coalesced_transactions(0, 128), 0);
    }

    #[test]
    fn gather_pays_per_item() {
        assert_eq!(gather_transactions(32, 4, 128), 32);
        // A 256-byte item spans two transactions.
        assert_eq!(gather_transactions(2, 256, 128), 4);
    }

    #[test]
    fn gather_charges_zero_byte_items_one_transaction() {
        // A zero-byte gather still dereferences `count` addresses.
        assert_eq!(gather_transactions(5, 0, 128), 5);
        assert_eq!(gather_transactions(0, 0, 128), 0);
    }

    #[test]
    fn row_gather_combines_both() {
        // 8 rows × 64 bytes each: each row fits one transaction.
        assert_eq!(row_gather_transactions(8, 64, 128), 8);
        // 8 rows × 384 bytes: 3 transactions per row.
        assert_eq!(row_gather_transactions(8, 384, 128), 24);
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        assert_eq!(strided_conflicts(32, 1, 32), 0);
    }

    #[test]
    fn stride_32_is_fully_serialized() {
        // All 32 lanes hit bank 0 with distinct words: 31 replays — the
        // §III-A "1st and 33rd number share a bank" pathology.
        assert_eq!(strided_conflicts(32, 32, 32), 31);
    }

    #[test]
    fn stride_2_halves_throughput() {
        assert_eq!(strided_conflicts(32, 2, 32), 1);
    }

    #[test]
    fn broadcast_same_word_is_free() {
        let offsets = [7u32; 32];
        assert_eq!(shared_store_conflicts(&offsets, 32), 0);
    }

    #[test]
    fn distinct_words_same_bank_conflict() {
        // Lanes 0 and 1 touch words 0 and 32: same bank, different words.
        let offsets = [0u32, 32];
        assert_eq!(shared_store_conflicts(&offsets, 32), 1);
    }
}
