//! Trace-level micro-simulator — a validation harness for the analytic
//! block-cost model.
//!
//! The analytic model ([`BlockCost`]) converts aggregate work counts into
//! cycles with closed-form overlap assumptions. This module provides an
//! independent, finer-grained estimate: a per-warp operation trace executed
//! by an in-order interpreter with explicit issue ports (warp schedulers,
//! Tensor cores, the load/store unit) and a DRAM queue with latency and
//! bandwidth. It is far too slow to drive experiments, but tests use it to
//! check that the analytic model *ranks* workloads the same way a
//! mechanistic execution would (see `tests/model_validation.rs`).
//!
//! Traces are also the substrate for the [`sanitizer`]: shared-memory ops
//! can carry a word-granular address footprint, blocks declare their shared
//! allocation, and `__syncthreads()` is an explicit [`WarpOp::Barrier`] so
//! race / bounds / barrier-divergence analyses have something to chew on.
//!
//! [`BlockCost`]: crate::BlockCost
//! [`sanitizer`]: crate::sanitizer

use crate::cost::{BlockCost, DramTraffic, SharedTraffic};
use crate::device::DeviceSpec;

/// Direction of a shared-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load from shared memory.
    Read,
    /// Store to shared memory.
    Write,
}

/// Word-granular footprint of one warp-wide shared-memory access: the warp
/// touches `words` consecutive 4-byte words starting at word `offset` of the
/// block's shared allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedAccess {
    /// Load or store.
    pub kind: AccessKind,
    /// First 4-byte word touched, relative to the block's allocation.
    pub offset: u32,
    /// Number of consecutive words touched.
    pub words: u32,
}

impl SharedAccess {
    /// One-past-the-end word of the footprint (saturating).
    pub fn end(&self) -> u32 {
        self.offset.saturating_add(self.words)
    }

    /// True when two footprints touch at least one common word.
    pub fn overlaps(&self, other: &SharedAccess) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }
}

/// One instruction a warp issues, in program order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarpOp {
    /// Arithmetic issue on the CUDA pipe (one warp-wide FMA step).
    Compute,
    /// WMMA issue on a Tensor core.
    Wmma,
    /// Block-wide barrier (`__syncthreads()`): the warp stalls until every
    /// warp of the block has arrived at its matching barrier.
    Barrier,
    /// Warp-wide shared-memory access with `1 + conflicts` serialized
    /// passes. `access` carries the sanitizer-grade address footprint;
    /// `None` means the trace was built without address information (the
    /// interpreter does not need it, the sanitizer flags it).
    Shared {
        /// Extra serialized replays.
        conflicts: u32,
        /// Word-granular footprint, when known.
        access: Option<SharedAccess>,
    },
    /// Global-memory transaction of `bytes` (the warp stalls until data
    /// returns — the conservative in-order assumption).
    Global {
        /// Transaction payload.
        bytes: u32,
    },
    /// Asynchronous global-memory fetch of `bytes` into the *other* buffer
    /// of a double-buffered stage (`cp.async`-style): the transaction
    /// enters the DRAM queue, but the issuing warp does NOT stall — the
    /// data is for the next pipeline stage, fenced by the next barrier.
    /// This is how the pipelined tensor path overlaps fragment loads with
    /// the previous fragment's MMA cycles.
    Prefetch {
        /// Transaction payload.
        bytes: u32,
    },
}

impl WarpOp {
    /// Shared access with replay count only (no address footprint).
    pub fn shared(conflicts: u32) -> WarpOp {
        WarpOp::Shared {
            conflicts,
            access: None,
        }
    }

    /// Conflict-free shared load of `words` words at word `offset`.
    pub fn shared_read(offset: u32, words: u32) -> WarpOp {
        WarpOp::shared_access(AccessKind::Read, offset, words, 0)
    }

    /// Conflict-free shared store of `words` words at word `offset`.
    pub fn shared_write(offset: u32, words: u32) -> WarpOp {
        WarpOp::shared_access(AccessKind::Write, offset, words, 0)
    }

    /// Fully-specified shared access.
    pub fn shared_access(kind: AccessKind, offset: u32, words: u32, conflicts: u32) -> WarpOp {
        WarpOp::Shared {
            conflicts,
            access: Some(SharedAccess {
                kind,
                offset,
                words,
            }),
        }
    }
}

/// The program of one warp.
#[derive(Debug, Clone, Default)]
pub struct WarpTrace {
    /// Operations in issue order.
    pub ops: Vec<WarpOp>,
}

impl WarpTrace {
    /// Number of [`WarpOp::Barrier`]s in the program.
    pub fn barrier_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, WarpOp::Barrier))
            .count()
    }
}

/// A thread block: one trace per warp plus the block's declared
/// shared-memory allocation (in 4-byte words), against which the sanitizer
/// bounds-checks every addressed access.
#[derive(Debug, Clone, Default)]
pub struct BlockTrace {
    /// Per-warp programs.
    pub warps: Vec<WarpTrace>,
    /// Declared shared-memory allocation of the block, in 4-byte words.
    /// Zero means "no shared memory declared".
    pub shared_alloc_words: u32,
}

impl BlockTrace {
    /// Total operations across warps.
    pub fn len(&self) -> usize {
        self.warps.iter().map(|w| w.ops.len()).sum()
    }

    /// True when no warp has work.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append `op` to every warp — used for block-wide barriers.
    pub fn push_all(&mut self, op: WarpOp) {
        for w in &mut self.warps {
            w.ops.push(op);
        }
    }

    /// Append `other`'s program after this block's, as a sequential phase:
    /// the warp count grows to the larger of the two, a separating barrier
    /// is inserted, `other`'s shared offsets are rebased past this block's
    /// allocation, and warps absent from either side receive matching
    /// barrier counts so the combined block stays barrier-balanced. Both
    /// traces are expected to be barrier-uniform across their own warps
    /// (every builder in this workspace is).
    pub fn append_sequential(&mut self, other: &BlockTrace) {
        let base = self.shared_alloc_words;
        let self_bars = self
            .warps
            .iter()
            .map(|w| w.barrier_count())
            .max()
            .unwrap_or(0);
        let n = self.warps.len().max(other.warps.len());
        while self.warps.len() < n {
            self.warps.push(WarpTrace {
                ops: vec![WarpOp::Barrier; self_bars],
            });
        }
        self.push_all(WarpOp::Barrier);
        let other_bars = other
            .warps
            .iter()
            .map(|w| w.barrier_count())
            .max()
            .unwrap_or(0);
        for i in 0..n {
            let target = &mut self.warps[i].ops;
            match other.warps.get(i) {
                Some(src) => {
                    for op in &src.ops {
                        target.push(match *op {
                            WarpOp::Shared {
                                conflicts,
                                access: Some(a),
                            } => WarpOp::Shared {
                                conflicts,
                                access: Some(SharedAccess {
                                    offset: a.offset + base,
                                    ..a
                                }),
                            },
                            op => op,
                        });
                    }
                }
                None => target.extend(std::iter::repeat_n(WarpOp::Barrier, other_bars)),
            }
        }
        self.shared_alloc_words = base + other.shared_alloc_words;
    }
}

/// Where a kernel's trace emitter writes its operations.
///
/// Emitters are generic over the sink so the *same* code path can produce
/// either a full per-op event trace ([`BlockTrace`] — what the sanitizer's
/// race / bounds / barrier analyses need) or a handful of accumulated
/// counters ([`CounterTrace`] — what the cost model and the conformance
/// lint need), without the hot path ever pushing per-access events into
/// vectors.
///
/// Contract emitters must follow:
///
/// * Declare warps with [`ensure_warps`](TraceSink::ensure_warps) before
///   recording on them; `record(w, ..)` requires `w < warp_count()`.
/// * Reserve shared memory through
///   [`alloc_shared`](TraceSink::alloc_shared) and address accesses
///   relative to the returned region base — that is what lets sequentially
///   composed phases (the per-tile hybrid) land in disjoint regions.
/// * Record block-wide barriers with
///   [`record_all`](TraceSink::record_all)`(WarpOp::Barrier)`, never via
///   [`record`](TraceSink::record): counter mode counts barrier *epochs*,
///   which only a block-wide arrival defines.
pub trait TraceSink {
    /// Declare that the block runs with at least `n` warps. Growing an
    /// event-mode block mid-stream pads the new warps with the barrier
    /// count already retired, keeping the block barrier-balanced.
    fn ensure_warps(&mut self, n: usize);

    /// Number of warps currently declared.
    fn warp_count(&self) -> usize;

    /// Reserve `words` more words of the block's shared allocation and
    /// return the base offset of the new region.
    fn alloc_shared(&mut self, words: u32) -> u32;

    /// Record one operation on warp `warp` (`warp < warp_count()`).
    fn record(&mut self, warp: usize, op: WarpOp);

    /// Record `op` on every declared warp — block-wide barriers.
    fn record_all(&mut self, op: WarpOp);
}

impl TraceSink for BlockTrace {
    fn ensure_warps(&mut self, n: usize) {
        if self.warps.len() >= n {
            return;
        }
        let bars = self
            .warps
            .iter()
            .map(|w| w.barrier_count())
            .max()
            .unwrap_or(0);
        self.warps.resize_with(n, || WarpTrace {
            ops: vec![WarpOp::Barrier; bars],
        });
    }

    fn warp_count(&self) -> usize {
        self.warps.len()
    }

    fn alloc_shared(&mut self, words: u32) -> u32 {
        let base = self.shared_alloc_words;
        self.shared_alloc_words += words;
        base
    }

    fn record(&mut self, warp: usize, op: WarpOp) {
        self.warps[warp].ops.push(op);
    }

    fn record_all(&mut self, op: WarpOp) {
        self.push_all(op);
    }
}

/// Aggregated, counter-mode view of a block's trace: the billable work of
/// the block without the per-op event vectors. This is what production
/// paths accumulate; the event-level [`BlockTrace`] stays behind sanitizer
/// entry points, which need addresses and ordering.
///
/// The cost model consumes either representation through
/// [`BlockCost::from`]; because both conversions go through these counters,
/// a counter-mode emission and a full event trace of the same kernel charge
/// *identical* cycles (pinned per kernel family by `trace_modes.rs` in
/// `hc-core`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterTrace {
    /// Warps the block runs with.
    pub warps: u32,
    /// Warp-wide CUDA-pipe FMA issues ([`WarpOp::Compute`]).
    pub compute_issues: u64,
    /// Tensor-core issues ([`WarpOp::Wmma`]).
    pub wmma_issues: u64,
    /// Block-wide barrier epochs (`__syncthreads()` the whole block
    /// retires together).
    pub barrier_epochs: u64,
    /// Warp-wide shared loads (direction-unknown accesses count here; the
    /// cost model only uses the load+store sum).
    pub shared_loads: u64,
    /// Warp-wide shared stores.
    pub shared_stores: u64,
    /// Serialized bank-conflict replays summed over shared accesses.
    pub bank_conflicts: u64,
    /// Global-memory transactions issued.
    pub global_transactions: u64,
    /// Bytes moved by those transactions ([`WarpOp::Global`] carries no
    /// direction, so loads and stores pool here).
    pub global_bytes: u64,
    /// Asynchronous prefetch transactions ([`WarpOp::Prefetch`]) — billed
    /// as bandwidth-only traffic that overlaps compute.
    pub prefetch_transactions: u64,
    /// Bytes moved by prefetch transactions.
    pub prefetch_bytes: u64,
    /// Declared shared allocation, in 4-byte words.
    pub shared_alloc_words: u32,
}

impl CounterTrace {
    /// Accumulate one non-barrier operation.
    fn count(&mut self, op: WarpOp) {
        match op {
            WarpOp::Compute => self.compute_issues += 1,
            WarpOp::Wmma => self.wmma_issues += 1,
            WarpOp::Shared { conflicts, access } => {
                match access.map(|a| a.kind) {
                    Some(AccessKind::Write) => self.shared_stores += 1,
                    _ => self.shared_loads += 1,
                }
                self.bank_conflicts += conflicts as u64;
            }
            WarpOp::Global { bytes } => {
                self.global_transactions += 1;
                self.global_bytes += bytes as u64;
            }
            WarpOp::Prefetch { bytes } => {
                self.prefetch_transactions += 1;
                self.prefetch_bytes += bytes as u64;
            }
            // Per-warp barrier arrivals carry no billable work; epochs are
            // counted in `record_all` / `from_trace`.
            WarpOp::Barrier => {}
        }
    }

    /// Total operations the counters stand for — equals
    /// [`BlockTrace::len`] of the equivalent event trace for
    /// barrier-uniform blocks (each epoch is one barrier op per warp).
    pub fn ops(&self) -> u64 {
        self.compute_issues
            + self.wmma_issues
            + self.shared_loads
            + self.shared_stores
            + self.global_transactions
            + self.prefetch_transactions
            + self.barrier_epochs * self.warps as u64
    }

    /// Recount a full event trace into counters. Barrier epochs are the
    /// maximum per-warp barrier count — every emitter in this workspace
    /// produces barrier-uniform blocks, so this is also each warp's count.
    pub fn from_trace(t: &BlockTrace) -> CounterTrace {
        let mut c = CounterTrace {
            warps: t.warps.len() as u32,
            shared_alloc_words: t.shared_alloc_words,
            ..CounterTrace::default()
        };
        c.barrier_epochs = t.warps.iter().map(|w| w.barrier_count()).max().unwrap_or(0) as u64;
        for w in &t.warps {
            for &op in &w.ops {
                c.count(op);
            }
        }
        c
    }
}

impl TraceSink for CounterTrace {
    fn ensure_warps(&mut self, n: usize) {
        self.warps = self.warps.max(n as u32);
    }

    fn warp_count(&self) -> usize {
        self.warps as usize
    }

    fn alloc_shared(&mut self, words: u32) -> u32 {
        let base = self.shared_alloc_words;
        self.shared_alloc_words += words;
        base
    }

    fn record(&mut self, warp: usize, op: WarpOp) {
        debug_assert!(
            (warp as u32) < self.warps.max(1),
            "record on undeclared warp {warp}"
        );
        debug_assert!(
            !matches!(op, WarpOp::Barrier),
            "block-wide barriers must go through record_all"
        );
        self.count(op);
    }

    fn record_all(&mut self, op: WarpOp) {
        if matches!(op, WarpOp::Barrier) {
            self.barrier_epochs += 1;
        } else {
            for _ in 0..self.warps {
                self.count(op);
            }
        }
    }
}

impl From<&CounterTrace> for BlockCost {
    /// The billable view of a counter trace. [`WarpOp::Global`] is
    /// directionless, so all global bytes land in `bytes_loaded`; the cost
    /// model streams the load+store sum, so cycles are unaffected.
    fn from(c: &CounterTrace) -> BlockCost {
        BlockCost {
            cuda_fma_issues: c.compute_issues,
            wmma_issues: c.wmma_issues,
            dram: DramTraffic {
                bytes_loaded: c.global_bytes,
                bytes_stored: 0,
                transactions: c.global_transactions,
            },
            prefetch: DramTraffic {
                bytes_loaded: c.prefetch_bytes,
                bytes_stored: 0,
                transactions: c.prefetch_transactions,
            },
            shared: SharedTraffic {
                loads: c.shared_loads,
                stores: c.shared_stores,
                bank_conflicts: c.bank_conflicts,
            },
            warps: c.warps,
        }
    }
}

impl From<&BlockTrace> for BlockCost {
    /// The billable view of an event trace — defined as the counter view of
    /// its recount, so both representations charge identical cycles.
    fn from(t: &BlockTrace) -> BlockCost {
        BlockCost::from(&CounterTrace::from_trace(t))
    }
}

/// Execute a block trace on one SM; returns the cycle count.
///
/// Model: each cycle, up to `cuda_cores/warp_size` warp schedulers issue one
/// ready warp each (compute/shared/global issue); Tensor issues are limited
/// by `tensor_cores_per_sm`; the LSU serves one shared access pass per
/// cycle; global loads enter a DRAM queue that returns data after
/// `dram_latency_cycles` plus queuing delay at the SM's bandwidth share.
/// A [`WarpOp::Barrier`] retires only once every other warp has arrived at
/// a matching barrier (or run out of ops — a divergence the sanitizer
/// reports, but which must not hang the interpreter).
pub fn simulate_block(trace: &BlockTrace, d: &DeviceSpec) -> f64 {
    let n = trace.warps.len();
    if n == 0 || trace.is_empty() {
        return 0.0;
    }
    let sched_slots = (d.cuda_cores_per_sm / d.warp_size).max(1) as usize;
    let tensor_slots = d.tensor_cores_per_sm.max(1) as usize;
    let bpc = d.bytes_per_cycle_per_sm();

    // Per-warp state.
    let mut pc = vec![0usize; n];
    let mut ready_at = vec![0f64; n];
    // Barriers each warp has retired so far.
    let mut bars = vec![0usize; n];
    // Port availability.
    let mut lsu_free_at = 0f64;
    let mut dram_free_at = 0f64;

    let mut cycle = 0f64;
    let mut remaining: usize = trace.len();
    // Round-robin pointer for fairness.
    let mut rr = 0usize;

    // A warp counts as "arrived" at barrier epoch `epoch` when it has either
    // already retired more barriers, is parked on its matching barrier, or
    // has exhausted its program (divergent trace; see doc comment).
    let arrived = |w: usize, epoch: usize, pc: &[usize], bars: &[usize]| -> bool {
        bars[w] > epoch
            || pc[w] >= trace.warps[w].ops.len()
            || (bars[w] == epoch && matches!(trace.warps[w].ops[pc[w]], WarpOp::Barrier))
    };

    while remaining > 0 {
        let mut issued_sched = 0usize;
        let mut issued_tensor = 0usize;
        let mut progressed = false;

        for k in 0..n {
            if issued_sched >= sched_slots {
                break;
            }
            let w = (rr + k) % n;
            if pc[w] >= trace.warps[w].ops.len() || ready_at[w] > cycle {
                continue;
            }
            let op = trace.warps[w].ops[pc[w]];
            match op {
                WarpOp::Compute => {
                    ready_at[w] = cycle + d.cuda_fma_cycles;
                }
                WarpOp::Wmma => {
                    if issued_tensor >= tensor_slots {
                        continue;
                    }
                    issued_tensor += 1;
                    ready_at[w] = cycle + d.wmma_cycles;
                }
                WarpOp::Barrier => {
                    let epoch = bars[w];
                    if (0..n).any(|o| o != w && !arrived(o, epoch, &pc, &bars)) {
                        continue;
                    }
                    bars[w] += 1;
                    ready_at[w] = cycle + 1.0;
                }
                WarpOp::Shared { conflicts, .. } => {
                    if lsu_free_at > cycle {
                        continue;
                    }
                    let passes = (1 + conflicts) as f64 * d.shared_access_cycles;
                    lsu_free_at = cycle + passes;
                    ready_at[w] = cycle + passes + 1.0;
                }
                WarpOp::Global { bytes } => {
                    // Enter the DRAM queue: service time = bytes at the SM's
                    // bandwidth share; data returns after queue + latency.
                    let start = dram_free_at.max(cycle);
                    let service = bytes as f64 / bpc;
                    dram_free_at = start + service;
                    ready_at[w] = start + service + d.dram_latency_cycles;
                }
                WarpOp::Prefetch { bytes } => {
                    // Same DRAM queue occupancy, but the issuing warp keeps
                    // running: the data lands in the other pipeline buffer,
                    // fenced by the next barrier (the closing drain below
                    // still charges any bandwidth left in flight).
                    let start = dram_free_at.max(cycle);
                    dram_free_at = start + bytes as f64 / bpc;
                    ready_at[w] = cycle + 1.0;
                }
            }
            pc[w] += 1;
            remaining -= 1;
            issued_sched += 1;
            progressed = true;
        }
        rr = (rr + 1) % n;

        if progressed {
            cycle += 1.0;
        } else {
            // Nothing issuable: jump to the next wake-up. Barrier-parked
            // warps have ready_at in the past, so this degrades to +1-cycle
            // steps until the lagging warps arrive — correct and finite,
            // since the least-synchronized warp can always make progress.
            let mut next = f64::INFINITY;
            for w in 0..n {
                if pc[w] < trace.warps[w].ops.len() {
                    next = next.min(ready_at[w].max(cycle + 1.0));
                }
            }
            next = next.min(lsu_free_at.max(cycle + 1.0));
            cycle = if next.is_finite() { next } else { cycle + 1.0 };
        }
    }
    // Drain: finish the last in-flight operations.
    let tail = ready_at.iter().cloned().fold(0.0, f64::max);
    cycle.max(tail).max(dram_free_at)
}

/// Build the trace of the optimized CUDA SpMM kernel (Algorithm 3) for one
/// row window: the block cooperatively stages the window's CSR entries in
/// shared memory (two words — column index and value — per edge), barriers,
/// then each warp walks its row issuing shared entry reads, global X
/// gathers and FMA steps per 32-wide slice.
pub fn cuda_window_trace(row_nnz: &[usize], dim: usize, d: &DeviceSpec) -> BlockTrace {
    let slices = dim.div_ceil(32);
    let nwarps = row_nnz.len().max(1);
    let total_nnz: usize = row_nnz.iter().sum();
    // Two words (colIdx, value) per staged edge, stored 32 words per
    // cooperative write.
    let stage_stores = (total_nnz * 2).div_ceil(32);
    let alloc_words = (stage_stores * 32) as u32;
    let mut t = BlockTrace {
        warps: vec![WarpTrace::default(); nwarps],
        shared_alloc_words: alloc_words,
    };
    for i in 0..stage_stores {
        let w = i % nwarps;
        t.warps[w].ops.push(WarpOp::Global {
            bytes: d.transaction_bytes,
        }); // edge list load
        t.warps[w]
            .ops
            .push(WarpOp::shared_write((i * 32) as u32, 32));
    }
    t.push_all(WarpOp::Barrier);
    // Per-row compute phase: warp r owns row r.
    let mut row_base = 0usize;
    for (r, &nnz) in row_nnz.iter().enumerate() {
        let ops = &mut t.warps[r].ops;
        for _slice in 0..slices {
            for k in 0..nnz {
                // colIdx+val broadcast read of staged entry k of this row.
                ops.push(WarpOp::shared_read((2 * (row_base + k)) as u32, 2));
                ops.push(WarpOp::Global {
                    bytes: d.transaction_bytes.min(dim as u32 * 4),
                }); // X row gather
                ops.push(WarpOp::Compute); // FMA step
            }
            ops.push(WarpOp::Global {
                bytes: d.transaction_bytes.min(dim as u32 * 4),
            }); // Z store
        }
        row_base += nnz;
    }
    t
}

/// Build the trace of the optimized Tensor SpMM kernel (Algorithm 4) for
/// one condensed window, with the cuTeSpMM-style pipelined X staging: the
/// A-fragment conversion lands in shared memory, fragment 0 is staged
/// synchronously, then each iteration prefetches the *next* fragment into
/// the other half of a double buffer ([`WarpOp::Prefetch`] — the issuing
/// warps keep running) while the owning warp loads the current fragment
/// and issues its WMMA. One barrier per fragment fences the buffer swap;
/// buffer parity keeps the concurrent accesses disjoint.
pub fn tensor_window_trace(nnz: usize, nnz_cols: usize, dim: usize, d: &DeviceSpec) -> BlockTrace {
    let tiles = nnz_cols.div_ceil(8);
    let chunks = dim.div_ceil(16);
    let frags = tiles * chunks;
    let nwarps = 8usize;
    // Shared layout: [A-fragment region | X staging buffer ×2]. Each X
    // buffer holds one 8×16-value fragment (8 rows of 16 words); the two
    // halves alternate across fragments, fenced by the per-fragment
    // barrier.
    let a_stores = nnz.div_ceil(32);
    let a_words = (a_stores * 32) as u32;
    let x_words = 8u32 * 16;
    let mut t = BlockTrace {
        warps: vec![WarpTrace::default(); nwarps],
        shared_alloc_words: a_words + 2 * x_words,
    };
    let xb = |f: usize| a_words + (f % 2) as u32 * x_words;
    // A-fragment conversion, spread over warps.
    for i in 0..a_stores {
        let w = i % nwarps;
        t.warps[w].ops.push(WarpOp::Global {
            bytes: d.transaction_bytes,
        });
        t.warps[w]
            .ops
            .push(WarpOp::shared_write((i * 32) as u32, 32));
    }
    t.push_all(WarpOp::Barrier);
    if frags == 0 {
        return t;
    }
    // Fragment 0 is staged synchronously: 8 gathers of a 64-byte strip
    // stored conflict-free (Fig. 6).
    let mut turn = 0usize;
    for row in 0..8u32 {
        let w = turn % nwarps;
        t.warps[w].ops.push(WarpOp::Global { bytes: 64 });
        t.warps[w]
            .ops
            .push(WarpOp::shared_write(xb(0) + row * 16, 16));
        turn += 1;
    }
    t.push_all(WarpOp::Barrier);
    // Steady state: prefetch fragment f+1 into the other buffer (async —
    // no shared store ops, the copy lands directly) while the owning warp
    // (chunk c → warp c, Fig. 5b) consumes fragment f.
    for f in 0..frags {
        if f + 1 < frags {
            for _row in 0..8 {
                let w = turn % nwarps;
                t.warps[w].ops.push(WarpOp::Prefetch { bytes: 64 });
                turn += 1;
            }
        }
        let w = (f % chunks.max(1)) % nwarps;
        t.warps[w].ops.push(WarpOp::shared_read(xb(f), x_words)); // frag loads
        t.warps[w].ops.push(WarpOp::Wmma);
        t.push_all(WarpOp::Barrier); // buffer-swap fence
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_costs_nothing() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(simulate_block(&BlockTrace::default(), &d), 0.0);
    }

    #[test]
    fn compute_only_trace_is_issue_bound() {
        let d = DeviceSpec::rtx3090();
        // One warp, 100 dependent compute steps: ~100 × issue latency.
        let t = BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::Compute; 100],
            }],
            shared_alloc_words: 0,
        };
        let c = simulate_block(&t, &d);
        assert!(c >= 100.0 * d.cuda_fma_cycles * 0.9, "{c}");
        // Four independent warps overlap on the schedulers: much less than
        // 4× the single-warp time.
        let t4 = BlockTrace {
            warps: vec![
                WarpTrace {
                    ops: vec![WarpOp::Compute; 100]
                };
                4
            ],
            shared_alloc_words: 0,
        };
        let c4 = simulate_block(&t4, &d);
        assert!(c4 < 2.0 * c, "parallel warps should overlap: {c4} vs {c}");
    }

    #[test]
    fn global_loads_serialize_on_bandwidth() {
        let d = DeviceSpec::rtx3090();
        let mk = |n: usize| BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::Global { bytes: 128 }; n],
            }],
            shared_alloc_words: 0,
        };
        let c1 = simulate_block(&mk(10), &d);
        let c2 = simulate_block(&mk(100), &d);
        assert!(c2 > 5.0 * c1);
    }

    #[test]
    fn bank_conflicts_slow_shared_phases() {
        let d = DeviceSpec::rtx3090();
        let clean = BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::shared(0); 200],
            }],
            shared_alloc_words: 0,
        };
        let conflicted = BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::shared(3); 200],
            }],
            shared_alloc_words: 0,
        };
        assert!(simulate_block(&conflicted, &d) > 2.0 * simulate_block(&clean, &d));
    }

    #[test]
    fn barrier_joins_unbalanced_warps() {
        let d = DeviceSpec::rtx3090();
        // Warp 0 computes a long phase; warp 1 barriers immediately. The
        // barrier must hold warp 1 until warp 0 arrives, so total time is
        // ~the long phase plus the short one, not their overlap.
        let mut long_then_short = vec![WarpOp::Compute; 50];
        long_then_short.push(WarpOp::Barrier);
        long_then_short.extend([WarpOp::Compute; 5]);
        let mut short_then_long = vec![WarpOp::Barrier];
        short_then_long.extend([WarpOp::Compute; 50]);
        let t = BlockTrace {
            warps: vec![
                WarpTrace {
                    ops: long_then_short,
                },
                WarpTrace {
                    ops: short_then_long,
                },
            ],
            shared_alloc_words: 0,
        };
        let with_barrier = simulate_block(&t, &d);
        let mut no_bar = t.clone();
        for w in &mut no_bar.warps {
            w.ops.retain(|op| !matches!(op, WarpOp::Barrier));
        }
        let without_barrier = simulate_block(&no_bar, &d);
        assert!(
            with_barrier > 1.5 * without_barrier,
            "barrier must serialize the phases: {with_barrier} vs {without_barrier}"
        );
    }

    #[test]
    fn divergent_barrier_does_not_hang() {
        let d = DeviceSpec::rtx3090();
        // Warp 1 never reaches a barrier: the interpreter must treat its
        // exhausted program as arrival and still terminate.
        let t = BlockTrace {
            warps: vec![
                WarpTrace {
                    ops: vec![WarpOp::Barrier, WarpOp::Compute],
                },
                WarpTrace {
                    ops: vec![WarpOp::Compute; 3],
                },
            ],
            shared_alloc_words: 0,
        };
        let c = simulate_block(&t, &d);
        assert!(c.is_finite() && c > 0.0);
    }

    #[test]
    fn more_nnz_means_more_cuda_cycles() {
        let d = DeviceSpec::rtx3090();
        let sparse = cuda_window_trace(&[2; 16], 32, &d);
        let dense = cuda_window_trace(&[20; 16], 32, &d);
        assert!(simulate_block(&dense, &d) > 3.0 * simulate_block(&sparse, &d));
    }

    #[test]
    fn tensor_trace_scales_with_tiles_not_nnz() {
        let d = DeviceSpec::rtx3090();
        let sparse = tensor_window_trace(32, 32, 32, &d);
        let dense = tensor_window_trace(480, 32, 32, &d);
        let ts = simulate_block(&sparse, &d);
        let td = simulate_block(&dense, &d);
        // Same tiles: only the A conversion grows — modest change.
        assert!(td < 2.0 * ts, "tensor should be ~flat in nnz: {ts} vs {td}");
        let wide = tensor_window_trace(130, 128, 32, &d);
        assert!(simulate_block(&wide, &d) > 2.0 * ts, "but grows with cols");
    }
}
