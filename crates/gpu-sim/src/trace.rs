//! Trace-level micro-simulator — a validation harness for the analytic
//! block-cost model.
//!
//! The analytic model ([`BlockCost`]) converts aggregate work counts into
//! cycles with closed-form overlap assumptions. This module provides an
//! independent, finer-grained estimate: a per-warp operation trace executed
//! by an in-order interpreter with explicit issue ports (warp schedulers,
//! Tensor cores, the load/store unit) and a DRAM queue with latency and
//! bandwidth. It is far too slow to drive experiments, but tests use it to
//! check that the analytic model *ranks* workloads the same way a
//! mechanistic execution would (see `tests/model_validation.rs`).
//!
//! [`BlockCost`]: crate::BlockCost

use crate::device::DeviceSpec;

/// One instruction a warp issues, in program order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WarpOp {
    /// Arithmetic issue on the CUDA pipe (one warp-wide FMA step).
    Compute,
    /// WMMA issue on a Tensor core.
    Wmma,
    /// Warp-wide shared-memory access with `1 + conflicts` serialized
    /// passes.
    Shared {
        /// Extra serialized replays.
        conflicts: u32,
    },
    /// Global-memory transaction of `bytes` (the warp stalls until data
    /// returns — the conservative in-order assumption).
    Global {
        /// Transaction payload.
        bytes: u32,
    },
}

/// The program of one warp.
#[derive(Debug, Clone, Default)]
pub struct WarpTrace {
    /// Operations in issue order.
    pub ops: Vec<WarpOp>,
}

/// A thread block: one trace per warp.
#[derive(Debug, Clone, Default)]
pub struct BlockTrace {
    /// Per-warp programs.
    pub warps: Vec<WarpTrace>,
}

impl BlockTrace {
    /// Total operations across warps.
    pub fn len(&self) -> usize {
        self.warps.iter().map(|w| w.ops.len()).sum()
    }

    /// True when no warp has work.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Execute a block trace on one SM; returns the cycle count.
///
/// Model: each cycle, up to `cuda_cores/warp_size` warp schedulers issue one
/// ready warp each (compute/shared/global issue); Tensor issues are limited
/// by `tensor_cores_per_sm`; the LSU serves one shared access pass per
/// cycle; global loads enter a DRAM queue that returns data after
/// `dram_latency_cycles` plus queuing delay at the SM's bandwidth share.
pub fn simulate_block(trace: &BlockTrace, d: &DeviceSpec) -> f64 {
    let n = trace.warps.len();
    if n == 0 || trace.is_empty() {
        return 0.0;
    }
    let sched_slots = (d.cuda_cores_per_sm / d.warp_size).max(1) as usize;
    let tensor_slots = d.tensor_cores_per_sm.max(1) as usize;
    let bpc = d.bytes_per_cycle_per_sm();

    // Per-warp state.
    let mut pc = vec![0usize; n];
    let mut ready_at = vec![0f64; n];
    // Port availability.
    let mut lsu_free_at = 0f64;
    let mut dram_free_at = 0f64;

    let mut cycle = 0f64;
    let mut remaining: usize = trace.len();
    // Round-robin pointer for fairness.
    let mut rr = 0usize;

    while remaining > 0 {
        let mut issued_sched = 0usize;
        let mut issued_tensor = 0usize;
        let mut progressed = false;

        for k in 0..n {
            if issued_sched >= sched_slots {
                break;
            }
            let w = (rr + k) % n;
            if pc[w] >= trace.warps[w].ops.len() || ready_at[w] > cycle {
                continue;
            }
            let op = trace.warps[w].ops[pc[w]];
            match op {
                WarpOp::Compute => {
                    ready_at[w] = cycle + d.cuda_fma_cycles;
                }
                WarpOp::Wmma => {
                    if issued_tensor >= tensor_slots {
                        continue;
                    }
                    issued_tensor += 1;
                    ready_at[w] = cycle + d.wmma_cycles;
                }
                WarpOp::Shared { conflicts } => {
                    if lsu_free_at > cycle {
                        continue;
                    }
                    let passes = (1 + conflicts) as f64 * d.shared_access_cycles;
                    lsu_free_at = cycle + passes;
                    ready_at[w] = cycle + passes + 1.0;
                }
                WarpOp::Global { bytes } => {
                    // Enter the DRAM queue: service time = bytes at the SM's
                    // bandwidth share; data returns after queue + latency.
                    let start = dram_free_at.max(cycle);
                    let service = bytes as f64 / bpc;
                    dram_free_at = start + service;
                    ready_at[w] = start + service + d.dram_latency_cycles;
                }
            }
            pc[w] += 1;
            remaining -= 1;
            issued_sched += 1;
            progressed = true;
        }
        rr = (rr + 1) % n;

        if progressed {
            cycle += 1.0;
        } else {
            // Nothing issuable: jump to the next wake-up.
            let mut next = f64::INFINITY;
            for w in 0..n {
                if pc[w] < trace.warps[w].ops.len() {
                    next = next.min(ready_at[w].max(cycle + 1.0));
                }
            }
            next = next.min(lsu_free_at.max(cycle + 1.0));
            cycle = if next.is_finite() { next } else { cycle + 1.0 };
        }
    }
    // Drain: finish the last in-flight operations.
    let tail = ready_at.iter().cloned().fold(0.0, f64::max);
    cycle.max(tail).max(dram_free_at)
}

/// Build the trace of the optimized CUDA SpMM kernel (Algorithm 3) for one
/// row window: per row, a warp walks its CSR entries issuing shared index
/// reads, global X gathers and FMA steps per 32-wide slice.
pub fn cuda_window_trace(row_nnz: &[usize], dim: usize, d: &DeviceSpec) -> BlockTrace {
    let slices = dim.div_ceil(32);
    let warps = row_nnz
        .iter()
        .map(|&nnz| {
            let mut ops = Vec::with_capacity(nnz * slices * 3 + 2);
            for _slice in 0..slices {
                for _k in 0..nnz {
                    ops.push(WarpOp::Shared { conflicts: 0 }); // colIdx+val broadcast
                    ops.push(WarpOp::Global {
                        bytes: d.transaction_bytes.min(dim as u32 * 4),
                    }); // X row gather
                    ops.push(WarpOp::Compute); // FMA step
                }
                ops.push(WarpOp::Global {
                    bytes: d.transaction_bytes.min(dim as u32 * 4),
                }); // Z store
            }
            WarpTrace { ops }
        })
        .collect();
    BlockTrace { warps }
}

/// Build the trace of the optimized Tensor SpMM kernel (Algorithm 4) for
/// one condensed window: cooperative fragment loads then WMMA issues.
pub fn tensor_window_trace(nnz: usize, nnz_cols: usize, dim: usize, d: &DeviceSpec) -> BlockTrace {
    let tiles = nnz_cols.div_ceil(8);
    let chunks = dim.div_ceil(16);
    let nwarps = 8usize;
    let mut warps: Vec<WarpTrace> = (0..nwarps).map(|_| WarpTrace::default()).collect();
    // A-fragment conversion, spread over warps.
    for i in 0..nnz.div_ceil(32) {
        warps[i % nwarps].ops.push(WarpOp::Global {
            bytes: d.transaction_bytes,
        });
        warps[i % nwarps].ops.push(WarpOp::Shared { conflicts: 0 });
    }
    // X fragments: per (tile, chunk), 8 gathers of a 64-byte strip +
    // conflict-free staging, spread across all warps (Fig. 6).
    let mut turn = 0usize;
    for _t in 0..tiles {
        for _c in 0..chunks {
            for _row in 0..8 {
                warps[turn % nwarps].ops.push(WarpOp::Global { bytes: 64 });
                warps[turn % nwarps]
                    .ops
                    .push(WarpOp::Shared { conflicts: 0 });
                turn += 1;
            }
        }
    }
    // WMMA phase: chunk c belongs to warp c (Fig. 5b).
    for t in 0..tiles {
        for c in 0..chunks {
            let w = c % nwarps;
            warps[w].ops.push(WarpOp::Shared { conflicts: 0 }); // frag loads
            warps[w].ops.push(WarpOp::Wmma);
            let _ = t;
        }
    }
    BlockTrace { warps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_costs_nothing() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(simulate_block(&BlockTrace::default(), &d), 0.0);
    }

    #[test]
    fn compute_only_trace_is_issue_bound() {
        let d = DeviceSpec::rtx3090();
        // One warp, 100 dependent compute steps: ~100 × issue latency.
        let t = BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::Compute; 100],
            }],
        };
        let c = simulate_block(&t, &d);
        assert!(c >= 100.0 * d.cuda_fma_cycles * 0.9, "{c}");
        // Four independent warps overlap on the schedulers: much less than
        // 4× the single-warp time.
        let t4 = BlockTrace {
            warps: vec![
                WarpTrace {
                    ops: vec![WarpOp::Compute; 100]
                };
                4
            ],
        };
        let c4 = simulate_block(&t4, &d);
        assert!(c4 < 2.0 * c, "parallel warps should overlap: {c4} vs {c}");
    }

    #[test]
    fn global_loads_serialize_on_bandwidth() {
        let d = DeviceSpec::rtx3090();
        let mk = |n: usize| BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::Global { bytes: 128 }; n],
            }],
        };
        let c1 = simulate_block(&mk(10), &d);
        let c2 = simulate_block(&mk(100), &d);
        assert!(c2 > 5.0 * c1);
    }

    #[test]
    fn bank_conflicts_slow_shared_phases() {
        let d = DeviceSpec::rtx3090();
        let clean = BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::Shared { conflicts: 0 }; 200],
            }],
        };
        let conflicted = BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::Shared { conflicts: 3 }; 200],
            }],
        };
        assert!(simulate_block(&conflicted, &d) > 2.0 * simulate_block(&clean, &d));
    }

    #[test]
    fn more_nnz_means_more_cuda_cycles() {
        let d = DeviceSpec::rtx3090();
        let sparse = cuda_window_trace(&[2; 16], 32, &d);
        let dense = cuda_window_trace(&[20; 16], 32, &d);
        assert!(simulate_block(&dense, &d) > 3.0 * simulate_block(&sparse, &d));
    }

    #[test]
    fn tensor_trace_scales_with_tiles_not_nnz() {
        let d = DeviceSpec::rtx3090();
        let sparse = tensor_window_trace(32, 32, 32, &d);
        let dense = tensor_window_trace(480, 32, 32, &d);
        let ts = simulate_block(&sparse, &d);
        let td = simulate_block(&dense, &d);
        // Same tiles: only the A conversion grows — modest change.
        assert!(td < 2.0 * ts, "tensor should be ~flat in nnz: {ts} vs {td}");
        let wide = tensor_window_trace(130, 128, 32, &d);
        assert!(simulate_block(&wide, &d) > 2.0 * ts, "but grows with cols");
    }
}
