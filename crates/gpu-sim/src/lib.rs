//! # gpu-sim — a deterministic analytical GPU performance model
//!
//! This crate is the hardware substrate for the HC-SpMM reproduction. The
//! paper ([Li et al., ICDE 2025]) evaluates CUDA kernels on Nvidia RTX
//! 3090/4090/A100 GPUs; no GPU is available here, so kernels in this
//! workspace are ordinary Rust functions that (a) compute their numerical
//! result for real on the CPU and (b) report, at warp granularity, the work
//! they performed — FMA issues, WMMA issues, global-memory transactions,
//! shared-memory accesses and bank conflicts — to this crate, which converts
//! the counts into simulated execution time using an SM-level scheduling
//! model and a DRAM roofline.
//!
//! The model is *analytical*, not cycle-accurate: it charges cycles by the
//! same mechanisms the paper's measurements expose (CUDA-core time tracks
//! nnz; Tensor-core time tracks the number of 16×8 tiles and is dominated by
//! loading the dense operand), so relative comparisons — who wins, where
//! crossovers fall — are meaningful even though absolute times are not those
//! of physical silicon.
//!
//! Entry points:
//! * [`DeviceSpec`] — per-GPU architectural constants, with presets for the
//!   three boards the paper uses.
//! * [`BlockCost`] — what one thread block did (built by kernels).
//! * [`DeviceSpec::execute`] — schedule blocks onto SMs and produce a
//!   [`KernelRun`] with simulated time and a [`KernelProfile`] of counters.
//! * [`precision`] — TF32/FP16/BF16 emulation used by the Tensor-core path.
//! * [`sanitizer`] — compute-sanitizer-style race / bounds / barrier checks
//!   and cost-model conformance lints over [`trace`]-level kernel programs.

#![warn(missing_docs)]

pub mod cost;
pub mod device;
pub mod faults;
pub mod memory;
pub mod precision;
pub mod profile;
pub mod sanitizer;
pub mod scheduler;
pub mod trace;

pub use cost::{BlockCost, DramTraffic, KernelRun, SharedTraffic};
pub use device::{DeviceKind, DeviceSpec};
pub use faults::{
    crash_requested, CrashConfig, CrashScope, CrashSite, Fault, FaultConfig, FaultKind, FaultScope,
};
pub use memory::{coalesced_transactions, gather_transactions, shared_store_conflicts};
pub use precision::Precision;
pub use profile::KernelProfile;
pub use sanitizer::{
    cost_conformance_counters, sanitize_block, CheckKind, Finding, SanitizerConfig,
    SanitizerReport, TraceCounters,
};
pub use trace::{AccessKind, BlockTrace, CounterTrace, SharedAccess, TraceSink, WarpOp, WarpTrace};
