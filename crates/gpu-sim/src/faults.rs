//! Deterministic, seedable device-fault injection.
//!
//! Real SpMM stacks harden the kernel-launch boundary: cuSPARSE surfaces a
//! typed status per call, and serving systems survive transient ECC events,
//! watchdog kills and allocation failures without taking the process down.
//! This module reproduces that environment for the simulated device. A
//! [`FaultScope`] installed on the current thread makes every kernel launch
//! ([`DeviceSpec::execute`] and friends) consult a seeded schedule: each
//! launch gets an independent, deterministic draw, and any fault that fires
//! is *latched* on the scope for the caller (the resilient execution layer
//! in `hc-core`) to collect after the kernel returns — exactly how a host
//! checks `cudaGetLastError` after an async launch. Kernel code itself never
//! changes; the injection point is the device API, so every kernel family is
//! exposed uniformly.
//!
//! Determinism: the decision for launch *i* is a pure function of
//! `(config.seed, i)`. Launches are issued from the thread driving the
//! kernel (worker pools never launch), so with the same seed and the same
//! call sequence the same faults fire at any `hc-parallel` thread count.
//!
//! [`DeviceSpec::execute`]: crate::DeviceSpec::execute

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The fault classes the injector can raise, mirroring the failure modes
/// CUDA surfaces to a host program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A transient memory bit-flip corrupted the kernel's output buffer
    /// (an un-corrected ECC event). Retryable.
    BitFlip,
    /// The kernel's shared-memory request could not be satisfied
    /// (`cudaErrorLaunchOutOfResources`). Deterministic for a given plan:
    /// retrying the same launch fails the same way, so the caller should
    /// fall back instead.
    SharedAllocFail,
    /// The watchdog killed the kernel mid-flight
    /// (`cudaErrorLaunchTimeout`). Retryable.
    Timeout,
    /// The launch itself failed (`cudaErrorLaunchFailure`). Retryable.
    LaunchFail,
}

impl FaultKind {
    /// All kinds, in schedule-evaluation order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::BitFlip,
        FaultKind::SharedAllocFail,
        FaultKind::Timeout,
        FaultKind::LaunchFail,
    ];

    /// Stable lowercase name for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::SharedAllocFail => "shared-alloc-fail",
            FaultKind::Timeout => "timeout",
            FaultKind::LaunchFail => "launch-fail",
        }
    }

    /// Whether retrying the same launch can succeed. Bit-flips, timeouts
    /// and launch failures are environmental; a shared-memory allocation
    /// failure is a property of the launch configuration and recurs.
    pub fn is_transient(self) -> bool {
        !matches!(self, FaultKind::SharedAllocFail)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected fault, latched on the active [`FaultScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What failed.
    pub kind: FaultKind,
    /// Scope-relative index of the launch it hit (0-based).
    pub launch: u64,
    /// For [`FaultKind::BitFlip`]: a deterministic 64-bit locator the
    /// consumer maps onto its output buffer (e.g. `word % len`).
    pub word: u64,
    /// For [`FaultKind::BitFlip`]: which bit of the 32-bit word flipped.
    pub bit: u32,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::BitFlip => write!(
                f,
                "bit-flip at launch {} (word {}, bit {})",
                self.launch, self.word, self.bit
            ),
            k => write!(f, "{} at launch {}", k, self.launch),
        }
    }
}

/// Per-launch fault probabilities plus the schedule seed. All rates are in
/// `[0, 1]` and are evaluated as one draw per launch (at most one fault
/// fires per launch, in [`FaultKind::ALL`] order of cumulative mass).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Schedule seed: the decision for launch `i` is a pure function of
    /// `(seed, i)`.
    pub seed: u64,
    /// Probability of a [`FaultKind::BitFlip`] per launch.
    pub bit_flip: f64,
    /// Probability of a [`FaultKind::SharedAllocFail`] per launch.
    pub shared_alloc_fail: f64,
    /// Probability of a [`FaultKind::Timeout`] per launch.
    pub timeout: f64,
    /// Probability of a [`FaultKind::LaunchFail`] per launch.
    pub launch_fail: f64,
}

impl FaultConfig {
    /// No faults ever fire (the production default).
    pub fn off() -> FaultConfig {
        FaultConfig {
            seed: 0,
            bit_flip: 0.0,
            shared_alloc_fail: 0.0,
            timeout: 0.0,
            launch_fail: 0.0,
        }
    }

    /// Total per-launch fault probability `rate`, split evenly across the
    /// four kinds.
    pub fn uniform(seed: u64, rate: f64) -> FaultConfig {
        let each = (rate / FaultKind::ALL.len() as f64).clamp(0.0, 0.25);
        FaultConfig {
            seed,
            bit_flip: each,
            shared_alloc_fail: each,
            timeout: each,
            launch_fail: each,
        }
    }

    /// True when any fault kind has non-zero probability.
    pub fn enabled(&self) -> bool {
        self.bit_flip > 0.0
            || self.shared_alloc_fail > 0.0
            || self.timeout > 0.0
            || self.launch_fail > 0.0
    }

    /// The same schedule re-seeded for an independent stream (e.g. one
    /// stream per serving request, so request outcomes don't depend on how
    /// many launches earlier requests made).
    pub fn stream(&self, index: u64) -> FaultConfig {
        FaultConfig {
            seed: splitmix(self.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            ..*self
        }
    }

    /// The deterministic decision for launch `launch`: `None` (clean) or
    /// the fault that fires. Pure — exposed so tests and schedule audits
    /// can enumerate a schedule without executing kernels.
    pub fn decide(&self, launch: u64) -> Option<Fault> {
        if !self.enabled() {
            return None;
        }
        let mut s = splitmix(self.seed ^ splitmix(launch.wrapping_add(1)));
        let draw = next_f64(&mut s);
        let mut cum = 0.0;
        for kind in FaultKind::ALL {
            cum += match kind {
                FaultKind::BitFlip => self.bit_flip,
                FaultKind::SharedAllocFail => self.shared_alloc_fail,
                FaultKind::Timeout => self.timeout,
                FaultKind::LaunchFail => self.launch_fail,
            };
            if draw < cum {
                let word = next_u64(&mut s);
                let bit = (next_u64(&mut s) % 32) as u32;
                return Some(Fault {
                    kind,
                    launch,
                    word,
                    bit,
                });
            }
        }
        None
    }
}

/// SplitMix64 finalizer — the workspace's standard deterministic mixer.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn next_u64(state: &mut u64) -> u64 {
    *state = splitmix(*state);
    *state
}

fn next_f64(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64
}

struct ScopeState {
    config: FaultConfig,
    launches: u64,
    latched: Vec<Fault>,
}

thread_local! {
    /// Innermost-active-last stack of installed scopes. Launches report to
    /// the top of the stack only.
    static SCOPES: RefCell<Vec<Rc<RefCell<ScopeState>>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard that exposes the current thread's kernel launches to a fault
/// schedule. While alive, every [`DeviceSpec::execute`] call draws from the
/// schedule; faults that fire are latched here and collected with
/// [`FaultScope::take_faults`]. Scopes nest (innermost wins), and dropping
/// the guard uninstalls it.
///
/// ```
/// use gpu_sim::{BlockCost, DeviceSpec, FaultConfig, FaultScope};
/// let dev = DeviceSpec::rtx3090();
/// let scope = FaultScope::install(FaultConfig::uniform(7, 1.0));
/// dev.execute(&[BlockCost::with_cuda_compute(100.0)]);
/// assert_eq!(scope.take_faults().len(), 1); // rate 1.0: every launch faults
/// ```
///
/// [`DeviceSpec::execute`]: crate::DeviceSpec::execute
pub struct FaultScope {
    state: Rc<RefCell<ScopeState>>,
}

impl FaultScope {
    /// Install `config` as the active schedule on this thread.
    pub fn install(config: FaultConfig) -> FaultScope {
        let state = Rc::new(RefCell::new(ScopeState {
            config,
            launches: 0,
            latched: Vec::new(),
        }));
        SCOPES.with(|s| s.borrow_mut().push(Rc::clone(&state)));
        FaultScope { state }
    }

    /// Drain the faults latched since the last call (or install).
    pub fn take_faults(&self) -> Vec<Fault> {
        std::mem::take(&mut self.state.borrow_mut().latched)
    }

    /// Kernel launches observed so far.
    pub fn launches(&self) -> u64 {
        self.state.borrow().launches
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|e| Rc::ptr_eq(e, &self.state)) {
                stack.remove(pos);
            }
        });
    }
}

/// Device-side hook: called once per kernel launch by `DeviceSpec`.
/// No-op (and allocation-free) when no scope is installed.
pub(crate) fn observe_launch() {
    SCOPES.with(|s| {
        let stack = s.borrow();
        let Some(top) = stack.last() else { return };
        let mut state = top.borrow_mut();
        let launch = state.launches;
        state.launches += 1;
        if let Some(fault) = state.config.decide(launch) {
            state.latched.push(fault);
        }
    });
}

/// Where in the serving front a crash point sits. Each call to
/// [`crash_requested`] names its site so a crash schedule can be audited
/// ("crash 7 fired between the WAL append and the swap") and so the
/// restart-equivalence suite can assert coverage of every site class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashSite {
    /// Between two requests inside an epoch, before the barrier.
    MidEpoch,
    /// Inside a WAL record append — the record's bytes may be torn.
    MidWalAppend,
    /// After the WAL record is durable but before `swap_patched` commits.
    BetweenAppendAndSwap,
    /// Inside a snapshot write — the temp file may be torn, the previous
    /// snapshot must survive.
    MidSnapshot,
}

impl CrashSite {
    /// All sites, for crash-matrix enumeration in tests.
    pub const ALL: [CrashSite; 4] = [
        CrashSite::MidEpoch,
        CrashSite::MidWalAppend,
        CrashSite::BetweenAppendAndSwap,
        CrashSite::MidSnapshot,
    ];

    /// Stable lowercase name for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            CrashSite::MidEpoch => "mid-epoch",
            CrashSite::MidWalAppend => "mid-wal-append",
            CrashSite::BetweenAppendAndSwap => "between-append-and-swap",
            CrashSite::MidSnapshot => "mid-snapshot",
        }
    }
}

impl fmt::Display for CrashSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A crash schedule: abort the process-under-test at the `crash_at`-th
/// crash point it passes (0-based). Deterministic by construction — the
/// schedule is a single index into the linear sequence of points the run
/// visits, so the same trace crashes at the same place every time,
/// regardless of worker threads (points are driver-thread-only, like
/// launches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashConfig {
    /// Crash at the point with this index; `None` = never crash.
    pub crash_at: Option<u64>,
}

impl CrashConfig {
    /// Never crash (the production default).
    pub fn off() -> CrashConfig {
        CrashConfig { crash_at: None }
    }

    /// Crash at the `k`-th crash point the run passes (0-based).
    pub fn at(k: u64) -> CrashConfig {
        CrashConfig { crash_at: Some(k) }
    }

    /// A seeded draw of a crash index in `[0, horizon)` — for randomized
    /// chaos schedules on top of the exhaustive per-index matrix.
    pub fn seeded(seed: u64, horizon: u64) -> CrashConfig {
        if horizon == 0 {
            return CrashConfig::off();
        }
        let mut s = splitmix(seed);
        CrashConfig {
            crash_at: Some(next_u64(&mut s) % horizon),
        }
    }
}

struct CrashState {
    config: CrashConfig,
    points: u64,
    fired: Option<(u64, CrashSite)>,
}

thread_local! {
    /// Innermost-active-last stack of crash scopes, mirroring `SCOPES`.
    static CRASH_SCOPES: RefCell<Vec<Rc<RefCell<CrashState>>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard that arms a [`CrashConfig`] on the current thread. While
/// alive, every [`crash_requested`] call increments the point counter and
/// reports whether the schedule says to crash there. The host (the durable
/// serving front) unwinds with a typed error — crashes are cooperative,
/// never a panic, because library crates deny `clippy::panic`.
pub struct CrashScope {
    state: Rc<RefCell<CrashState>>,
}

impl CrashScope {
    /// Arm `config` on this thread.
    pub fn install(config: CrashConfig) -> CrashScope {
        let state = Rc::new(RefCell::new(CrashState {
            config,
            points: 0,
            fired: None,
        }));
        CRASH_SCOPES.with(|s| s.borrow_mut().push(Rc::clone(&state)));
        CrashScope { state }
    }

    /// Crash points passed so far (fired or not). After an uncrashed run
    /// this is the horizon for the exhaustive crash matrix.
    pub fn points(&self) -> u64 {
        self.state.borrow().points
    }

    /// The point index and site where the schedule fired, if it did.
    pub fn fired(&self) -> Option<(u64, CrashSite)> {
        self.state.borrow().fired
    }
}

impl Drop for CrashScope {
    fn drop(&mut self) {
        CRASH_SCOPES.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|e| Rc::ptr_eq(e, &self.state)) {
                stack.remove(pos);
            }
        });
    }
}

/// Declare a crash point at `site`. Returns `true` when the innermost
/// armed [`CrashScope`]'s schedule says to crash here — the caller must
/// then unwind to its recovery boundary without committing further state.
/// Always `false` (and allocation-free) when no scope is installed.
pub fn crash_requested(site: CrashSite) -> bool {
    CRASH_SCOPES.with(|s| {
        let stack = s.borrow();
        let Some(top) = stack.last() else {
            return false;
        };
        let mut state = top.borrow_mut();
        let point = state.points;
        state.points += 1;
        if state.fired.is_none() && state.config.crash_at == Some(point) {
            state.fired = Some((point, site));
            true
        } else {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::BlockCost;
    use crate::DeviceSpec;

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let cfg = FaultConfig::uniform(42, 0.3);
        for launch in 0..200 {
            assert_eq!(cfg.decide(launch), cfg.decide(launch));
        }
        let other = FaultConfig::uniform(43, 0.3);
        let a: Vec<_> = (0..200).map(|l| cfg.decide(l)).collect();
        let b: Vec<_> = (0..200).map(|l| other.decide(l)).collect();
        assert_ne!(a, b, "different seeds must give different schedules");
    }

    #[test]
    fn rate_zero_never_fires_and_rate_one_always_fires() {
        let off = FaultConfig::off();
        assert!(!off.enabled());
        assert!((0..500).all(|l| off.decide(l).is_none()));
        let always = FaultConfig::uniform(9, 1.0);
        assert!((0..500).all(|l| always.decide(l).is_some()));
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let cfg = FaultConfig::uniform(1, 0.2);
        let fired = (0..10_000).filter(|&l| cfg.decide(l).is_some()).count();
        let rate = fired as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.03, "observed rate {rate}");
        // All four kinds appear.
        for kind in FaultKind::ALL {
            assert!(
                (0..10_000).any(|l| cfg.decide(l).is_some_and(|f| f.kind == kind)),
                "{kind} never fired"
            );
        }
    }

    #[test]
    fn scope_latches_faults_from_real_launches() {
        let dev = DeviceSpec::rtx3090();
        let blocks = vec![BlockCost::with_cuda_compute(100.0)];
        let scope = FaultScope::install(FaultConfig::uniform(5, 1.0));
        dev.execute(&blocks);
        dev.execute(&blocks);
        assert_eq!(scope.launches(), 2);
        let faults = scope.take_faults();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].launch, 0);
        assert_eq!(faults[1].launch, 1);
        // Drained: a second take returns nothing.
        assert!(scope.take_faults().is_empty());
    }

    #[test]
    fn no_scope_means_no_faults_and_sequence_counts_inner_launches() {
        let dev = DeviceSpec::rtx3090();
        let blocks = vec![BlockCost::with_cuda_compute(100.0)];
        dev.execute(&blocks); // must not panic or latch anywhere
        let scope = FaultScope::install(FaultConfig::off());
        dev.execute_sequence(&[blocks.clone(), blocks.clone()]);
        assert_eq!(scope.launches(), 2, "sequence = one launch per kernel");
        assert!(scope.take_faults().is_empty());
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let dev = DeviceSpec::rtx3090();
        let blocks = vec![BlockCost::with_cuda_compute(100.0)];
        let outer = FaultScope::install(FaultConfig::uniform(1, 1.0));
        {
            let inner = FaultScope::install(FaultConfig::off());
            dev.execute(&blocks);
            assert_eq!(inner.launches(), 1);
            assert!(inner.take_faults().is_empty());
        }
        assert_eq!(
            outer.launches(),
            0,
            "outer scope must not see inner launches"
        );
        dev.execute(&blocks);
        assert_eq!(outer.take_faults().len(), 1);
    }

    #[test]
    fn streams_are_independent_but_deterministic() {
        let base = FaultConfig::uniform(77, 0.5);
        let s0 = base.stream(0);
        let s1 = base.stream(1);
        assert_eq!(s0, base.stream(0));
        assert_ne!(s0.seed, s1.seed);
        let a: Vec<_> = (0..100).map(|l| s0.decide(l)).collect();
        let b: Vec<_> = (0..100).map(|l| s1.decide(l)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn crash_points_count_and_fire_once() {
        // No scope: points are inert.
        assert!(!crash_requested(CrashSite::MidEpoch));
        let scope = CrashScope::install(CrashConfig::at(2));
        assert!(!crash_requested(CrashSite::MidEpoch));
        assert!(!crash_requested(CrashSite::MidWalAppend));
        assert!(crash_requested(CrashSite::BetweenAppendAndSwap));
        // A schedule fires exactly once, even if the host keeps going.
        assert!(!crash_requested(CrashSite::MidSnapshot));
        assert_eq!(scope.points(), 4);
        assert_eq!(scope.fired(), Some((2, CrashSite::BetweenAppendAndSwap)));
    }

    #[test]
    fn crash_off_never_fires_and_scope_nests() {
        let outer = CrashScope::install(CrashConfig::at(0));
        {
            let inner = CrashScope::install(CrashConfig::off());
            for _ in 0..10 {
                assert!(!crash_requested(CrashSite::MidEpoch));
            }
            assert_eq!(inner.points(), 10);
            assert_eq!(inner.fired(), None);
        }
        assert_eq!(outer.points(), 0, "outer must not see inner points");
        assert!(crash_requested(CrashSite::MidEpoch));
        assert_eq!(outer.fired(), Some((0, CrashSite::MidEpoch)));
    }

    #[test]
    fn seeded_crash_schedules_are_deterministic_and_in_range() {
        for horizon in [1u64, 7, 100] {
            for seed in 0..50 {
                let a = CrashConfig::seeded(seed, horizon);
                assert_eq!(a, CrashConfig::seeded(seed, horizon));
                let k = a.crash_at.expect("non-zero horizon draws a point");
                assert!(k < horizon);
            }
        }
        assert_eq!(CrashConfig::seeded(1, 0), CrashConfig::off());
    }

    #[test]
    fn same_schedule_at_any_thread_count() {
        // Launches are driver-thread-only, so the worker count must not
        // influence the schedule. Simulated here by running the identical
        // launch sequence under identical scopes.
        let dev = DeviceSpec::rtx3090();
        let blocks = vec![BlockCost::with_cuda_compute(500.0); 8];
        let run = || {
            let scope = FaultScope::install(FaultConfig::uniform(3, 0.6));
            for _ in 0..32 {
                dev.execute(&blocks);
            }
            scope.take_faults()
        };
        assert_eq!(run(), run());
    }
}
