//! Floating-point precision emulation for the Tensor-core path.
//!
//! The paper runs Tensor cores with TF32 inputs in the main body (§III-B,
//! following TC-GNN) and evaluates FP16 and BF16 in Appendix B. We emulate
//! each format in software: values are quantized to the format's mantissa
//! before a WMMA multiply, with products accumulated in FP32, exactly like
//! the hardware does. This makes precision choice observable in the numerics
//! (Appendix B's Table VII experiment) rather than a cosmetic flag.

use serde::{Deserialize, Serialize};

/// Input precision of a Tensor-core WMMA operation.
///
/// ```
/// use gpu_sim::Precision;
/// // TF32 keeps 10 mantissa bits: 1 + 2^-11 rounds away.
/// assert_eq!(Precision::Tf32.quantize(1.0 + f32::EPSILON), 1.0);
/// assert_eq!(Precision::Fp32.quantize(1.0 + f32::EPSILON), 1.0 + f32::EPSILON);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// Full FP32 on CUDA cores (no quantization).
    Fp32,
    /// TF32: FP32 range, 10-bit mantissa. WMMA shape m16·n16·k8 — the paper
    /// states the TF32 input requirement as 16×8×16 (A tiles are 16×8).
    Tf32,
    /// IEEE half: 5-bit exponent, 10-bit mantissa. WMMA m16·n16·k16.
    Fp16,
    /// bfloat16: FP32 range, 7-bit mantissa. WMMA m16·n16·k16.
    Bf16,
}

impl Precision {
    /// K-dimension of one WMMA tile at this precision: how many columns of a
    /// sparse-matrix tile a single WMMA consumes. TF32 tiles are 16×8
    /// (Appendix B: half requires 16×16×16, which wastes more zeros).
    pub fn tile_k(self) -> usize {
        match self {
            Precision::Fp32 | Precision::Tf32 => 8,
            Precision::Fp16 | Precision::Bf16 => 16,
        }
    }

    /// Bytes one element occupies in device memory (TF32 is stored as
    /// 32-bit; half/bfloat16 halve all operand traffic).
    pub fn storage_bytes(self) -> u64 {
        match self {
            Precision::Fp32 | Precision::Tf32 => 4,
            Precision::Fp16 | Precision::Bf16 => 2,
        }
    }

    /// Display name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Tf32 => "tf32",
            Precision::Fp16 => "half",
            Precision::Bf16 => "bfloat",
        }
    }

    /// Quantize `x` to this precision (result widened back to f32), using
    /// round-to-nearest-even, like the hardware conversion units.
    pub fn quantize(self, x: f32) -> f32 {
        match self {
            Precision::Fp32 => x,
            Precision::Tf32 => truncate_mantissa_rne(x, 10),
            Precision::Bf16 => truncate_mantissa_rne(x, 7),
            Precision::Fp16 => f16_round_trip(x),
        }
    }
}

/// Round `x` to `bits` mantissa bits (keeping the f32 exponent range) with
/// round-to-nearest-even on the dropped bits.
fn truncate_mantissa_rne(x: f32, bits: u32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let drop = 23 - bits;
    let u = x.to_bits();
    let half = 1u32 << (drop - 1);
    let mask = (1u32 << drop) - 1;
    let rem = u & mask;
    let mut v = u >> drop;
    // Round to nearest, ties to even.
    if rem > half || (rem == half && v & 1 == 1) {
        v += 1;
    }
    f32::from_bits(v << drop)
}

/// Convert f32 → IEEE binary16 → f32 (round-to-nearest-even, with proper
/// overflow-to-infinity and subnormal flushing behaviour).
fn f16_round_trip(x: f32) -> f32 {
    f16_to_f32(f32_to_f16(x))
}

/// f32 → IEEE 754 binary16 bits.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let nan_bit = if man != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan_bit | ((man >> 13) as u16 & 0x03ff);
    }

    // Re-bias exponent: f32 bias 127 → f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal range: round 23-bit mantissa to 10 bits, RNE.
        let mut m = man >> 13;
        let rem = man & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && m & 1 == 1) {
            m += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if m == 0x400 {
            m = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7c00;
            }
        }
        return sign | ((e as u16) << 10) | m as u16;
    }
    if unbiased >= -24 {
        // Subnormal f16.
        let shift = (-14 - unbiased) as u32; // 1..=10
        let full = man | 0x0080_0000; // implicit leading 1
        let m = full >> (13 + shift);
        let rem_bits = 13 + shift;
        let rem = full & ((1 << rem_bits) - 1);
        let half = 1u32 << (rem_bits - 1);
        let mut m = m;
        if rem > half || (rem == half && m & 1 == 1) {
            m += 1;
        }
        return sign | m as u16;
    }
    sign // underflow → ±0
}

/// IEEE 754 binary16 bits → f32.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    let bits = if exp == 0x1f {
        // Inf / NaN.
        sign | 0x7f80_0000 | (man << 13)
    } else if exp == 0 {
        if man == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut e = -1i32;
            let mut m = man;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3ff;
            // After k = -1 - e shifts, the value is (1 + m/1024) · 2^(e - 13);
            // the f32 biased exponent is therefore 127 + e - 13 = 114 + e.
            sign | (((114 + e) as u32) << 23) | (m << 13)
        }
    } else {
        sign | ((exp + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_is_identity() {
        for x in [0.0, 1.5, -3.25, 1e-30, 1e30] {
            assert_eq!(Precision::Fp32.quantize(x), x);
        }
    }

    #[test]
    fn tf32_preserves_10_bit_values() {
        // 1 + 1/1024 is exactly representable with a 10-bit mantissa.
        let x = 1.0 + 1.0 / 1024.0;
        assert_eq!(Precision::Tf32.quantize(x), x);
        // 1 + 1/2048 is not; it rounds to even (1.0).
        let y = 1.0 + 1.0 / 2048.0;
        assert_eq!(Precision::Tf32.quantize(y), 1.0);
    }

    #[test]
    fn bf16_preserves_7_bit_values() {
        let x = 1.0 + 1.0 / 128.0;
        assert_eq!(Precision::Bf16.quantize(x), x);
        let y = 1.0 + 1.0 / 256.0 + 1.0 / 512.0;
        assert!((Precision::Bf16.quantize(y) - y).abs() > 0.0);
    }

    #[test]
    fn quantization_is_idempotent() {
        for p in [Precision::Tf32, Precision::Fp16, Precision::Bf16] {
            for i in 0..1000 {
                let x = (i as f32 - 500.0) * 0.017 + 0.3;
                let q = p.quantize(x);
                assert_eq!(p.quantize(q), q, "{p:?} not idempotent at {x}");
            }
        }
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3c00);
        assert_eq!(f32_to_f16(-2.0), 0xc000);
        assert_eq!(f32_to_f16(65504.0), 0x7bff); // f16 max
        assert_eq!(f32_to_f16(65536.0), 0x7c00); // overflow → inf
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert!(f16_to_f32(0x7e00).is_nan());
    }

    #[test]
    fn f16_subnormals_round_trip() {
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16_to_f32(f32_to_f16(tiny)), tiny);
        // Largest subnormal.
        let sub = 2.0f32.powi(-14) - 2.0f32.powi(-24);
        assert_eq!(f16_to_f32(f32_to_f16(sub)), sub);
    }

    #[test]
    fn quantize_error_ordering() {
        // TF32 (10-bit mantissa) is at least as accurate as BF16 (7-bit) for
        // in-range values.
        let mut tf_err = 0.0f64;
        let mut bf_err = 0.0f64;
        for i in 1..10_000 {
            let x = i as f32 * 0.137;
            tf_err += ((Precision::Tf32.quantize(x) - x) as f64).abs();
            bf_err += ((Precision::Bf16.quantize(x) - x) as f64).abs();
        }
        assert!(tf_err < bf_err);
    }

    #[test]
    fn tile_shapes_match_paper() {
        assert_eq!(Precision::Tf32.tile_k(), 8);
        assert_eq!(Precision::Fp16.tile_k(), 16);
        assert_eq!(Precision::Bf16.tile_k(), 16);
    }
}
