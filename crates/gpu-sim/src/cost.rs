//! Per-block cost descriptors and kernel run results.
//!
//! Kernels describe, per thread block, how much work of each kind they
//! performed; [`DeviceSpec::execute`](crate::DeviceSpec::execute) converts a
//! batch of blocks into simulated time.

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::profile::KernelProfile;

/// Global-memory traffic of one thread block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Bytes read from global memory (after coalescing: whole transactions).
    pub bytes_loaded: u64,
    /// Bytes written to global memory.
    pub bytes_stored: u64,
    /// Number of memory transactions issued (cost driver for latency).
    pub transactions: u64,
}

impl DramTraffic {
    /// Merge another block's traffic into this one.
    pub fn add(&mut self, other: &DramTraffic) {
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.transactions += other.transactions;
    }
}

/// Shared-memory traffic of one thread block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SharedTraffic {
    /// Warp-wide shared loads issued.
    pub loads: u64,
    /// Warp-wide shared stores issued.
    pub stores: u64,
    /// Serialized replays caused by bank conflicts.
    pub bank_conflicts: u64,
}

impl SharedTraffic {
    /// Merge another block's traffic into this one.
    pub fn add(&mut self, other: &SharedTraffic) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.bank_conflicts += other.bank_conflicts;
    }
}

/// Everything one thread block did, as counted by the kernel that ran it.
///
/// `cuda_fma_issues` and `wmma_issues` are *warp-wide* issue counts: one
/// `cuda_fma_issues` unit is 32 lanes doing one FMA each; one `wmma_issues`
/// unit is one WMMA fragment multiply-accumulate by one warp.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockCost {
    /// Warp-wide FP32 FMA issues on the CUDA cores.
    pub cuda_fma_issues: u64,
    /// Warp-level WMMA issues on the Tensor cores.
    pub wmma_issues: u64,
    /// Global-memory traffic (demand: the issuing warp stalls on it).
    pub dram: DramTraffic,
    /// Asynchronous prefetch traffic (`cp.async`-style double-buffered
    /// stage loads): occupies DRAM bandwidth but overlaps compute — no
    /// dependent-latency chain, the data is fenced by the next barrier.
    pub prefetch: DramTraffic,
    /// Shared-memory traffic.
    pub shared: SharedTraffic,
    /// Number of warps the block runs with (controls intra-block overlap of
    /// memory latency; more warps hide more latency).
    pub warps: u32,
}

impl BlockCost {
    /// The cache-warm view of this block: DRAM byte traffic vanishes (the
    /// working set is L2-resident) while transaction latency and all other
    /// costs remain. This models the paper's microbenchmark protocol —
    /// characterization and selector-training matrices are executed 100
    /// times and averaged, so after the first run every dense-matrix access
    /// hits in cache (a 16×130 window's X is ~16 KB, far below L2).
    pub fn warm(mut self) -> BlockCost {
        self.dram.bytes_loaded = 0;
        self.dram.bytes_stored = 0;
        self.prefetch.bytes_loaded = 0;
        self.prefetch.bytes_stored = 0;
        self
    }

    /// A single-warp block whose compute cost is approximately `cycles` on
    /// the device's CUDA pipe (testing helper): issues are derived from the
    /// per-issue cost so the helper stays honest if that constant changes.
    pub fn with_cuda_compute(cycles: f64) -> Self {
        // Mirrors DeviceSpec::cuda_fma_cycles (all presets share it).
        const ISSUE_CYCLES: f64 = 10.0;
        BlockCost {
            cuda_fma_issues: (cycles / ISSUE_CYCLES).ceil() as u64,
            warps: 1,
            ..Default::default()
        }
    }

    /// Compute cycles this block spends on its arithmetic pipes.
    pub fn compute_cycles(&self, d: &DeviceSpec) -> f64 {
        // Warp-wide FMA issues are distributed over the SM's warp schedulers;
        // an SM retires cuda_cores_per_sm/warp_size warp-FMAs per cycle when
        // saturated. A single block rarely saturates an SM alone, so we
        // charge the issue cost divided by the per-block parallelism
        // (bounded by its warp count).
        let warp_slots = (d.cuda_cores_per_sm / d.warp_size).max(1) as f64;
        let parallel = (self.warps.max(1) as f64).min(warp_slots);
        let cuda = self.cuda_fma_issues as f64 * d.cuda_fma_cycles / parallel;
        let tensor_slots = d.tensor_cores_per_sm.max(1) as f64;
        let tpar = (self.warps.max(1) as f64).min(tensor_slots);
        let tensor = self.wmma_issues as f64 * d.wmma_cycles / tpar;
        cuda + tensor
    }

    /// Cycles to stream this block's demand bytes at the SM's share of DRAM
    /// bandwidth.
    fn dram_stream_cycles(&self, d: &DeviceSpec) -> f64 {
        (self.dram.bytes_loaded + self.dram.bytes_stored) as f64 / d.bytes_per_cycle_per_sm()
    }

    /// The dependent-latency chain: demand-transaction latency after
    /// warp-level hiding, plus the shared-memory LSU occupancy that
    /// serializes with it.
    fn latency_chain_cycles(&self, d: &DeviceSpec) -> f64 {
        let hiding = (self.warps.max(1) as f64).sqrt();
        let latency = self.dram.transactions as f64 * d.dram_latency_cycles / hiding;
        let shared = (self.shared.loads + self.shared.stores) as f64 * d.shared_access_cycles
            + self.shared.bank_conflicts as f64 * d.bank_conflict_cycles;
        latency + shared
    }

    /// Cycles this block spends waiting on demand memory (global + shared),
    /// after warp-level latency hiding.
    pub fn memory_cycles(&self, d: &DeviceSpec) -> f64 {
        // Shared-memory accesses pipeline in the LSU concurrently with DRAM
        // streaming but serialize with the dependent-load latency chain.
        self.dram_stream_cycles(d).max(self.latency_chain_cycles(d))
    }

    /// Residual latency of the asynchronous prefetch stream. Double
    /// buffering gives each `cp.async` a full pipeline stage to land, so
    /// its latency is hidden linearly in the warp count — markedly better
    /// than the `sqrt(warps)` hiding of demand loads, but not free: the
    /// per-stage barrier still waits for the slowest outstanding copy.
    pub fn prefetch_residual_cycles(&self, d: &DeviceSpec) -> f64 {
        let hiding = self.warps.max(1) as f64;
        self.prefetch.transactions as f64 * d.dram_latency_cycles / hiding
    }

    /// Memory cycles with the prefetch stream folded in: prefetch bytes
    /// share the DRAM pipe with demand bytes (bandwidth is additive), while
    /// the prefetch residual chains with the demand-latency side. The same
    /// `max` that lets demand bandwidth and latency overlap applies, so a
    /// bandwidth-bound block is never charged prefetch latency on top of a
    /// saturated pipe. With no prefetch traffic this is exactly
    /// [`memory_cycles`](BlockCost::memory_cycles).
    pub fn combined_memory_cycles(&self, d: &DeviceSpec) -> f64 {
        let pstream = (self.prefetch.bytes_loaded + self.prefetch.bytes_stored) as f64
            / d.bytes_per_cycle_per_sm();
        let bandwidth = self.dram_stream_cycles(d) + pstream;
        let chain = self.latency_chain_cycles(d) + self.prefetch_residual_cycles(d);
        bandwidth.max(chain)
    }

    /// Total cycles charged to the SM that runs this block.
    pub fn cycles(&self, d: &DeviceSpec) -> f64 {
        // Compute and memory partially overlap thanks to warp switching; the
        // residual serialization factor is calibrated with the Fig. 1
        // crossover (see `device` module docs). The serialization tax stays
        // a function of demand memory only: prefetches never stall a warp.
        let c = self.compute_cycles(d);
        let m = self.memory_cycles(d);
        c.max(self.combined_memory_cycles(d)) + 0.35 * c.min(m)
    }
}

/// Result of simulating one kernel (or a fused sequence).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelRun {
    /// Simulated wall-clock time in milliseconds.
    pub time_ms: f64,
    /// SM makespan in cycles (excludes launch overhead and roofline clamp).
    pub makespan_cycles: f64,
    /// Aggregated hardware counters.
    pub profile: KernelProfile,
}

impl KernelRun {
    /// Merge a run that conceptually happened after this one.
    pub fn then(mut self, other: &KernelRun) -> KernelRun {
        self.time_ms += other.time_ms;
        self.makespan_cycles += other.makespan_cycles;
        self.profile.merge(&other.profile);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_warps_hide_more_latency() {
        let d = DeviceSpec::rtx3090();
        let mut few = BlockCost {
            warps: 1,
            ..Default::default()
        };
        few.dram.transactions = 1000;
        few.dram.bytes_loaded = 1000 * 32;
        let mut many = few;
        many.warps = 16;
        assert!(many.memory_cycles(&d) < few.memory_cycles(&d));
    }

    #[test]
    fn compute_and_memory_overlap_partially() {
        let d = DeviceSpec::rtx3090();
        let mut b = BlockCost {
            cuda_fma_issues: 10_000,
            warps: 4,
            ..Default::default()
        };
        b.dram.transactions = 10_000;
        b.dram.bytes_loaded = 10_000 * 128;
        let total = b.cycles(&d);
        let c = b.compute_cycles(&d);
        let m = b.memory_cycles(&d);
        assert!(total >= c.max(m));
        assert!(total <= c + m);
    }

    #[test]
    fn traffic_merging_adds_fields() {
        let mut a = DramTraffic {
            bytes_loaded: 10,
            bytes_stored: 20,
            transactions: 3,
        };
        a.add(&DramTraffic {
            bytes_loaded: 1,
            bytes_stored: 2,
            transactions: 4,
        });
        assert_eq!(a.bytes_loaded, 11);
        assert_eq!(a.bytes_stored, 22);
        assert_eq!(a.transactions, 7);
    }
}
