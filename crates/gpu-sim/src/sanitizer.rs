//! Kernel sanitizer: static analyses over [`BlockTrace`]s, modeled on CUDA
//! `compute-sanitizer`.
//!
//! The simulator executes *declared* work — nothing stops a kernel's trace
//! builder from billing one access pattern to the cost model while the
//! trace (or the real kernel it mirrors) does something else. This module
//! closes that gap with four checks:
//!
//! * **racecheck** — shared-memory hazards: two warps touching a common
//!   word within the same barrier epoch, at least one of them writing.
//! * **memcheck** — shared accesses outside the block's declared
//!   allocation, allocations exceeding [`DeviceSpec::shared_mem_per_sm`],
//!   and address-less accesses in blocks that declare shared memory.
//! * **synccheck** — barrier divergence: warps of one block retiring
//!   different numbers of `__syncthreads()`.
//! * **cost conformance** — recount FMA issues, WMMA issues, global
//!   transactions, shared accesses and bank-conflict replays from the trace
//!   and diff them against the analytic [`BlockCost`] the kernel billed.
//!
//! All checks are pure functions of the trace (plus the billed cost for
//! conformance); [`sanitize_block`] runs the full battery and returns a
//! structured [`SanitizerReport`].

use std::fmt;

use crate::cost::BlockCost;
use crate::device::DeviceSpec;
use crate::trace::{AccessKind, BlockTrace, CounterTrace, SharedAccess, WarpOp};

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Shared-memory race detection.
    RaceCheck,
    /// Shared-memory bounds / capacity checking.
    MemCheck,
    /// Barrier-divergence detection.
    SyncCheck,
    /// Trace-vs-BlockCost counter conformance.
    CostConformance,
}

impl CheckKind {
    /// All checks, in report order.
    pub const ALL: [CheckKind; 4] = [
        CheckKind::RaceCheck,
        CheckKind::MemCheck,
        CheckKind::SyncCheck,
        CheckKind::CostConformance,
    ];

    /// Stable lowercase name (CLI / report labels).
    pub fn name(&self) -> &'static str {
        match self {
            CheckKind::RaceCheck => "racecheck",
            CheckKind::MemCheck => "memcheck",
            CheckKind::SyncCheck => "synccheck",
            CheckKind::CostConformance => "cost-conformance",
        }
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Location of an op inside a block trace: warp index and op index within
/// that warp's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRef {
    /// Warp index within the block.
    pub warp: usize,
    /// Op index within the warp's program.
    pub op: usize,
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warp {} op {}", self.warp, self.op)
    }
}

/// One sanitizer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The analysis that fired.
    pub check: CheckKind,
    /// Human-readable description with addresses / counters inline.
    pub message: String,
    /// Primary op involved, when the finding is op-granular.
    pub site: Option<OpRef>,
    /// Second op involved (the other side of a race).
    pub other: Option<OpRef>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.message)?;
        if let Some(site) = self.site {
            write!(f, " ({site}")?;
            if let Some(other) = self.other {
                write!(f, " vs {other}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Tunables for the sanitizer battery.
#[derive(Debug, Clone)]
pub struct SanitizerConfig {
    /// Cap on reported findings per check (analysis still runs to
    /// completion; `SanitizerReport::suppressed` counts the overflow).
    pub max_findings_per_check: usize,
    /// Absolute slack allowed on each conformance counter.
    pub cost_abs_tolerance: u64,
    /// Relative slack allowed on each conformance counter (fraction of the
    /// larger side).
    pub cost_rel_tolerance: f64,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            max_findings_per_check: 16,
            cost_abs_tolerance: 2,
            cost_rel_tolerance: 0.01,
        }
    }
}

/// Outcome of running the sanitizer battery on one block.
#[derive(Debug, Clone, Default)]
pub struct SanitizerReport {
    /// Findings across all checks, in check order.
    pub findings: Vec<Finding>,
    /// Findings dropped by `max_findings_per_check`.
    pub suppressed: usize,
    /// Total ops examined.
    pub ops_checked: usize,
    /// Barriers retired per warp, as seen by synccheck (empty for empty
    /// traces).
    pub barriers_per_warp: Vec<usize>,
}

impl SanitizerReport {
    /// True when no check fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }

    /// Findings produced by one specific check.
    pub fn findings_for(&self, check: CheckKind) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.check == check)
    }

    fn push_capped(&mut self, cap: usize, counted: &mut usize, finding: Finding) {
        *counted += 1;
        if *counted <= cap {
            self.findings.push(finding);
        } else {
            self.suppressed += 1;
        }
    }
}

/// One shared access annotated with its position and barrier epoch.
#[derive(Debug, Clone, Copy)]
struct EpochAccess {
    site: OpRef,
    epoch: usize,
    access: SharedAccess,
}

/// Run the full sanitizer battery on one block trace.
///
/// `cost` is the analytic [`BlockCost`] the kernel billed for this block;
/// pass `None` to skip the conformance lint (e.g. for hand-built traces
/// with no analytic counterpart).
pub fn sanitize_block(
    trace: &BlockTrace,
    cost: Option<&BlockCost>,
    dev: &DeviceSpec,
    cfg: &SanitizerConfig,
) -> SanitizerReport {
    let mut report = SanitizerReport {
        ops_checked: trace.len(),
        ..SanitizerReport::default()
    };
    memcheck(trace, dev, cfg, &mut report);
    synccheck(trace, cfg, &mut report);
    racecheck(trace, cfg, &mut report);
    if let Some(cost) = cost {
        cost_conformance(trace, cost, cfg, &mut report);
    }
    report
}

/// Shared-memory bounds and capacity checking.
fn memcheck(
    trace: &BlockTrace,
    dev: &DeviceSpec,
    cfg: &SanitizerConfig,
    out: &mut SanitizerReport,
) {
    let cap = cfg.max_findings_per_check;
    let mut counted = 0usize;
    let alloc = trace.shared_alloc_words;
    let alloc_bytes = alloc as u64 * 4;
    if alloc_bytes > dev.shared_mem_per_sm as u64 {
        out.push_capped(
            cap,
            &mut counted,
            Finding {
                check: CheckKind::MemCheck,
                message: format!(
                    "declared shared allocation of {alloc_bytes} B exceeds the SM's {} B",
                    dev.shared_mem_per_sm
                ),
                site: None,
                other: None,
            },
        );
    }
    for (wi, warp) in trace.warps.iter().enumerate() {
        for (oi, op) in warp.ops.iter().enumerate() {
            let WarpOp::Shared { access, .. } = op else {
                continue;
            };
            let site = OpRef { warp: wi, op: oi };
            match access {
                None if alloc > 0 => out.push_capped(
                    cap,
                    &mut counted,
                    Finding {
                        check: CheckKind::MemCheck,
                        message: "shared access carries no address footprint in a block that \
                                  declares shared memory"
                            .to_string(),
                        site: Some(site),
                        other: None,
                    },
                ),
                None => {}
                Some(a) if alloc == 0 => out.push_capped(
                    cap,
                    &mut counted,
                    Finding {
                        check: CheckKind::MemCheck,
                        message: format!(
                            "shared {} of words [{}, {}) in a block with no declared allocation",
                            kind_name(a.kind),
                            a.offset,
                            a.end()
                        ),
                        site: Some(site),
                        other: None,
                    },
                ),
                Some(a) if a.end() > alloc || a.words == 0 => out.push_capped(
                    cap,
                    &mut counted,
                    Finding {
                        check: CheckKind::MemCheck,
                        message: if a.words == 0 {
                            format!(
                                "zero-width shared {} at word {}",
                                kind_name(a.kind),
                                a.offset
                            )
                        } else {
                            format!(
                                "shared {} of words [{}, {}) overruns the declared allocation \
                                 of {alloc} words",
                                kind_name(a.kind),
                                a.offset,
                                a.end()
                            )
                        },
                        site: Some(site),
                        other: None,
                    },
                ),
                Some(_) => {}
            }
        }
    }
}

/// Barrier-divergence detection: every warp of a block must retire the same
/// number of `__syncthreads()`.
fn synccheck(trace: &BlockTrace, cfg: &SanitizerConfig, out: &mut SanitizerReport) {
    out.barriers_per_warp = trace.warps.iter().map(|w| w.barrier_count()).collect();
    let (Some(&min), Some(&max)) = (
        out.barriers_per_warp.iter().min(),
        out.barriers_per_warp.iter().max(),
    ) else {
        return;
    };
    if min == max {
        return;
    }
    let cap = cfg.max_findings_per_check;
    let mut counted = 0usize;
    let per_warp = out.barriers_per_warp.clone();
    for (wi, &bars) in per_warp.iter().enumerate() {
        if bars != max {
            out.push_capped(
                cap,
                &mut counted,
                Finding {
                    check: CheckKind::SyncCheck,
                    message: format!(
                        "warp {wi} retires {bars} barrier(s) while its block peaks at {max} — \
                         divergent __syncthreads()"
                    ),
                    site: Some(OpRef { warp: wi, op: 0 }),
                    other: None,
                },
            );
        }
    }
}

/// Shared-memory race detection.
///
/// Accesses are bucketed by barrier epoch (the number of barriers the warp
/// retired before issuing the access). Within one epoch, any two accesses
/// from *different* warps whose word footprints overlap race unless both
/// are reads. Same-warp accesses are program-ordered and never race.
///
/// The sweep keeps reads and writes separate: a new access only has to be
/// compared against prior *writes* (plus, for a write, prior reads), so
/// broadcast-heavy read phases stay near-linear.
fn racecheck(trace: &BlockTrace, cfg: &SanitizerConfig, out: &mut SanitizerReport) {
    let mut accesses: Vec<EpochAccess> = Vec::new();
    for (wi, warp) in trace.warps.iter().enumerate() {
        let mut epoch = 0usize;
        for (oi, op) in warp.ops.iter().enumerate() {
            match op {
                WarpOp::Barrier => epoch += 1,
                WarpOp::Shared {
                    access: Some(a), ..
                } if a.words > 0 => accesses.push(EpochAccess {
                    site: OpRef { warp: wi, op: oi },
                    epoch,
                    access: *a,
                }),
                _ => {}
            }
        }
    }
    // Bucket by epoch, then sweep each bucket by start offset.
    accesses.sort_unstable_by_key(|a| (a.epoch, a.access.offset));
    let cap = cfg.max_findings_per_check;
    let mut counted = 0usize;
    let mut i = 0usize;
    while i < accesses.len() {
        let mut j = i;
        while j < accesses.len() && accesses[j].epoch == accesses[i].epoch {
            j += 1;
        }
        sweep_epoch(&accesses[i..j], cap, &mut counted, out);
        i = j;
    }
}

/// Interval sweep over one epoch's accesses (sorted by start offset).
fn sweep_epoch(bucket: &[EpochAccess], cap: usize, counted: &mut usize, out: &mut SanitizerReport) {
    // Active intervals still overlapping the sweep line, reads and writes
    // kept apart so read-vs-read pairs are never enumerated.
    let mut active_reads: Vec<EpochAccess> = Vec::new();
    let mut active_writes: Vec<EpochAccess> = Vec::new();
    for cur in bucket {
        let start = cur.access.offset;
        active_reads.retain(|a| a.access.end() > start);
        active_writes.retain(|a| a.access.end() > start);
        let against_writes = active_writes.iter();
        let against: Vec<&EpochAccess> = if cur.access.kind == AccessKind::Write {
            against_writes.chain(active_reads.iter()).collect()
        } else {
            against_writes.collect()
        };
        for prior in against {
            if prior.site.warp == cur.site.warp || !prior.access.overlaps(&cur.access) {
                continue;
            }
            out.push_capped(
                cap,
                counted,
                Finding {
                    check: CheckKind::RaceCheck,
                    message: format!(
                        "{} of words [{}, {}) races with {} of words [{}, {}) in barrier \
                         epoch {} (no separating __syncthreads())",
                        kind_name(cur.access.kind),
                        cur.access.offset,
                        cur.access.end(),
                        kind_name(prior.access.kind),
                        prior.access.offset,
                        prior.access.end(),
                        cur.epoch,
                    ),
                    site: Some(cur.site),
                    other: Some(prior.site),
                },
            );
        }
        match cur.access.kind {
            AccessKind::Read => active_reads.push(*cur),
            AccessKind::Write => active_writes.push(*cur),
        }
    }
}

/// Counters recomputed from a trace, mirroring [`BlockCost`]'s accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// CUDA-pipe FMA issues ([`WarpOp::Compute`] ops).
    pub fma_issues: u64,
    /// Tensor-core issues ([`WarpOp::Wmma`] ops).
    pub wmma_issues: u64,
    /// Global-memory transactions ([`WarpOp::Global`] ops).
    pub global_transactions: u64,
    /// Asynchronous prefetch transactions ([`WarpOp::Prefetch`] ops).
    pub prefetch_transactions: u64,
    /// Shared accesses (loads + stores).
    pub shared_accesses: u64,
    /// Bank-conflict replays summed over shared ops.
    pub bank_conflicts: u64,
    /// Warps with at least one op.
    pub warps: u32,
}

impl From<&CounterTrace> for TraceCounters {
    /// Collapse a counter-mode trace into the lint's counter set (the lint
    /// compares the load+store sum, so the direction split folds).
    fn from(c: &CounterTrace) -> TraceCounters {
        TraceCounters {
            fma_issues: c.compute_issues,
            wmma_issues: c.wmma_issues,
            global_transactions: c.global_transactions,
            prefetch_transactions: c.prefetch_transactions,
            shared_accesses: c.shared_loads + c.shared_stores,
            bank_conflicts: c.bank_conflicts,
            warps: c.warps,
        }
    }
}

/// Recount the billable work in a trace.
pub fn count_trace(trace: &BlockTrace) -> TraceCounters {
    TraceCounters::from(&CounterTrace::from_trace(trace))
}

/// Trace-vs-cost conformance lint: the counters a kernel bills to the
/// analytic model must match what its trace actually performs, within the
/// configured tolerance.
fn cost_conformance(
    trace: &BlockTrace,
    cost: &BlockCost,
    cfg: &SanitizerConfig,
    out: &mut SanitizerReport,
) {
    cost_conformance_counters(&count_trace(trace), cost, cfg, out);
}

/// The conformance lint against pre-aggregated counters — the entry point
/// for counter-mode traces, which never materialize per-op event vectors.
/// [`sanitize_block`] routes full event traces through the same check via
/// [`count_trace`].
pub fn cost_conformance_counters(
    traced: &TraceCounters,
    cost: &BlockCost,
    cfg: &SanitizerConfig,
    out: &mut SanitizerReport,
) {
    let cap = cfg.max_findings_per_check;
    let mut counted = 0usize;
    let mut diff = |name: &str, traced_v: u64, billed_v: u64, out: &mut SanitizerReport| {
        let gap = traced_v.abs_diff(billed_v);
        let slack = cfg.cost_abs_tolerance
            + (cfg.cost_rel_tolerance * traced_v.max(billed_v) as f64).floor() as u64;
        if gap > slack {
            out.push_capped(
                cap,
                &mut counted,
                Finding {
                    check: CheckKind::CostConformance,
                    message: format!(
                        "{name}: trace performs {traced_v} but the kernel billed {billed_v} \
                         (gap {gap} > slack {slack})"
                    ),
                    site: None,
                    other: None,
                },
            );
        }
    };
    diff(
        "cuda_fma_issues",
        traced.fma_issues,
        cost.cuda_fma_issues,
        out,
    );
    diff("wmma_issues", traced.wmma_issues, cost.wmma_issues, out);
    diff(
        "dram.transactions",
        traced.global_transactions,
        cost.dram.transactions,
        out,
    );
    diff(
        "prefetch.transactions",
        traced.prefetch_transactions,
        cost.prefetch.transactions,
        out,
    );
    diff(
        "shared accesses (loads+stores)",
        traced.shared_accesses,
        cost.shared.loads + cost.shared.stores,
        out,
    );
    diff(
        "shared.bank_conflicts",
        traced.bank_conflicts,
        cost.shared.bank_conflicts,
        out,
    );
    if traced.warps != cost.warps {
        out.push_capped(
            cap,
            &mut counted,
            Finding {
                check: CheckKind::CostConformance,
                message: format!(
                    "warps: trace has {} but the kernel billed {}",
                    traced.warps, cost.warps
                ),
                site: None,
                other: None,
            },
        );
    }
}

fn kind_name(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Read => "read",
        AccessKind::Write => "write",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::WarpTrace;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    fn two_warps(a: Vec<WarpOp>, b: Vec<WarpOp>, alloc: u32) -> BlockTrace {
        BlockTrace {
            warps: vec![WarpTrace { ops: a }, WarpTrace { ops: b }],
            shared_alloc_words: alloc,
        }
    }

    fn run(trace: &BlockTrace) -> SanitizerReport {
        sanitize_block(trace, None, &dev(), &SanitizerConfig::default())
    }

    #[test]
    fn clean_disjoint_block_reports_nothing() {
        let t = two_warps(
            vec![
                WarpOp::shared_write(0, 32),
                WarpOp::Barrier,
                WarpOp::shared_read(32, 32),
                WarpOp::Compute,
            ],
            vec![
                WarpOp::shared_write(32, 32),
                WarpOp::Barrier,
                WarpOp::shared_read(0, 32),
                WarpOp::Compute,
            ],
            64,
        );
        let r = run(&t);
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.barriers_per_warp, vec![1, 1]);
    }

    #[test]
    fn racecheck_flags_same_epoch_write_write() {
        let t = two_warps(
            vec![WarpOp::shared_write(0, 8)],
            vec![WarpOp::shared_write(4, 8)],
            32,
        );
        let r = run(&t);
        assert_eq!(r.findings_for(CheckKind::RaceCheck).count(), 1);
        assert_eq!(r.findings_for(CheckKind::MemCheck).count(), 0);
    }

    #[test]
    fn racecheck_flags_read_write_but_not_read_read() {
        let rw = two_warps(
            vec![WarpOp::shared_read(0, 8)],
            vec![WarpOp::shared_write(0, 8)],
            32,
        );
        assert_eq!(run(&rw).findings_for(CheckKind::RaceCheck).count(), 1);
        let rr = two_warps(
            vec![WarpOp::shared_read(0, 8)],
            vec![WarpOp::shared_read(0, 8)],
            32,
        );
        assert!(run(&rr).is_clean());
    }

    #[test]
    fn barrier_separates_epochs() {
        // Same words, but a barrier between the write and the read.
        let t = two_warps(
            vec![WarpOp::shared_write(0, 8), WarpOp::Barrier],
            vec![WarpOp::Barrier, WarpOp::shared_read(0, 8)],
            32,
        );
        assert!(run(&t).is_clean());
    }

    #[test]
    fn same_warp_never_races() {
        let t = BlockTrace {
            warps: vec![WarpTrace {
                ops: vec![WarpOp::shared_write(0, 8), WarpOp::shared_read(0, 8)],
            }],
            shared_alloc_words: 32,
        };
        assert!(run(&t).is_clean());
    }

    #[test]
    fn memcheck_flags_overrun_and_capacity() {
        let t = two_warps(vec![WarpOp::shared_read(30, 8)], vec![], 32);
        let r = run(&t);
        assert_eq!(r.findings_for(CheckKind::MemCheck).count(), 1);

        let d = dev();
        let words = d.shared_mem_per_sm / 4 + 1;
        let big = BlockTrace {
            warps: vec![WarpTrace::default()],
            shared_alloc_words: words,
        };
        let r = run(&big);
        assert_eq!(r.findings_for(CheckKind::MemCheck).count(), 1);
    }

    #[test]
    fn memcheck_flags_unaddressed_access_only_with_alloc() {
        let with_alloc = two_warps(vec![WarpOp::shared(0)], vec![], 32);
        assert_eq!(
            run(&with_alloc).findings_for(CheckKind::MemCheck).count(),
            1
        );
        // Legacy conflict-only traces with no declared allocation pass.
        let legacy = two_warps(vec![WarpOp::shared(0)], vec![], 0);
        assert!(run(&legacy).is_clean());
    }

    #[test]
    fn synccheck_flags_divergent_barriers() {
        let t = two_warps(
            vec![WarpOp::Barrier, WarpOp::Compute],
            vec![WarpOp::Compute],
            0,
        );
        let r = run(&t);
        assert_eq!(r.findings_for(CheckKind::SyncCheck).count(), 1);
        assert_eq!(r.barriers_per_warp, vec![1, 0]);
    }

    #[test]
    fn conformance_flags_skewed_counter() {
        let t = two_warps(vec![WarpOp::Compute; 100], vec![WarpOp::Compute; 100], 0);
        let mut cost = BlockCost {
            cuda_fma_issues: 200,
            warps: 2,
            ..BlockCost::default()
        };
        let cfg = SanitizerConfig::default();
        let clean = sanitize_block(&t, Some(&cost), &dev(), &cfg);
        assert!(clean.is_clean(), "{:?}", clean.findings);
        cost.cuda_fma_issues = 150;
        let skewed = sanitize_block(&t, Some(&cost), &dev(), &cfg);
        assert_eq!(skewed.findings_for(CheckKind::CostConformance).count(), 1);
    }

    #[test]
    fn conformance_tolerates_rounding_slack() {
        // Gap of 3 against a slack of abs 2 + 1% of 103 = 3: just inside.
        let t = two_warps(vec![WarpOp::Compute; 100], vec![], 0);
        let cost = BlockCost {
            cuda_fma_issues: 103,
            warps: 2,
            ..BlockCost::default()
        };
        let r = sanitize_block(&t, Some(&cost), &dev(), &SanitizerConfig::default());
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn finding_cap_suppresses_overflow() {
        // 40 overlapping write pairs -> more findings than the default cap.
        let a: Vec<WarpOp> = (0..40).map(|_| WarpOp::shared_write(0, 4)).collect();
        let b = a.clone();
        let t = two_warps(a, b, 32);
        let cfg = SanitizerConfig {
            max_findings_per_check: 4,
            ..SanitizerConfig::default()
        };
        let r = sanitize_block(&t, None, &dev(), &cfg);
        assert_eq!(r.findings_for(CheckKind::RaceCheck).count(), 4);
        assert!(r.suppressed > 0);
        assert!(!r.is_clean());
    }

    #[test]
    fn builtin_window_traces_are_clean() {
        let d = dev();
        let cuda = crate::trace::cuda_window_trace(&[5, 9, 2, 14], 64, &d);
        let r = run(&cuda);
        assert!(r.is_clean(), "cuda trace: {:?}", r.findings);
        let tensor = crate::trace::tensor_window_trace(96, 24, 64, &d);
        let r = run(&tensor);
        assert!(r.is_clean(), "tensor trace: {:?}", r.findings);
    }
}
