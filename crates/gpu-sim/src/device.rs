//! Architectural constants for the simulated GPUs.
//!
//! Presets correspond to the three boards in the paper's evaluation
//! (RTX 3090 in the main body, RTX 4090 and A100 in Appendix A / Table XVI).
//! The structural numbers (SM count, core counts, clocks, bandwidth) are the
//! public board specifications; the per-operation issue costs are calibrated
//! once so that the Fig. 1(a) CUDA/Tensor crossover for a 16×32 row window at
//! dense dimension 32 lands near the 83 % sparsity the paper measures. No
//! per-dataset or per-baseline tuning exists anywhere in the workspace.

use serde::{Deserialize, Serialize};

use crate::cost::{BlockCost, KernelRun};
use crate::faults;
use crate::precision::Precision;
use crate::profile::KernelProfile;
use crate::scheduler;

/// Which physical board the spec models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Nvidia GeForce RTX 3090 (Ampere, GA102) — the paper's main platform.
    Rtx3090,
    /// Nvidia GeForce RTX 4090 (Ada, AD102) — Appendix A.
    Rtx4090,
    /// Nvidia A100 (Ampere, GA100) — Appendix A.
    A100,
}

impl DeviceKind {
    /// All presets, in the order Table XVI lists them.
    pub const ALL: [DeviceKind; 3] = [DeviceKind::Rtx3090, DeviceKind::Rtx4090, DeviceKind::A100];

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Rtx3090 => "3090",
            DeviceKind::Rtx4090 => "4090",
            DeviceKind::A100 => "A100",
        }
    }
}

/// Architectural constants of one simulated GPU.
///
/// Times are derived as `cycles / clock_hz`; bandwidth-bound phases use the
/// DRAM roofline. All fields are public so experiments can build hypothetical
/// devices, but most callers should start from [`DeviceSpec::new`].
///
/// ```
/// use gpu_sim::{BlockCost, DeviceSpec};
/// let dev = DeviceSpec::rtx3090();
/// let run = dev.execute(&vec![BlockCost::with_cuda_compute(10_000.0); 82]);
/// assert!(run.time_ms > 0.0);
/// assert_eq!(run.profile.blocks, 82);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Board identity (controls nothing by itself; presets fill the fields).
    pub kind: DeviceKind,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores (FP32 lanes) per SM.
    pub cuda_cores_per_sm: u32,
    /// Tensor cores per SM.
    pub tensor_cores_per_sm: u32,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Aggregate DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// Latency of a DRAM transaction in cycles (exposed portion after
    /// warp-level latency hiding).
    pub dram_latency_cycles: f64,
    /// Shared-memory capacity per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Maximum resident thread blocks per SM (occupancy cap).
    pub max_blocks_per_sm: u32,
    /// Threads per warp (32 on every Nvidia GPU).
    pub warp_size: u32,
    /// Global-memory transaction granularity in bytes (L1 enabled).
    pub transaction_bytes: u32,
    /// Number of independent shared-memory banks.
    pub shared_banks: u32,
    /// Kernel launch overhead in microseconds. The paper measures ≈0.03 ms
    /// per matrix-multiplication kernel launch (§V-A, footnote 12); that
    /// includes driver queueing for a full mm kernel. We model the raw
    /// per-launch cost.
    pub launch_overhead_us: f64,
    /// Cycles of SM issue bandwidth consumed by one warp-wide CSR
    /// multiply-accumulate step on the CUDA cores — the FFMA itself plus
    /// the two shared-memory index/value reads, the address computation and
    /// the gather issue that accompany it in Algorithm 3's inner loop.
    pub cuda_fma_cycles: f64,
    /// Cycles for one WMMA (m16n16k8 TF32) issue per warp on a Tensor core,
    /// including the fragment load from shared memory into registers.
    pub wmma_cycles: f64,
    /// Cycles to service one shared-memory access (per warp, conflict-free).
    pub shared_access_cycles: f64,
    /// Extra cycles per serialized bank-conflict replay.
    pub bank_conflict_cycles: f64,
}

impl DeviceSpec {
    /// Construct the preset spec for `kind`.
    pub fn new(kind: DeviceKind) -> Self {
        // Issue-cost constants shared by all presets; see module docs for the
        // calibration procedure.
        let base = DeviceSpec {
            kind,
            num_sms: 82,
            cuda_cores_per_sm: 128,
            tensor_cores_per_sm: 4,
            clock_ghz: 1.70,
            dram_bandwidth_gbs: 936.0,
            dram_latency_cycles: 28.0,
            shared_mem_per_sm: 100 * 1024,
            max_blocks_per_sm: 16,
            warp_size: 32,
            transaction_bytes: 128,
            shared_banks: 32,
            launch_overhead_us: 3.0,
            cuda_fma_cycles: 10.0,
            wmma_cycles: 34.0,
            shared_access_cycles: 1.0,
            bank_conflict_cycles: 1.0,
        };
        match kind {
            // RTX 3090: 82 SMs, 10 496 CUDA cores, 328 Tensor cores, 936 GB/s.
            DeviceKind::Rtx3090 => base,
            // RTX 4090: 128 SMs, 16 384 CUDA cores, 512 Tensor cores,
            // 1 008 GB/s, higher clock.
            DeviceKind::Rtx4090 => DeviceSpec {
                num_sms: 128,
                clock_ghz: 2.52,
                dram_bandwidth_gbs: 1008.0,
                ..base
            },
            // A100 (SXM): 108 SMs, 6 912 CUDA cores (64/SM), 432 Tensor
            // cores, 1 555 GB/s HBM2e, lower clock. Fewer FP32 lanes per SM
            // makes small-kernel latency worse, matching the paper's Table
            // XVI where the A100 is often the slowest of the three on these
            // latency-bound SpMM kernels.
            DeviceKind::A100 => DeviceSpec {
                num_sms: 108,
                cuda_cores_per_sm: 64,
                clock_ghz: 1.41,
                dram_bandwidth_gbs: 1555.0,
                dram_latency_cycles: 34.0,
                shared_mem_per_sm: 164 * 1024,
                ..base
            },
        }
    }

    /// The paper's main platform.
    pub fn rtx3090() -> Self {
        Self::new(DeviceKind::Rtx3090)
    }

    /// Appendix A platform.
    pub fn rtx4090() -> Self {
        Self::new(DeviceKind::Rtx4090)
    }

    /// Appendix A platform.
    pub fn a100() -> Self {
        Self::new(DeviceKind::A100)
    }

    /// Clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// DRAM bytes one SM can move per cycle, assuming bandwidth is shared
    /// evenly across SMs (the roofline check in [`execute`] handles global
    /// saturation).
    ///
    /// [`execute`]: DeviceSpec::execute
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        (self.dram_bandwidth_gbs * 1e9) / self.clock_hz() / self.num_sms as f64
    }

    /// Resident thread blocks one SM can hold given each block's
    /// shared-memory footprint — the occupancy the paper's Table IV
    /// discussion invokes ("YS has a low average degree which leads to less
    /// shared memory usage, thus increasing the number of warps that can be
    /// concurrently scheduled by GPU").
    pub fn max_resident_blocks(&self, shared_bytes_per_block: u32) -> u32 {
        if shared_bytes_per_block == 0 {
            return self.max_blocks_per_sm;
        }
        (self.shared_mem_per_sm / shared_bytes_per_block).clamp(1, self.max_blocks_per_sm)
    }

    /// Cycles for one WMMA issue at the given precision. Half-precision tile
    /// shapes (m16n16k16) move twice the K elements per issue, so fewer
    /// issues are needed; per-issue cost is the same pipe.
    pub fn wmma_cycles_for(&self, p: Precision) -> f64 {
        let _ = p;
        self.wmma_cycles
    }

    /// Simulate the execution of one kernel consisting of `blocks` thread
    /// blocks, independently schedulable onto SMs.
    ///
    /// The time is `max(SM makespan, DRAM roofline) + launch overhead`. The
    /// profile aggregates the counters of every block.
    pub fn execute(&self, blocks: &[BlockCost]) -> KernelRun {
        hc_parallel::sync::assert_no_hazard_guards("DeviceSpec::execute");
        faults::observe_launch();
        let mut profile = KernelProfile::default();
        for b in blocks {
            profile.absorb(b);
        }
        profile.launches = 1;

        let block_cycles: Vec<f64> = blocks.iter().map(|b| b.cycles(self)).collect();
        let makespan = scheduler::makespan(&block_cycles, self.num_sms, self.max_blocks_per_sm);

        let total_dram_bytes = profile.dram_bytes_loaded + profile.dram_bytes_stored;
        let roofline_s = total_dram_bytes as f64 / (self.dram_bandwidth_gbs * 1e9);
        let compute_s = makespan / self.clock_hz();

        let time_s = compute_s.max(roofline_s) + self.launch_overhead_us * 1e-6;
        KernelRun {
            time_ms: time_s * 1e3,
            makespan_cycles: makespan,
            profile,
        }
    }

    /// Simulate two block families executing *concurrently*, each on its
    /// own SM partition (CUDA-windows and Tensor-windows in separate
    /// streams). The paper's Appendix H notes that HC-SpMM leaves one core
    /// type idle while the other runs; this is the future-work mode that
    /// would overlap them. The partition is chosen to minimize the larger
    /// makespan; DRAM stays shared (one roofline).
    pub fn execute_concurrent(&self, a: &[BlockCost], b: &[BlockCost]) -> KernelRun {
        hc_parallel::sync::assert_no_hazard_guards("DeviceSpec::execute_concurrent");
        if a.is_empty() || b.is_empty() {
            let mut all = a.to_vec();
            all.extend_from_slice(b);
            return self.execute(&all);
        }
        faults::observe_launch();
        let mut profile = KernelProfile::default();
        for blk in a.iter().chain(b) {
            profile.absorb(blk);
        }
        profile.launches = 1;

        let ca: Vec<f64> = a.iter().map(|x| x.cycles(self)).collect();
        let cb: Vec<f64> = b.iter().map(|x| x.cycles(self)).collect();
        let mut best = f64::INFINITY;
        for sms_a in 1..self.num_sms {
            let sms_b = self.num_sms - sms_a;
            let ma = scheduler::makespan(&ca, sms_a, self.max_blocks_per_sm);
            let mb = scheduler::makespan(&cb, sms_b, self.max_blocks_per_sm);
            best = best.min(ma.max(mb));
        }

        let total_dram = profile.dram_bytes_loaded + profile.dram_bytes_stored;
        let roofline_s = total_dram as f64 / (self.dram_bandwidth_gbs * 1e9);
        let time_s = (best / self.clock_hz()).max(roofline_s) + self.launch_overhead_us * 1e-6;
        KernelRun {
            time_ms: time_s * 1e3,
            makespan_cycles: best,
            profile,
        }
    }

    /// Simulate several kernels launched back to back (e.g. the unfused
    /// Aggregation + Update pipeline): times add, launch overhead is paid per
    /// kernel, profiles merge.
    pub fn execute_sequence(&self, kernels: &[Vec<BlockCost>]) -> KernelRun {
        hc_parallel::sync::assert_no_hazard_guards("DeviceSpec::execute_sequence");
        let mut total = KernelRun::default();
        for blocks in kernels {
            let run = self.execute(blocks);
            total.time_ms += run.time_ms;
            total.makespan_cycles += run.makespan_cycles;
            total.profile.merge(&run.profile);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::DramTraffic;

    #[test]
    fn presets_match_board_structure() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(d.num_sms, 82);
        assert_eq!(d.num_sms * d.cuda_cores_per_sm, 10_496);
        assert_eq!(d.num_sms * d.tensor_cores_per_sm, 328);
        let d = DeviceSpec::rtx4090();
        assert_eq!(d.num_sms * d.cuda_cores_per_sm, 16_384);
        let d = DeviceSpec::a100();
        assert_eq!(d.num_sms * d.cuda_cores_per_sm, 6_912);
    }

    #[test]
    fn empty_kernel_costs_only_launch() {
        let d = DeviceSpec::rtx3090();
        let run = d.execute(&[]);
        assert!((run.time_ms - d.launch_overhead_us * 1e-3).abs() < 1e-12);
    }

    #[test]
    fn time_monotone_in_compute() {
        let d = DeviceSpec::rtx3090();
        let small = vec![BlockCost::with_cuda_compute(1_000.0); 200];
        let big = vec![BlockCost::with_cuda_compute(10_000.0); 200];
        assert!(d.execute(&big).time_ms > d.execute(&small).time_ms);
    }

    #[test]
    fn roofline_binds_for_huge_traffic() {
        let d = DeviceSpec::rtx3090();
        // 1 GiB loaded by one block with negligible compute: the DRAM
        // roofline, not the SM makespan, must set the time.
        let b = BlockCost {
            dram: DramTraffic {
                bytes_loaded: 1 << 30,
                bytes_stored: 0,
                transactions: (1 << 30) / 128,
            },
            ..Default::default()
        };
        let run = d.execute(&[b]);
        let roofline_ms = (1u64 << 30) as f64 / (d.dram_bandwidth_gbs * 1e9) * 1e3;
        assert!(run.time_ms >= roofline_ms);
    }

    #[test]
    fn occupancy_tracks_shared_footprint() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(d.max_resident_blocks(0), d.max_blocks_per_sm);
        assert_eq!(d.max_resident_blocks(d.shared_mem_per_sm), 1);
        // 10 KB blocks: 100 KB SM holds 10, capped by the block limit.
        assert_eq!(
            d.max_resident_blocks(10 * 1024),
            10u32.min(d.max_blocks_per_sm)
        );
        // Oversized request still runs one block.
        assert_eq!(d.max_resident_blocks(u32::MAX), 1);
    }

    #[test]
    fn sequence_adds_launch_overheads() {
        let d = DeviceSpec::rtx3090();
        let one = d.execute(&[BlockCost::with_cuda_compute(100.0)]);
        let two = d.execute_sequence(&[
            vec![BlockCost::with_cuda_compute(100.0)],
            vec![BlockCost::with_cuda_compute(100.0)],
        ]);
        assert!((two.time_ms - 2.0 * one.time_ms).abs() < 1e-9);
        assert_eq!(two.profile.launches, 2);
    }
}
