//! Model-checking the real `SharedPlanCache` (the tentpole payoff): the
//! bounded scheduler explores the interleavings of two request threads —
//! racing misses on one fingerprint, disjoint shards, and a request
//! racing a quarantine — and asserts no race, no deadlock, no panic, and
//! a consistent lock-order graph (`plan-shard → quarantine-registry`,
//! acyclic).
//!
//! Runs only under `RUSTFLAGS="--cfg hc_check"` with
//! `--test-threads=1` (the model scheduler is process-global). Graphs
//! are tiny and the worker pool is pinned to one thread so the explored
//! state space stays small: the concurrency under test is the cache's,
//! not the pool's.
#![cfg(hc_check)]

use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Csr, StructureFingerprint};
use hc_check::{check_with, Options};
use hc_core::PlanSpec;
use hc_parallel::sync::thread;
use hc_serve::SharedPlanCache;

fn tiny_graphs(n: usize) -> Vec<Csr> {
    (0..n)
        .map(|i| gen::erdos_renyi(24, 60, 7 + i as u64))
        .collect()
}

fn opts() -> Options {
    Options {
        preemption_bound: 2,
        max_schedules: 2048,
        max_steps: 20_000,
        // Racing misses legitimately vary hit counts between schedules;
        // outcome determinism is asserted per-test where it must hold.
        expect_deterministic: false,
        ..Options::default()
    }
}

/// Two threads miss on the same fingerprint concurrently: both prepare,
/// first insert wins, both serve, counters stay coherent under every
/// interleaving.
#[test]
fn racing_misses_on_one_fingerprint_are_clean() {
    hc_parallel::set_threads(1);
    let gs = tiny_graphs(1);
    let dev = DeviceSpec::rtx3090();
    let report = check_with("shared-cache-racing-miss", opts(), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let g = gs[0].clone();
                let dev = dev.clone();
                thread::spawn(move || {
                    let (plan, _hit) = cache.get_or_prepare(&g, &dev);
                    plan.approx_bytes()
                })
            })
            .collect();
        for h in handles {
            h.join().expect("request thread");
        }
        let s = cache.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.hits + s.misses, s.requests);
        assert!(s.misses >= 1 && s.misses <= 2, "{s:?}");
        assert_eq!(cache.len(), 1, "first insert wins, exactly one resident");
        // Encode the (legitimately schedule-dependent) miss count into
        // the outcome so the explorer proves both interleavings exist.
        s.misses
    });
    report.assert_clean();
    assert!(report.schedules > 1, "{}", report.summary());
}

/// Requests on disjoint shards do not contend; outcome is deterministic.
#[test]
fn disjoint_shards_are_independent_and_deterministic() {
    hc_parallel::set_threads(1);
    let gs = tiny_graphs(8);
    let dev = DeviceSpec::rtx3090();
    // Pick two graphs that land on different shards of a 2-lane cache.
    let (g1, g2) = {
        let base = StructureFingerprint::of(&gs[0]).lo & 1;
        let other = gs[1..]
            .iter()
            .find(|g| StructureFingerprint::of(g).lo & 1 != base)
            .expect("some graph lands on the other shard");
        (gs[0].clone(), other.clone())
    };
    let report = check_with("shared-cache-disjoint-shards", opts(), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let handles: Vec<_> = [g1.clone(), g2.clone()]
            .into_iter()
            .map(|g| {
                let cache = Arc::clone(&cache);
                let dev = dev.clone();
                thread::spawn(move || {
                    let (_, hit) = cache.get_or_prepare(&g, &dev);
                    assert!(!hit, "distinct structures cannot hit");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("request thread");
        }
        let s = cache.stats();
        assert_eq!((s.requests, s.hits, s.misses), (2, 0, 2));
        assert_eq!(cache.len(), 2);
        0
    });
    report.assert_clean();
    assert!(report.deterministic(), "{}", report.summary());
}

/// A request races a quarantine on the same fingerprint. Under every
/// interleaving: no deadlock (lock order shard → registry is respected
/// on both paths), and after both complete the fingerprint is barred and
/// not resident.
#[test]
fn request_racing_quarantine_is_clean_and_lock_order_consistent() {
    hc_parallel::set_threads(1);
    let gs = tiny_graphs(1);
    let dev = DeviceSpec::rtx3090();
    let fp = StructureFingerprint::of(&gs[0]);
    let report = check_with("shared-cache-quarantine-race", opts(), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let server = {
            let cache = Arc::clone(&cache);
            let g = gs[0].clone();
            let dev = dev.clone();
            thread::spawn(move || {
                let (_, hit) = cache.get_or_prepare(&g, &dev);
                u64::from(hit)
            })
        };
        let reaper = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.quarantine(fp))
        };
        let hit = server.join().expect("server thread");
        let _evicted = reaper.join().expect("reaper thread");
        assert_eq!(hit, 0, "nothing was resident to hit");
        assert!(cache.is_quarantined(fp));
        assert_eq!(cache.len(), 0, "quarantined fp must not be resident");
        let s = cache.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.quarantined, 1);
        // Outcome records whether the miss was barred by quarantine
        // (reaper won) or admitted-then-evicted (server won) — both
        // orders must be explored and both end in the same final state.
        s.quarantine_misses
    });
    report.assert_clean();
    assert!(
        report
            .lock_edges
            .iter()
            .any(|e| e.from == "plan-shard" && e.to == "quarantine-registry"),
        "expected shard→registry acquisition edge: {}",
        report.summary()
    );
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order graph must be acyclic: {}",
        report.summary()
    );
}
