//! Seeded-mutant validation of the model checker.
//!
//! Each test pairs a deliberately broken concurrent fragment (a "mutant"
//! modelled on a bug class the checker must catch in `SharedPlanCache`)
//! with its fixed counterpart, and asserts the checker flags the mutant
//! via *exactly* the relevant analysis while passing the fix clean:
//!
//! * **lost update** → non-deterministic-outcome analysis (no race, no
//!   deadlock — the racy load/store pair is on atomics, so it is not a
//!   data race; only the outcome set betrays it);
//! * **lock-order inversion** → lock-order graph cycle + deadlock
//!   detection;
//! * **torn counter** → vector-clock race detection on plain shared
//!   memory (outcome stays deterministic, so only the race analysis
//!   fires).
//!
//! Runs only under `RUSTFLAGS="--cfg hc_check"`; use
//! `cargo test -p hc-check -- --test-threads=1` (the model scheduler is
//! process-global).
#![cfg(hc_check)]

use hc_check::{check, Options, Report};
use hc_parallel::sync::model::RaceCell;
use hc_parallel::sync::thread;
use hc_parallel::sync::{AtomicU64, Mutex, Ordering};
use std::sync::Arc;

fn assert_only(report: &Report, race: bool, deadlock: bool, nondet: bool) {
    assert_eq!(
        report.has_race(),
        race,
        "race analysis mismatch for {}: {}",
        report.name,
        report.summary()
    );
    assert_eq!(
        report.has_deadlock(),
        deadlock,
        "deadlock analysis mismatch for {}: {}",
        report.name,
        report.summary()
    );
    assert_eq!(
        !report.deterministic(),
        nondet,
        "determinism analysis mismatch for {}: {}",
        report.name,
        report.summary()
    );
    assert!(
        !report.has_panic(),
        "unexpected panic for {}: {}",
        report.name,
        report.summary()
    );
}

// ---------------------------------------------------------------------
// Mutant 1: lost update (SharedPlanCache::insert-style read-modify-write
// split into load + store). Caught by the outcome analysis alone.
// ---------------------------------------------------------------------

#[test]
fn lost_update_mutant_caught_by_nondeterminism() {
    let report = check("lost-update-mutant", || {
        let count = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&count);
                thread::spawn(move || {
                    // Mutant: non-atomic read-modify-write.
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        count.load(Ordering::SeqCst)
    });
    // Both interleaved (1) and sequential (2) outcomes must be observed.
    assert!(report.outcomes.contains(&1), "{}", report.summary());
    assert!(report.outcomes.contains(&2), "{}", report.summary());
    assert_only(&report, false, false, true);
}

#[test]
fn lost_update_fix_passes_clean() {
    let report = check("lost-update-fixed", || {
        let count = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&count);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        count.load(Ordering::SeqCst)
    });
    assert_eq!(report.outcomes, vec![2], "{}", report.summary());
    report.assert_clean();
}

// ---------------------------------------------------------------------
// Mutant 2: lock-order inversion (shard lock vs quarantine registry
// acquired in opposite orders). Caught by the lock-order graph + the
// deadlock detector; no data race is involved.
// ---------------------------------------------------------------------

#[test]
fn lock_order_inversion_caught_by_lock_graph() {
    let report = check("lock-order-mutant", || {
        let shard = Arc::new(Mutex::named("plan-shard", 0u64));
        let quarantine = Arc::new(Mutex::named("quarantine", 0u64));
        let (s1, q1) = (Arc::clone(&shard), Arc::clone(&quarantine));
        let t1 = thread::spawn(move || {
            let a = s1.lock();
            let b = q1.lock();
            *a + *b
        });
        let (s2, q2) = (Arc::clone(&shard), Arc::clone(&quarantine));
        let t2 = thread::spawn(move || {
            // Mutant: opposite acquisition order.
            let b = q2.lock();
            let a = s2.lock();
            *a + *b
        });
        let _ = t1.join();
        let _ = t2.join();
        0
    });
    assert!(
        report
            .lock_cycles
            .iter()
            .any(|c| c.contains(&"plan-shard") && c.contains(&"quarantine")),
        "lock-order cycle not reported: {}",
        report.summary()
    );
    assert!(report.has_deadlock(), "{}", report.summary());
    assert!(!report.has_race(), "{}", report.summary());
}

#[test]
fn consistent_lock_order_passes_clean() {
    let report = check("lock-order-fixed", || {
        let shard = Arc::new(Mutex::named("plan-shard", 1u64));
        let quarantine = Arc::new(Mutex::named("quarantine", 2u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shard);
                let q = Arc::clone(&quarantine);
                thread::spawn(move || {
                    // Fixed: everyone locks shard before quarantine.
                    let a = s.lock();
                    let b = q.lock();
                    *a + *b
                })
            })
            .collect();
        let mut sum = 0;
        for h in handles {
            sum += h.join().expect("worker");
        }
        sum
    });
    assert!(report.lock_cycles.is_empty(), "{}", report.summary());
    assert_eq!(report.outcomes, vec![6], "{}", report.summary());
    report.assert_clean();
}

// ---------------------------------------------------------------------
// Mutant 3: torn counter (plain shared cell written without a lock).
// Both threads write the same value, so the outcome set is a single
// value — only the vector-clock race analysis can see the bug.
// ---------------------------------------------------------------------

#[test]
fn torn_counter_mutant_caught_by_race_analysis() {
    static CELL: RaceCell<u64> = RaceCell::new("stats-counter", 0);
    let report = check("torn-counter-mutant", || {
        CELL.set(0);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                thread::spawn(|| {
                    // Mutant: unsynchronised write to a plain cell.
                    CELL.set(11);
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        11
    });
    assert!(report.has_race(), "{}", report.summary());
    assert!(!report.has_deadlock(), "{}", report.summary());
    assert!(report.deterministic(), "{}", report.summary());
}

#[test]
fn guarded_counter_passes_clean() {
    static CELL: RaceCell<u64> = RaceCell::new("stats-counter-guarded", 0);
    static GUARD: Mutex<()> = Mutex::named("stats-guard", ());
    let report = check("torn-counter-fixed", || {
        {
            let _g = GUARD.lock();
            CELL.set(0);
        }
        let handles: Vec<_> = (0..2)
            .map(|_| {
                thread::spawn(|| {
                    let _g = GUARD.lock();
                    CELL.set(11);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let _g = GUARD.lock();
        CELL.get()
    });
    assert_eq!(report.outcomes, vec![11], "{}", report.summary());
    report.assert_clean();
}

// ---------------------------------------------------------------------
// Scheduler sanity: exploration actually visits multiple schedules and
// the preemption bound keeps it finite.
// ---------------------------------------------------------------------

#[test]
fn explorer_visits_multiple_schedules() {
    let report = check("exploration-breadth", || {
        let m = Arc::new(Mutex::named("breadth", 0u64));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    *m.lock() += i + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let v = m.lock();
        *v
    });
    assert!(report.schedules > 1, "{}", report.summary());
    assert_eq!(report.outcomes, vec![6], "{}", report.summary());
    report.assert_clean();
}

#[test]
fn preemption_bound_caps_exploration() {
    let narrow = hc_check::check_with(
        "bound-narrow",
        Options {
            preemption_bound: 0,
            ..Options::default()
        },
        counter_pair,
    );
    let wide = hc_check::check_with(
        "bound-wide",
        Options {
            preemption_bound: 2,
            ..Options::default()
        },
        counter_pair,
    );
    assert!(
        narrow.schedules <= wide.schedules,
        "narrow {} > wide {}",
        narrow.summary(),
        wide.summary()
    );
    narrow.assert_clean();
    wide.assert_clean();
}

fn counter_pair() -> u64 {
    let count = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&count);
            thread::spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
                c.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    count.load(Ordering::SeqCst)
}
