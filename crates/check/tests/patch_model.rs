//! Model-checking the stale-swap protocol: [`SharedPlanCache::swap_patched`]
//! racing concurrent lookups and quarantines. The bounded scheduler
//! explores the interleavings and asserts no race, no deadlock, no lost
//! update — after a swap completes, the patched structure is resident
//! exactly once (or barred, never both) and the superseded plan is
//! retired under every schedule — and that both paths keep the lock-order
//! graph consistent (`plan-shard → quarantine-registry`, acyclic).
//!
//! Runs only under `RUSTFLAGS="--cfg hc_check"` with
//! `--test-threads=1` (the model scheduler is process-global). Graphs
//! are tiny and the worker pool is pinned to one thread so the explored
//! state space stays small: the concurrency under test is the cache's,
//! not the kernels'.
#![cfg(hc_check)]

use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Csr, DeltaCsr, StructureFingerprint};
use hc_check::{check_with, Options};
use hc_core::PlanSpec;
use hc_parallel::sync::thread;
use hc_serve::{SharedPlanCache, SwapOutcome};

fn opts() -> Options {
    Options {
        preemption_bound: 2,
        max_schedules: 2048,
        max_steps: 20_000,
        // Racing lookups legitimately vary hit/stale counts between
        // schedules; the final-state invariants asserted per-test hold
        // under every interleaving.
        expect_deterministic: false,
        ..Options::default()
    }
}

/// A tiny graph plus a one-edge churn delta against it.
fn churn_pair() -> (Csr, DeltaCsr) {
    let g = gen::erdos_renyi(24, 60, 7);
    let (dr, dc) = (0..g.nrows)
        .find_map(|r| g.row_cols(r).first().map(|&c| (r as u32, c)))
        .expect("generated graph has edges");
    let delta = DeltaCsr::new(g.nrows, g.ncols, vec![], vec![(dr, dc)])
        .expect("deleting an existing edge is valid");
    (g, delta)
}

/// `swap_patched` racing a lookup on the *mutated* structure: both sides
/// may insert for the new fingerprint, first insert wins, and under no
/// interleaving is the update lost — after both threads complete the
/// patched structure is resident exactly once and the superseded plan is
/// gone.
#[test]
fn swap_racing_lookup_never_loses_the_update() {
    hc_parallel::set_threads(1);
    let dev = DeviceSpec::rtx3090();
    let (g, delta) = churn_pair();
    let mutated = delta.apply(&g).expect("valid delta");
    let old_fp = StructureFingerprint::of(&g);
    let new_fp = StructureFingerprint::of(&mutated);
    let report = check_with("patch-swap-racing-lookup", opts(), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let (resident, _) = cache.get_or_prepare(&g, &dev);
        cache.mark_stale(old_fp);
        let patched = Arc::new(
            resident
                .patch(&g, &delta, &dev)
                .expect("valid delta patches"),
        );
        let swapper = {
            let cache = Arc::clone(&cache);
            let patched = Arc::clone(&patched);
            thread::spawn(move || cache.swap_patched(old_fp, patched))
        };
        let looker = {
            let cache = Arc::clone(&cache);
            let mutated = mutated.clone();
            let dev = dev.clone();
            thread::spawn(move || {
                let l = cache.lookup(&mutated, &dev);
                assert_eq!(l.plan.fingerprint, new_fp);
                u64::from(l.hit)
            })
        };
        let outcome = swapper.join().expect("swapper thread");
        let hit = looker.join().expect("looker thread");
        assert_eq!(outcome, SwapOutcome::Swapped, "nothing was quarantined");
        // No lost update: the mutated structure is resident exactly once
        // and the stale plan is retired, whoever inserted first.
        assert!(cache.peek(new_fp).is_some(), "patched structure resident");
        assert!(cache.peek(old_fp).is_none(), "superseded plan retired");
        assert_eq!(cache.len(), 1);
        let s = cache.stats();
        assert_eq!(s.swaps, 1);
        // Encode the (legitimately schedule-dependent) lookup result so
        // the explorer proves both orders exist: the lookup either hit
        // the freshly swapped plan or missed-and-prepared ahead of it.
        hit
    });
    report.assert_clean();
    assert!(report.schedules > 1, "{}", report.summary());
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order graph must be acyclic: {}",
        report.summary()
    );
}

/// `swap_patched` racing a quarantine of the *patched* fingerprint. In
/// either order the bar wins: after both complete the patched structure
/// is quarantined and not resident — a quarantined fingerprint is never
/// re-served across a swap.
#[test]
fn quarantine_racing_swap_keeps_the_lineage_barred() {
    hc_parallel::set_threads(1);
    let dev = DeviceSpec::rtx3090();
    let (g, delta) = churn_pair();
    let mutated = delta.apply(&g).expect("valid delta");
    let old_fp = StructureFingerprint::of(&g);
    let new_fp = StructureFingerprint::of(&mutated);
    let report = check_with("patch-swap-racing-quarantine", opts(), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let (resident, _) = cache.get_or_prepare(&g, &dev);
        cache.mark_stale(old_fp);
        let patched = Arc::new(
            resident
                .patch(&g, &delta, &dev)
                .expect("valid delta patches"),
        );
        let swapper = {
            let cache = Arc::clone(&cache);
            let patched = Arc::clone(&patched);
            thread::spawn(move || cache.swap_patched(old_fp, patched))
        };
        let reaper = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.quarantine(new_fp))
        };
        let outcome = swapper.join().expect("swapper thread");
        let _evicted = reaper.join().expect("reaper thread");
        // Deterministic final state under every schedule: barred, not
        // resident, old plan retired.
        assert!(cache.is_quarantined(new_fp));
        assert!(cache.peek(new_fp).is_none(), "barred fp never resident");
        assert!(cache.peek(old_fp).is_none(), "superseded plan retired");
        assert_eq!(cache.len(), 0);
        // Which side won is schedule-dependent (quarantine-first refuses
        // the swap, swap-first is evicted by the reaper); encoding it
        // proves both orders are explored.
        u64::from(outcome == SwapOutcome::Quarantined)
    });
    report.assert_clean();
    assert!(report.schedules > 1, "{}", report.summary());
    assert!(
        report
            .lock_edges
            .iter()
            .any(|e| e.from == "plan-shard" && e.to == "quarantine-registry"),
        "expected shard→registry acquisition edge: {}",
        report.summary()
    );
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order graph must be acyclic: {}",
        report.summary()
    );
}

/// `swap_patched` racing a stale lookup on the *old* structure: the
/// request is served under every interleaving — by the stale resident
/// plan if it wins the race, by a fresh prepare if the swap already
/// retired it — and the final cache state is the same either way.
#[test]
fn stale_lookup_racing_swap_is_always_served() {
    hc_parallel::set_threads(1);
    let dev = DeviceSpec::rtx3090();
    let (g, delta) = churn_pair();
    let mutated = delta.apply(&g).expect("valid delta");
    let old_fp = StructureFingerprint::of(&g);
    let new_fp = StructureFingerprint::of(&mutated);
    let report = check_with("patch-swap-racing-stale-lookup", opts(), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let (resident, _) = cache.get_or_prepare(&g, &dev);
        cache.mark_stale(old_fp);
        let patched = Arc::new(
            resident
                .patch(&g, &delta, &dev)
                .expect("valid delta patches"),
        );
        let swapper = {
            let cache = Arc::clone(&cache);
            let patched = Arc::clone(&patched);
            thread::spawn(move || cache.swap_patched(old_fp, patched))
        };
        let looker = {
            let cache = Arc::clone(&cache);
            let g = g.clone();
            let dev = dev.clone();
            thread::spawn(move || {
                let l = cache.lookup(&g, &dev);
                assert_eq!(l.plan.fingerprint, old_fp, "served the requested structure");
                assert_eq!(l.hit, l.stale, "a hit on the old structure is a stale hit");
                u64::from(l.stale)
            })
        };
        let outcome = swapper.join().expect("swapper thread");
        let stale = looker.join().expect("looker thread");
        assert_eq!(outcome, SwapOutcome::Swapped);
        assert!(cache.peek(new_fp).is_some());
        // The late lookup may have re-admitted a fresh plan for the old
        // structure after the swap retired it — legal (the structure is
        // not barred, a straggler request may still carry it) — or the
        // swap retired it for good. Either way the patched plan stands.
        let s = cache.stats();
        assert_eq!(s.swaps, 1);
        assert!(s.stale_hits <= 1);
        // Schedule-dependent: served stale by the old resident, or
        // missed after retirement.
        stale
    });
    report.assert_clean();
    assert!(report.schedules > 1, "{}", report.summary());
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order graph must be acyclic: {}",
        report.summary()
    );
}
