//! Model-checking the serving front-end: the bounded scheduler explores
//! the interleavings of (a) the facade bounded channel the front feeds
//! its workers with — producers racing a consumer, typed overflow under
//! race — and (b) the front pipeline itself: an end-to-end `run_trace`
//! at two workers, and an admission+drain run racing a quarantine on
//! the shared cache. Every test asserts no race, no deadlock, no panic,
//! and an acyclic lock-order graph (front classes never invert
//! `plan-shard → quarantine-registry`).
//!
//! Runs only under `RUSTFLAGS="--cfg hc_check"` with
//! `--test-threads=1` (the model scheduler is process-global). Graphs
//! are tiny and the worker pool is pinned to one thread so the explored
//! state space stays small: the concurrency under test is the front's,
//! not the pool's.
#![cfg(hc_check)]

use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Csr, DenseMatrix, StructureFingerprint};
use hc_check::{check_with, Options};
use hc_core::PlanSpec;
use hc_parallel::sync::channel::{Bounded, TrySendError};
use hc_parallel::sync::thread;
use hc_serve::{Front, FrontConfig, FrontRequest, Request, SharedPlanCache, TenantId};

fn tiny_graphs(n: usize) -> Vec<Csr> {
    (0..n)
        .map(|i| gen::erdos_renyi(24, 60, 40 + i as u64))
        .collect()
}

fn tiny_trace(gs: &[Csr], picks: &[usize]) -> Vec<FrontRequest> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &g)| FrontRequest {
            tenant: TenantId((i % 2) as u32),
            request: Request {
                graph: Arc::new(gs[g].clone()),
                features: DenseMatrix::random_features(gs[g].ncols, 4, i as u64),
            },
        })
        .collect()
}

fn opts(max_schedules: usize) -> Options {
    Options {
        preemption_bound: 2,
        max_schedules,
        max_steps: 40_000,
        // Receive/serve order legitimately varies between schedules;
        // the deterministic *report* is asserted inside each run.
        expect_deterministic: false,
        ..Options::default()
    }
}

/// Two producers race one consumer through a capacity-1 channel: every
/// item is delivered exactly once, the consumer drains after close, and
/// no interleaving deadlocks the blocking send/recv handshake.
#[test]
fn channel_producers_vs_consumer_deliver_exactly_once() {
    hc_parallel::set_threads(1);
    let report = check_with("front-channel-mpmc", opts(4096), || {
        let ch = Arc::new(Bounded::new(1, "front-queue"));
        let consumer = {
            let ch = Arc::clone(&ch);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = ch.recv() {
                    got.push(v);
                }
                got
            })
        };
        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let ch = Arc::clone(&ch);
                thread::spawn(move || {
                    for i in 0..2u64 {
                        ch.send(10 * p + i).expect("channel is open");
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().expect("producer thread");
        }
        ch.close();
        let mut got = consumer.join().expect("consumer thread");
        // Exactly-once delivery under every interleaving.
        let order: u64 = got.iter().fold(0, |acc, v| acc * 100 + v + 1);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 10, 11]);
        // Encode the delivery order into the outcome so the explorer
        // proves multiple interleavings exist.
        order
    });
    report.assert_clean();
    assert!(report.schedules > 1, "{}", report.summary());
}

/// Two racing `try_send`s on a full-able channel: overflow is a typed
/// `Full` handing the value back — never a panic, never a lost or
/// duplicated item.
#[test]
fn channel_overflow_is_typed_under_race() {
    hc_parallel::set_threads(1);
    let report = check_with("front-channel-overflow", opts(2048), || {
        let ch = Arc::new(Bounded::new(1, "front-queue"));
        let senders: Vec<_> = (0..2u64)
            .map(|v| {
                let ch = Arc::clone(&ch);
                thread::spawn(move || match ch.try_send(v) {
                    Ok(()) => None,
                    Err(TrySendError::Full(rejected)) => Some(rejected),
                    Err(TrySendError::Closed(_)) => unreachable!("never closed while sending"),
                })
            })
            .collect();
        let rejected: Vec<u64> = senders
            .into_iter()
            .filter_map(|h| h.join().expect("sender thread"))
            .collect();
        ch.close();
        let queued = ch.try_recv().expect("exactly one send won the slot");
        assert_eq!(ch.try_recv(), None);
        // One value landed, the other came back typed: together they are
        // {0, 1} in every interleaving.
        assert_eq!(rejected.len(), 1);
        assert_eq!(queued + rejected[0], 1);
        queued
    });
    report.assert_clean();
    assert!(report.schedules > 1, "{}", report.summary());
}

/// End-to-end `run_trace` at two workers under the model: admission,
/// cohorting, channel dispatch, parallel cohort execution and collection
/// are clean under every explored interleaving, and the deterministic
/// report is schedule-independent.
#[test]
fn front_trace_is_clean_at_two_workers() {
    hc_parallel::set_threads(1);
    let gs = tiny_graphs(2);
    let dev = DeviceSpec::rtx3090();
    let trace = tiny_trace(&gs, &[0, 1, 0]);
    let report = check_with("front-run-trace", opts(1024), || {
        let front = Front::new(
            u64::MAX / 4,
            PlanSpec::hybrid(),
            2,
            FrontConfig {
                workers: 2,
                max_cohort: 2,
                ..Default::default()
            },
        );
        let rep = front.run_trace(&trace, &dev);
        let c = rep.counters;
        assert_eq!(c.submitted, 3);
        assert_eq!(c.admitted, 3);
        assert_eq!(c.completed, 3);
        assert_eq!((c.ok, c.degraded, c.failed), (3, 0, 0));
        assert_eq!(c.cohorts, 2);
        assert_eq!(c.cohorted_requests, 2);
        assert_eq!(rep.cache.misses, 2, "one resolution per structure");
        // The report must not depend on which worker ran which cohort.
        assert_eq!(rep.responses[0].cohort, Some(0));
        assert_eq!(rep.responses[1].cohort, Some(1));
        assert_eq!(rep.responses[2].cohort, Some(0));
        (c.cohorts << 8) | c.completed
    });
    report.assert_clean();
    assert!(report.deterministic(), "{}", report.summary());
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order graph must be acyclic: {}",
        report.summary()
    );
    // The front's own lock classes never precede the cache's in an
    // inverted order: no edge out of a front class into `plan-shard` may
    // close a cycle, and the cache's internal order is intact.
    assert!(
        report
            .lock_edges
            .iter()
            .all(|e| !(e.from.starts_with("front-") && e.to == "front-queue")),
        "front-results must not nest inside front-queue: {}",
        report.summary()
    );
}

/// An admission+drain run races a quarantine on the shared cache: under
/// every interleaving the run completes every admitted request, the
/// fingerprint ends quarantined and non-resident, and the combined
/// lock-order graph (front + shard + registry) stays acyclic.
#[test]
fn admission_and_drain_racing_quarantine_are_clean() {
    hc_parallel::set_threads(1);
    let gs = tiny_graphs(1);
    let dev = DeviceSpec::rtx3090();
    let fp = StructureFingerprint::of(&gs[0]);
    let trace = tiny_trace(&gs, &[0, 0]);
    let report = check_with("front-quarantine-race", opts(1024), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let reaper = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.quarantine(fp))
        };
        let front = Front::with_cache(
            Arc::clone(&cache),
            FrontConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let rep = front.run_trace(&trace, &dev);
        reaper.join().expect("reaper thread");
        let c = rep.counters;
        assert_eq!(c.submitted, 2);
        assert_eq!(c.completed, c.admitted);
        assert_eq!((c.ok, c.failed), (2, 0), "quarantine never breaks serving");
        assert!(cache.is_quarantined(fp));
        // Whether the cohort's plan was admitted before the quarantine
        // landed (then evicted) or barred outright is schedule-dependent;
        // either way nothing may stay resident... unless the quarantine
        // ran first and the front re-admitted. Both final states are
        // legitimate; encode which one this schedule reached.
        cache.len() as u64
    });
    report.assert_clean();
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order graph must be acyclic: {}",
        report.summary()
    );
    assert!(
        report
            .lock_edges
            .iter()
            .any(|e| e.from == "plan-shard" && e.to == "quarantine-registry"),
        "expected shard→registry acquisition edge: {}",
        report.summary()
    );
}
