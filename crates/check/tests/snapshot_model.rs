//! Model-checking the snapshot collection protocol:
//! [`SharedPlanCache::collect_recoverable`] racing concurrent
//! `swap_patched` and `quarantine` calls. The collector acquires every
//! shard in ascending order and holds them while the quarantine registry
//! is read, so the bounded scheduler must find that under every
//! interleaving the collected state is never torn — no fingerprint is
//! observed both resident and quarantined, a lineage mid-swap is
//! observed with at least one of its fingerprints resident (the admit
//! and the retire are separate shard sections, so *both* resident is a
//! legal transient; *neither* is not) — and that holding all shards
//! keeps the lock-order graph acyclic against the global
//! `plan-shard → quarantine-registry` discipline.
//!
//! Runs only under `RUSTFLAGS="--cfg hc_check"` with
//! `--test-threads=1` (the model scheduler is process-global).
#![cfg(hc_check)]

use std::sync::Arc;

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, Csr, DeltaCsr, StructureFingerprint};
use hc_check::{check_with, Options};
use hc_core::PlanSpec;
use hc_parallel::sync::thread;
use hc_serve::{SharedPlanCache, SwapOutcome};

fn opts() -> Options {
    Options {
        preemption_bound: 2,
        max_schedules: 2048,
        max_steps: 20_000,
        // What the collector observes mid-race legitimately varies by
        // schedule; the no-torn-state invariants hold under all of them.
        expect_deterministic: false,
        ..Options::default()
    }
}

/// A tiny graph plus a one-edge churn delta against it.
fn churn_pair() -> (Csr, DeltaCsr) {
    let g = gen::erdos_renyi(24, 60, 7);
    let (dr, dc) = (0..g.nrows)
        .find_map(|r| g.row_cols(r).first().map(|&c| (r as u32, c)))
        .expect("generated graph has edges");
    let delta = DeltaCsr::new(g.nrows, g.ncols, vec![], vec![(dr, dc)])
        .expect("deleting an existing edge is valid");
    (g, delta)
}

/// `collect_recoverable` racing `swap_patched`: the snapshot is taken
/// strictly before, strictly after, or between the swap's two shard
/// sections — so it holds the old plan, the new plan, or transiently
/// both, but never neither and never a quarantined entry.
#[test]
fn snapshot_racing_swap_is_never_torn() {
    hc_parallel::set_threads(1);
    let dev = DeviceSpec::rtx3090();
    let (g, delta) = churn_pair();
    let mutated = delta.apply(&g).expect("valid delta");
    let old_fp = StructureFingerprint::of(&g);
    let new_fp = StructureFingerprint::of(&mutated);
    let report = check_with("snapshot-racing-swap", opts(), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let (resident, _) = cache.get_or_prepare(&g, &dev);
        cache.mark_stale(old_fp);
        let patched = Arc::new(
            resident
                .patch(&g, &delta, &dev)
                .expect("valid delta patches"),
        );
        let swapper = {
            let cache = Arc::clone(&cache);
            let patched = Arc::clone(&patched);
            thread::spawn(move || cache.swap_patched(old_fp, patched))
        };
        let collector = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.collect_recoverable())
        };
        let outcome = swapper.join().expect("swapper thread");
        let (residency, quarantine) = collector.join().expect("collector thread");
        assert_eq!(outcome, SwapOutcome::Swapped, "nothing was quarantined");
        assert!(quarantine.is_empty(), "no bar was ever placed");
        let flat: Vec<StructureFingerprint> = residency.into_iter().flatten().collect();
        let saw_old = flat.contains(&old_fp);
        let saw_new = flat.contains(&new_fp);
        assert!(
            saw_old || saw_new,
            "a recoverable snapshot must always hold the lineage"
        );
        // Final state is deterministic regardless of what was collected.
        assert!(cache.peek(new_fp).is_some(), "patched structure resident");
        assert!(cache.peek(old_fp).is_none(), "superseded plan retired");
        // Encode the observation (old only / both mid-swap / new only) so
        // the explorer proves the distinct collection points exist.
        u64::from(saw_old) + 2 * u64::from(saw_new)
    });
    report.assert_clean();
    assert!(report.schedules > 1, "{}", report.summary());
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order graph must be acyclic: {}",
        report.summary()
    );
}

/// `collect_recoverable` racing `quarantine` of a resident structure:
/// the bar registers and evicts under one shard section, and the
/// collector holds every shard while reading the registry — so under no
/// interleaving does the snapshot carry the fingerprint both resident
/// and quarantined.
#[test]
fn snapshot_racing_quarantine_is_never_torn() {
    hc_parallel::set_threads(1);
    let dev = DeviceSpec::rtx3090();
    let (g, _) = churn_pair();
    let fp = StructureFingerprint::of(&g);
    let report = check_with("snapshot-racing-quarantine", opts(), || {
        let cache = Arc::new(SharedPlanCache::new(u64::MAX / 4, PlanSpec::hybrid(), 2));
        let _ = cache.get_or_prepare(&g, &dev);
        let reaper = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.quarantine(fp))
        };
        let collector = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.collect_recoverable())
        };
        let evicted = reaper.join().expect("reaper thread");
        let (residency, quarantine) = collector.join().expect("collector thread");
        assert!(evicted, "the structure was resident when the bar landed");
        let resident = residency.into_iter().flatten().any(|f| f == fp);
        let barred = quarantine.contains(&fp);
        assert!(
            !(resident && barred),
            "snapshot observed {fp:?} both resident and quarantined"
        );
        // Final state is deterministic: barred and evicted.
        assert!(cache.is_quarantined(fp));
        assert!(cache.peek(fp).is_none(), "barred fp never resident");
        // Schedule-dependent: collected before the bar (resident, clean
        // registry) or after it (evicted, barred).
        u64::from(barred)
    });
    report.assert_clean();
    assert!(report.schedules > 1, "{}", report.summary());
    assert!(
        report
            .lock_edges
            .iter()
            .any(|e| e.from == "plan-shard" && e.to == "quarantine-registry"),
        "expected shard→registry acquisition edge: {}",
        report.summary()
    );
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order graph must be acyclic: {}",
        report.summary()
    );
}
