//! Bounded model-checking driver over `hc_parallel::sync::model`.
//!
//! [`check`] runs a closure repeatedly, once per explored interleaving.
//! Each run replays a schedule prefix recorded from earlier runs and
//! extends it with the scheduler's default policy (run-to-completion);
//! afterwards the run's decision trace is folded into a DFS stack whose
//! frames remember which alternative choices remain. Exploration is
//! bounded by a **preemption bound** (schedules that switch away from a
//! still-enabled thread more than `preemption_bound` times are skipped —
//! the classic CHESS result is that almost all real concurrency bugs
//! manifest within 2 preemptions) and pruned by **canonical-prefix
//! hashing**: adjacent steps of different threads touching different
//! objects commute, so prefixes are bubble-sorted into a canonical order
//! and a prefix whose canonical hash was already visited is not explored
//! again.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use hc_parallel::sync::model::{
    self, LockEdge, Model, ModelAbort, OpKind, OpSig, StepRec, Violation,
};

/// Exploration limits and expectations for one [`check`] session.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum number of preemptive context switches per schedule
    /// (switching away from a still-enabled thread).
    pub preemption_bound: usize,
    /// Hard cap on explored schedules; exceeding it sets
    /// [`Report::truncated`] rather than failing.
    pub max_schedules: usize,
    /// Per-run step budget (livelock guard).
    pub max_steps: usize,
    /// When true (the default), observing more than one outcome value
    /// across completed runs is reported as a violation — the signature
    /// of a lost update.
    pub expect_deterministic: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: 2,
            max_schedules: 4096,
            max_steps: 20_000,
            expect_deterministic: true,
        }
    }
}

/// Result of exploring a closure's interleavings.
#[derive(Debug)]
pub struct Report {
    /// Label passed to [`check`].
    pub name: String,
    /// Number of schedules actually run.
    pub schedules: usize,
    /// Schedules skipped because their canonical prefix was already
    /// visited (commuting interleavings).
    pub pruned: usize,
    /// Whether exploration stopped at `max_schedules`.
    pub truncated: bool,
    /// Distinct outcome values of completed (non-aborted) runs, sorted.
    pub outcomes: Vec<u64>,
    /// All violations found, deduplicated by message.
    pub violations: Vec<Violation>,
    /// Accumulated lock-order acquisition edges (by lock class).
    pub lock_edges: Vec<LockEdge>,
    /// Cycles in the lock-order graph (each a closed name path);
    /// non-empty means a potential deadlock by inconsistent ordering.
    pub lock_cycles: Vec<Vec<&'static str>>,
}

impl Report {
    /// All completed runs produced at most one outcome value.
    pub fn deterministic(&self) -> bool {
        self.outcomes.len() <= 1
    }

    /// Any data race found.
    pub fn has_race(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::Race { .. }))
    }

    /// Any deadlocked interleaving found.
    pub fn has_deadlock(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::Deadlock { .. }))
    }

    /// Any model-thread panic recorded.
    pub fn has_panic(&self) -> bool {
        self.violations
            .iter()
            .any(|v| matches!(v, Violation::Panic { .. }))
    }

    /// No violations and no lock-order cycles.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.lock_cycles.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "[{}] {} schedules ({} pruned{}), outcomes {:?}\n",
            self.name,
            self.schedules,
            self.pruned,
            if self.truncated { ", TRUNCATED" } else { "" },
            self.outcomes
        );
        for v in &self.violations {
            s.push_str(&format!("  violation: {v}\n"));
        }
        for c in &self.lock_cycles {
            s.push_str(&format!("  lock-order cycle: {}\n", c.join(" -> ")));
        }
        for e in &self.lock_edges {
            s.push_str(&format!("  edge {} -> {}: {}\n", e.from, e.to, e.detail));
        }
        s
    }

    /// Panic (with the summary) unless the report is clean.
    pub fn assert_clean(&self) {
        assert!(
            self.clean(),
            "hc-check found violations:\n{}",
            self.summary()
        );
    }
}

struct Frame {
    choice: usize,
    enabled: Vec<usize>,
    pending: Vec<(usize, OpSig)>,
    tried: Vec<usize>,
}

/// Explore `f` under the default [`Options`].
pub fn check<F>(name: &str, f: F) -> Report
where
    F: Fn() -> u64,
{
    check_with(name, Options::default(), f)
}

/// Explore `f`'s interleavings under `opts`. The closure runs once per
/// schedule; it must be restartable (runs see fresh state when they
/// allocate their shared objects inside the closure) and return an
/// outcome value summarizing the observable result.
pub fn check_with<F>(name: &str, opts: Options, f: F) -> Report
where
    F: Fn() -> u64,
{
    let model = Arc::new(Model::new());
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedule: Vec<usize> = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut outcomes: BTreeSet<u64> = BTreeSet::new();
    let mut violations: Vec<Violation> = Vec::new();
    let mut seen_msgs: HashSet<String> = HashSet::new();
    let mut schedules = 0usize;
    let mut pruned = 0usize;
    let mut truncated = false;

    // Model threads unwind with ModelAbort constantly during exploration;
    // silence the default "thread panicked" chatter for the duration.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    loop {
        model.begin_run(schedule.clone(), opts.max_steps);
        model::attach_main(&model);
        let r = catch_unwind(AssertUnwindSafe(&f));
        let panic_msg = match &r {
            Err(p) if !p.is::<ModelAbort>() => Some(describe_payload(p)),
            _ => None,
        };
        model.finish_main(panic_msg);
        model.wait_all_finished();
        model::detach_current();
        let run = model.end_run();
        schedules += 1;
        if !run.aborted {
            if let Ok(v) = r {
                outcomes.insert(v);
            }
        }
        for v in run.violations {
            push_violation(&mut violations, &mut seen_msgs, v);
        }

        // Fold the trace into the DFS stack.
        for (k, step) in run.trace.iter().enumerate() {
            if k < stack.len() {
                stack[k].choice = step.chosen;
            } else {
                stack.push(Frame {
                    choice: step.chosen,
                    enabled: step.enabled.clone(),
                    pending: step.pending.clone(),
                    tried: vec![step.chosen],
                });
            }
        }
        stack.truncate(run.trace.len());

        // Record canonical hashes of every prefix of this run.
        let steps: Vec<(usize, OpSig)> = run
            .trace
            .iter()
            .map(|s: &StepRec| (s.chosen, s.sig))
            .collect();
        for k in 0..steps.len() {
            visited.insert(canonical_hash(&steps[..=k]));
        }

        if schedules >= opts.max_schedules {
            truncated = true;
            break;
        }

        // Deepest frame with an unexplored, bound-respecting alternative.
        let mut next: Option<usize> = None;
        'depths: for depth in (0..stack.len()).rev() {
            let base = preemptions_upto(&stack, depth);
            let prev_choice = depth.checked_sub(1).map(|d| stack[d].choice);
            loop {
                let alt = {
                    let frame = &stack[depth];
                    frame
                        .enabled
                        .iter()
                        .copied()
                        .find(|a| !frame.tried.contains(a))
                };
                let Some(alt) = alt else { break };
                stack[depth].tried.push(alt);
                let extra = match prev_choice {
                    Some(p) if p != alt && stack[depth].enabled.contains(&p) => 1,
                    _ => 0,
                };
                if base + extra > opts.preemption_bound {
                    continue;
                }
                let alt_sig = stack[depth]
                    .pending
                    .iter()
                    .find(|(t, _)| *t == alt)
                    .map(|&(_, s)| s);
                if let Some(sig) = alt_sig {
                    let mut prefix: Vec<(usize, OpSig)> = stack[..depth]
                        .iter()
                        .zip(steps.iter())
                        .map(|(fr, &(_, s))| (fr.choice, s))
                        .collect();
                    // steps beyond this run's trace can't occur: stack was
                    // truncated to the trace, and prefix sigs come from the
                    // final (current) path.
                    prefix.push((alt, sig));
                    if visited.contains(&canonical_hash(&prefix)) {
                        pruned += 1;
                        continue;
                    }
                }
                schedule = stack[..depth].iter().map(|fr| fr.choice).collect();
                schedule.push(alt);
                stack.truncate(depth + 1);
                next = Some(depth);
                break 'depths;
            }
        }
        if next.is_none() {
            break;
        }
    }

    std::panic::set_hook(prev_hook);

    let outcomes: Vec<u64> = outcomes.into_iter().collect();
    if opts.expect_deterministic && outcomes.len() > 1 {
        push_violation(
            &mut violations,
            &mut seen_msgs,
            Violation::Nondeterministic {
                outcomes: outcomes.clone(),
            },
        );
    }

    let lock_edges = model.lock_edges();
    let lock_cycles = find_cycles(&lock_edges);

    Report {
        name: name.to_string(),
        schedules,
        pruned,
        truncated,
        outcomes,
        violations,
        lock_edges,
        lock_cycles,
    }
}

fn describe_payload(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

fn push_violation(out: &mut Vec<Violation>, seen: &mut HashSet<String>, v: Violation) {
    if out.len() >= 32 {
        return;
    }
    if seen.insert(v.to_string()) {
        out.push(v);
    }
}

/// Preemptions within the first `depth` scheduling decisions.
fn preemptions_upto(stack: &[Frame], depth: usize) -> usize {
    (1..depth)
        .filter(|&j| {
            let prev = stack[j - 1].choice;
            stack[j].choice != prev && stack[j].enabled.contains(&prev)
        })
        .count()
}

fn is_sync_obj_op(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::MutexLock
            | OpKind::MutexTryLock
            | OpKind::MutexUnlock
            | OpKind::RwRead
            | OpKind::RwWrite
            | OpKind::RwUnlockRead
            | OpKind::RwUnlockWrite
            | OpKind::AtomicLoad
            | OpKind::AtomicStore
            | OpKind::AtomicRmw
            | OpKind::CellRead
            | OpKind::CellWrite
    )
}

fn is_read_only(kind: OpKind) -> bool {
    matches!(kind, OpKind::AtomicLoad | OpKind::CellRead | OpKind::RwRead)
}

/// Two adjacent steps commute iff different threads touch sync objects
/// that are either distinct or only read. Thread-lifecycle and condvar
/// ops are conservatively dependent on everything.
fn independent(a: (usize, OpSig), b: (usize, OpSig)) -> bool {
    a.0 != b.0
        && is_sync_obj_op(a.1.kind)
        && is_sync_obj_op(b.1.kind)
        && a.1.obj != 0
        && b.1.obj != 0
        && (a.1.obj != b.1.obj || (is_read_only(a.1.kind) && is_read_only(b.1.kind)))
}

/// Hash of the canonical form of a step prefix: adjacent independent
/// steps are bubbled into thread-id order, so commuting interleavings
/// collapse to one hash.
fn canonical_hash(steps: &[(usize, OpSig)]) -> u64 {
    let mut seq: Vec<(usize, OpSig)> = steps.to_vec();
    loop {
        let mut changed = false;
        for i in 1..seq.len() {
            if seq[i - 1].0 > seq[i].0 && independent(seq[i - 1], seq[i]) {
                seq.swap(i - 1, i);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut h = DefaultHasher::new();
    for (tid, sig) in &seq {
        tid.hash(&mut h);
        sig.kind.hash(&mut h);
        sig.obj.hash(&mut h);
        sig.obj2.hash(&mut h);
    }
    h.finish()
}

/// Cycles in the lock-order graph, one representative path per back edge.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<&'static str>> {
    let mut adj: HashMap<&'static str, Vec<&'static str>> = HashMap::new();
    let mut nodes: Vec<&'static str> = Vec::new();
    for e in edges {
        if !nodes.contains(&e.from) {
            nodes.push(e.from);
        }
        if !nodes.contains(&e.to) {
            nodes.push(e.to);
        }
        let next = adj.entry(e.from).or_default();
        if !next.contains(&e.to) {
            next.push(e.to);
        }
    }
    let mut cycles: Vec<Vec<&'static str>> = Vec::new();
    let mut seen_sets: HashSet<Vec<&'static str>> = HashSet::new();
    for &start in &nodes {
        let mut path: Vec<&'static str> = Vec::new();
        let mut on_path: HashSet<&'static str> = HashSet::new();
        let mut done: HashSet<&'static str> = HashSet::new();
        dfs_cycles(
            start,
            &adj,
            &mut path,
            &mut on_path,
            &mut done,
            &mut cycles,
            &mut seen_sets,
        );
    }
    cycles
}

#[allow(clippy::too_many_arguments)]
fn dfs_cycles(
    node: &'static str,
    adj: &HashMap<&'static str, Vec<&'static str>>,
    path: &mut Vec<&'static str>,
    on_path: &mut HashSet<&'static str>,
    done: &mut HashSet<&'static str>,
    cycles: &mut Vec<Vec<&'static str>>,
    seen_sets: &mut HashSet<Vec<&'static str>>,
) {
    if done.contains(node) {
        return;
    }
    path.push(node);
    on_path.insert(node);
    for &next in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
        if on_path.contains(&next) {
            let from = path
                .iter()
                .position(|&n| n == next)
                .unwrap_or(path.len() - 1);
            let mut cycle: Vec<&'static str> = path[from..].to_vec();
            cycle.push(next);
            let mut key = cycle.clone();
            key.sort_unstable();
            key.dedup();
            if seen_sets.insert(key) {
                cycles.push(cycle);
            }
        } else {
            dfs_cycles(next, adj, path, on_path, done, cycles, seen_sets);
        }
    }
    on_path.remove(node);
    path.pop();
    done.insert(node);
}
