//! # hc-check — concurrency verification for the HC-SpMM workspace
//!
//! Three analyses, all hand-rolled (no crates.io), guarding the serving
//! tier's move to genuinely concurrent shared state:
//!
//! 1. **Bounded model checking** (`checker`, `--cfg hc_check` only):
//!    drives the instrumented scheduler behind `hc_parallel::sync` to
//!    exhaustively explore thread interleavings — DFS over scheduling
//!    decisions with a preemption bound and canonical-prefix state
//!    hashing — flagging data races, deadlocks, panics and
//!    non-deterministic outcomes (lost updates).
//! 2. **Lock-order analysis** (part of every checker run): acquisition
//!    edges between lock *class names* accumulate across all explored
//!    interleavings; any cycle is a potential deadlock and is reported
//!    with the acquiring thread and its held-lock stack.
//! 3. **Source lint** ([`lint`], `cargo run -p hc-check --bin lint-sync`):
//!    scans `crates/*/src` and rejects direct `std` sync/thread primitive
//!    use outside the facade, plus lock guards held across
//!    device-execution boundaries.
//!
//! The checker compiles only under `RUSTFLAGS="--cfg hc_check"` (the
//! facade routes through the model scheduler in that configuration); the
//! lint is available in every build.

#![warn(missing_docs)]

pub mod lint;

#[cfg(hc_check)]
pub mod checker;

#[cfg(hc_check)]
pub use checker::{check, check_with, Options, Report};
