//! `lint-sync` — reject raw sync primitives outside the facade.
//!
//! Scans `crates/*/src` under the workspace root (first CLI argument,
//! default `.`) and prints every violation of the two facade rules.
//!
//! Exit codes: `0` clean, `1` findings, `2` scan error (bad root, IO).

use std::path::Path;
use std::process::exit;

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let (findings, files) = match hc_check::lint::lint_tree(Path::new(&root)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint-sync: cannot scan {root}: {e}");
            exit(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("lint-sync: OK ({files} files clean)");
        exit(0);
    }
    println!(
        "lint-sync: {} finding(s) across {files} files",
        findings.len()
    );
    exit(1);
}
