//! Source-level sync lint (`lint-sync`).
//!
//! Two rules over `crates/*/src`:
//!
//! * **R1 `facade`** — direct use of `std` sync/thread primitives (or the
//!   retired `parking_lot`/`crossbeam` shims) outside the
//!   `hc_parallel::sync` facade. Only the facade may talk to the OS:
//!   that is what makes every lock and spawn visible to the model
//!   checker and the lock-order analysis. `Arc`, `Weak`, `OnceLock` and
//!   the facade-re-exported `Ordering` remain fine.
//! * **R2 `guard-across-execute`** — a lock guard bound by `let` that is
//!   still live (not dropped, still in scope) on a line that calls a
//!   device-execution boundary (`.execute*(`). Holding workspace-class
//!   locks across kernel execution is the invariant the Workspace
//!   hazard token enforces dynamically; this catches it statically.
//!
//! A line ending in the waiver comment (`lint-sync: allow`) is exempt —
//! used by tests that *deliberately* hold a guard across a boundary to
//! prove the dynamic assert fires. The facade directory
//! (`crates/parallel/src/sync/`) is excluded wholesale: it is the one
//! legitimate user of the raw primitives.
//!
//! All patterns are assembled at runtime from fragments so this file
//! does not flag itself.

use std::fmt;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in (workspace-relative where possible).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`facade` or `guard-across-execute`).
    pub rule: &'static str,
    /// What was matched and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

fn std_sync() -> String {
    format!("std::{}::", "sync")
}

fn std_thread() -> String {
    format!("std::{}::", "thread")
}

/// Leaf names of `std::sync` that must go through the facade.
const SYNC_LEAVES: [&str; 6] = ["Mutex", "RwLock", "Condvar", "Barrier", "mpsc", "atomic"];

/// Leaf names of `std::thread` that must go through the facade.
const THREAD_LEAVES: [&str; 7] = [
    "spawn",
    "scope",
    "Builder",
    "park",
    "available_parallelism",
    "yield_now",
    "JoinHandle",
];

fn waiver() -> String {
    format!("lint-{}: {}", "sync", "allow")
}

/// Device-execution boundary call patterns for R2.
fn execute_needles() -> Vec<String> {
    [
        "execute",
        "execute_as",
        "execute_layout",
        "execute_concurrent",
        "execute_sequence",
    ]
    .iter()
    .map(|n| format!(".{n}("))
    .collect()
}

/// Strip `//` line comments and (possibly nested) `/* */` block comments,
/// preserving line structure so findings keep their line numbers. String
/// literal contents are left intact (patterns are composed at runtime in
/// the one file that talks about them).
fn strip_comments(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut block_depth = 0usize;
    let mut in_line_comment = false;
    let mut in_str = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = if i + 1 < bytes.len() {
            Some(bytes[i + 1] as char)
        } else {
            None
        };
        if in_line_comment {
            if c == '\n' {
                in_line_comment = false;
                out.push('\n');
            }
            i += 1;
            continue;
        }
        if block_depth > 0 {
            if c == '*' && next == Some('/') {
                block_depth -= 1;
                i += 2;
                continue;
            }
            if c == '/' && next == Some('*') {
                block_depth += 1;
                i += 2;
                continue;
            }
            if c == '\n' {
                out.push('\n');
            }
            i += 1;
            continue;
        }
        if in_str {
            out.push(c);
            if c == '\\' {
                if let Some(n) = next {
                    out.push(n);
                    i += 2;
                    continue;
                }
            }
            if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match (c, next) {
            ('/', Some('/')) => {
                in_line_comment = true;
                i += 2;
            }
            ('/', Some('*')) => {
                block_depth += 1;
                i += 2;
            }
            ('"', _) => {
                in_str = true;
                out.push(c);
                i += 1;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn first_ident(s: &str) -> Option<String> {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(s.len());
    if end == 0 {
        None
    } else {
        Some(s[..end].to_string())
    }
}

struct LiveGuard {
    ident: String,
    depth: i32,
    bound_line: usize,
}

/// Lint one source file (pure; `file` is only a label for findings).
pub fn lint_source(file: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stripped = strip_comments(text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let sync_prefix = std_sync();
    let thread_prefix = std_thread();
    let sync_group = format!("{}{{", sync_prefix);
    let thread_group = format!("{}{{", thread_prefix);
    let waive = waiver();
    let exec_needles = execute_needles();
    let lock_calls = [
        ".lock()".to_string(),
        ".read()".to_string(),
        ".write()".to_string(),
    ];

    let mut depth: i32 = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();

    for (idx, line) in stripped.lines().enumerate() {
        let lineno = idx + 1;
        let waived = raw_lines.get(idx).is_some_and(|raw| raw.contains(&waive));

        if !waived {
            // R1: fully-qualified forbidden paths.
            for leaf in SYNC_LEAVES {
                if line.contains(&format!("{sync_prefix}{leaf}")) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: lineno,
                        rule: "facade",
                        message: format!(
                            "direct {sync_prefix}{leaf} — use hc_parallel::sync::{leaf} \
                             so the model checker sees it"
                        ),
                    });
                }
            }
            for leaf in THREAD_LEAVES {
                if line.contains(&format!("{thread_prefix}{leaf}")) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: lineno,
                        rule: "facade",
                        message: format!(
                            "direct {thread_prefix}{leaf} — use hc_parallel::sync::thread"
                        ),
                    });
                }
            }
            // R1: grouped imports `use std::sync::{..}` / `use std::thread::{..}`.
            for (group, leaves) in [
                (&sync_group, &SYNC_LEAVES[..]),
                (&thread_group, &THREAD_LEAVES[..]),
            ] {
                if let Some(pos) = line.find(group.as_str()) {
                    let rest = &line[pos + group.len()..];
                    let inner = rest.split('}').next().unwrap_or(rest);
                    for leaf in leaves {
                        if inner
                            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                            .any(|tok| tok == *leaf)
                        {
                            findings.push(Finding {
                                file: file.to_string(),
                                line: lineno,
                                rule: "facade",
                                message: format!(
                                    "grouped import of {group}..{leaf}}} — use hc_parallel::sync"
                                ),
                            });
                        }
                    }
                }
            }
            // R1: retired external shims.
            for (krate, hint) in [
                (format!("parking{}", "_lot"), "hc_parallel::sync::Mutex"),
                (
                    format!("cross{}", "beam"),
                    "hc_parallel::sync::thread::scope",
                ),
            ] {
                if line
                    .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .any(|tok| tok == krate)
                {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: lineno,
                        rule: "facade",
                        message: format!("retired dependency {krate} — use {hint}"),
                    });
                }
            }
        }

        // R2 state: guard bindings, drops, execute boundaries.
        let trimmed = line.trim_start();
        let is_lock_line = lock_calls.iter().any(|c| line.contains(c.as_str()));
        let has_execute = exec_needles.iter().any(|n| line.contains(n.as_str()));

        if has_execute && !waived {
            for g in &guards {
                findings.push(Finding {
                    file: file.to_string(),
                    line: lineno,
                    rule: "guard-across-execute",
                    message: format!(
                        "device-execution call with lock guard `{}` (bound line {}) still \
                         live — release the guard before executing",
                        g.ident, g.bound_line
                    ),
                });
            }
            if is_lock_line {
                findings.push(Finding {
                    file: file.to_string(),
                    line: lineno,
                    rule: "guard-across-execute",
                    message: "lock acquired and device execution on one statement — \
                              split and release the guard first"
                        .to_string(),
                });
            }
        }

        if is_lock_line {
            if let Some(rest) = trimmed
                .strip_prefix("let mut ")
                .or_else(|| trimmed.strip_prefix("let "))
            {
                if let Some(ident) = first_ident(rest) {
                    if ident != "_" {
                        guards.push(LiveGuard {
                            ident,
                            depth,
                            bound_line: lineno,
                        });
                    }
                }
            }
        }

        // Explicit drops release guards.
        let mut scan = line;
        while let Some(pos) = scan.find("drop(") {
            let inner = &scan[pos + 5..];
            if let Some(ident) = first_ident(inner) {
                guards.retain(|g| g.ident != ident);
            }
            scan = inner;
        }

        // Scope tracking: a guard dies when its block closes.
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
    }
    findings
}

/// Recursively lint every `.rs` file under `root/crates/*/src`, skipping
/// the facade directory itself. Returns findings plus the number of
/// files scanned.
pub fn lint_tree(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no crates/ directory under {}", root.display()),
        ));
    }
    let mut findings = Vec::new();
    let mut files = 0usize;
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for krate in crate_dirs {
        let src = krate.join("src");
        if src.is_dir() {
            lint_dir(&src, root, &mut findings, &mut files)?;
        }
    }
    Ok((findings, files))
}

fn lint_dir(
    dir: &Path,
    root: &Path,
    findings: &mut Vec<Finding>,
    files: &mut usize,
) -> std::io::Result<()> {
    // The facade is the sanctioned user of raw primitives.
    let path_str = dir.to_string_lossy().replace('\\', "/");
    if path_str.ends_with("parallel/src/sync") {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            lint_dir(&path, root, findings, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path)?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            *files += 1;
            findings.extend(lint_source(&label, &text));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Forbidden patterns are composed so this test module does not trip
    // the lint on its own source.
    fn sync_path(leaf: &str) -> String {
        format!("use std::{}::{leaf};", "sync")
    }

    #[test]
    fn flags_direct_std_sync_use() {
        let src = format!("{}\nfn main() {{}}\n", sync_path("Mutex"));
        let f = lint_source("x.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "facade");
        assert_eq!(f[0].line, 1);
        // Arc and OnceLock stay allowed.
        let ok = format!("{}\n{}\n", sync_path("Arc"), sync_path("OnceLock"));
        assert!(lint_source("x.rs", &ok).is_empty());
    }

    #[test]
    fn flags_grouped_imports_and_thread_spawn() {
        let src = format!(
            "use std::{}::{{Arc, Mutex}};\nlet h = std::{}::spawn(|| 1);\n",
            "sync", "thread"
        );
        let f = lint_source("y.rs", &src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("Mutex"));
        assert!(f[1].message.contains("spawn"));
        // Grouped import of allowed leaves only: clean.
        let ok = format!("use std::{}::{{Arc, OnceLock, Weak}};\n", "sync");
        assert!(lint_source("y.rs", &ok).is_empty());
    }

    #[test]
    fn flags_retired_shims_but_not_in_comments() {
        let pl = format!("parking{}", "_lot");
        let cb = format!("cross{}", "beam");
        let src =
            format!("use {pl}::Mutex;\n// historical note: {cb}::thread::scope was used here\n");
        let f = lint_source("z.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    // ".exe" + "cute(" composed so this file's own test snippets do not
    // trip the lint when lint-sync scans the workspace.
    fn exec_line() -> String {
        format!("    dev.exe{}(&blocks);", "cute")
    }

    #[test]
    fn flags_guard_held_across_execute() {
        let e = exec_line();
        let src = format!(
            "\
fn bad(&self, dev: &DeviceSpec) {{
    let mut inner = self.inner.lock();
{e}
}}
fn good(&self, dev: &DeviceSpec) {{
    let mut inner = self.inner.lock();
    drop(inner);
{e}
}}
fn scoped(&self, dev: &DeviceSpec) {{
    {{
        let mut inner = self.inner.lock();
        inner.touch();
    }}
{e}
}}
"
        );
        let f = lint_source("w.rs", &src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "guard-across-execute");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("inner"));
    }

    #[test]
    fn waiver_comment_exempts_a_line() {
        let e = exec_line();
        let half = format!("lint-{}", "sync");
        let src = format!("let g = m.lock();\n{e} // {half}: deliberate in this test\n");
        // Waiver text is "lint-sync: allow"; the line above lacks "allow".
        let f = lint_source("v.rs", &src);
        assert_eq!(f.len(), 1);
        let src = format!("let g = m.lock();\n{e} // {}\n", super::waiver());
        assert!(lint_source("v.rs", &src).is_empty());
    }

    #[test]
    fn comment_stripping_preserves_line_numbers() {
        let import = format!("use std::{}::Condvar;", "sync");
        let src = format!("/* block\n   comment */\n{import}\n");
        let f = lint_source("u.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }
}
