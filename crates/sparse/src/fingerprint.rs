//! Deterministic structure fingerprint over a CSR matrix.
//!
//! The serving layer keys its plan cache on the *structure* of a graph —
//! dimensions, row pointers and column indices — because every plan
//! artifact (row windows, condensed columns, core choices, the LOA
//! permutation) is a pure function of structure. Values are deliberately
//! excluded: two requests whose graphs differ only in edge weights share a
//! plan, which is exactly the GNN-serving pattern (normalized adjacency
//! values change per model, connectivity does not).
//!
//! The fingerprint is a 128-bit chained hash: two independent 64-bit lanes,
//! each a SplitMix64-scrambled absorption of the structure words in a fixed
//! serial order. Serial on purpose — the digest must be identical at any
//! worker-thread count, so it never touches the `hc-parallel` pool (one
//! pass over `nnz + nrows` words is far below the pool's dispatch
//! threshold anyway).

use crate::csr::Csr;

/// 128-bit structure digest of a CSR matrix; the plan-cache key.
///
/// Equality means "same `nrows`, `ncols`, `row_ptr` and `col_idx`" up to
/// hash collisions (~2⁻¹²⁸ per pair); values play no part.
///
/// ```
/// use graph_sparse::{gen, StructureFingerprint};
///
/// let a = gen::erdos_renyi(64, 200, 1);
/// let mut b = a.clone();
/// b.vals.iter_mut().for_each(|v| *v *= 2.0); // reweight only
/// assert_eq!(StructureFingerprint::of(&a), StructureFingerprint::of(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureFingerprint {
    /// Low lane of the digest.
    pub lo: u64,
    /// High lane of the digest.
    pub hi: u64,
}

/// SplitMix64 finalizer: a bijective scramble with full avalanche, so a
/// single-bit difference in any absorbed word flips ~half the state bits.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One hash lane: chained absorption `state = splitmix(state ^ word)`.
/// Chaining makes the digest position-sensitive (moving a non-zero between
/// rows changes both `row_ptr` and the absorbed sequence).
#[derive(Clone, Copy)]
struct Lane(u64);

impl Lane {
    fn absorb(&mut self, word: u64) {
        self.0 = splitmix(self.0 ^ word);
    }
}

impl StructureFingerprint {
    /// Digest the structure of `a`. Runs serially in one O(nrows + nnz)
    /// pass; bit-identical at any thread count by construction.
    pub fn of(a: &Csr) -> StructureFingerprint {
        // Independent lane seeds (hex digits of π); the second lane also
        // absorbs each word pre-scrambled so the lanes decorrelate even on
        // adversarially structured inputs.
        let mut lo = Lane(0x2435_f6a8_885a_308d);
        let mut hi = Lane(0x1319_8a2e_0370_7344);
        let mut absorb = |word: u64| {
            lo.absorb(word);
            hi.absorb(splitmix(word));
        };
        absorb(a.nrows as u64);
        absorb(a.ncols as u64);
        for &p in &a.row_ptr {
            absorb(p as u64);
        }
        // Domain separator between the two arrays (row_ptr's length is
        // implied by nrows, but the separator keeps the encoding prefix-free
        // if the format ever grows).
        absorb(u64::MAX);
        for &c in &a.col_idx {
            absorb(c as u64);
        }
        StructureFingerprint { lo: lo.0, hi: hi.0 }
    }

    /// Fixed-width hex rendering for logs and cache listings.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen;

    #[test]
    fn values_do_not_affect_the_key() {
        let a = gen::community(256, 1_500, 8, 0.9, 1);
        let mut b = a.clone();
        for v in &mut b.vals {
            *v = v.mul_add(3.0, 1.0);
        }
        assert_eq!(StructureFingerprint::of(&a), StructureFingerprint::of(&b));
    }

    #[test]
    fn structural_edits_change_the_key() {
        let base = Coo::from_triples(32, 32, [(0, 1, 1.0), (5, 7, 1.0), (20, 3, 1.0)]).to_csr();
        let fp = StructureFingerprint::of(&base);
        // Add a non-zero.
        let added = Coo::from_triples(
            32,
            32,
            [(0, 1, 1.0), (5, 7, 1.0), (20, 3, 1.0), (9, 9, 1.0)],
        )
        .to_csr();
        assert_ne!(fp, StructureFingerprint::of(&added));
        // Move a non-zero to another column.
        let moved = Coo::from_triples(32, 32, [(0, 2, 1.0), (5, 7, 1.0), (20, 3, 1.0)]).to_csr();
        assert_ne!(fp, StructureFingerprint::of(&moved));
        // Change dimensions only.
        let wider = Coo::from_triples(32, 33, [(0, 1, 1.0), (5, 7, 1.0), (20, 3, 1.0)]).to_csr();
        assert_ne!(fp, StructureFingerprint::of(&wider));
    }

    #[test]
    fn empty_matrices_of_different_shapes_differ() {
        let a = StructureFingerprint::of(&Csr::empty(16, 16));
        let b = StructureFingerprint::of(&Csr::empty(16, 17));
        let c = StructureFingerprint::of(&Csr::empty(17, 16));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn hex_rendering_is_32_digits() {
        let fp = StructureFingerprint::of(&gen::erdos_renyi(64, 100, 2));
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
