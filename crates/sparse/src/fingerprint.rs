//! Deterministic structure fingerprint over a CSR matrix.
//!
//! The serving layer keys its plan cache on the *structure* of a graph —
//! dimensions, row pointers and column indices — because every plan
//! artifact (row windows, condensed columns, core choices, the LOA
//! permutation) is a pure function of structure. Values are deliberately
//! excluded: two requests whose graphs differ only in edge weights share a
//! plan, which is exactly the GNN-serving pattern (normalized adjacency
//! values change per model, connectivity does not).
//!
//! The fingerprint is a 128-bit chained hash: two independent 64-bit lanes,
//! each a SplitMix64-scrambled absorption of the structure words in a fixed
//! serial order. Serial on purpose — the digest must be identical at any
//! worker-thread count, so it never touches the `hc-parallel` pool (one
//! pass over `nnz + nrows` words is far below the pool's dispatch
//! threshold anyway).
//!
//! The absorption order is **row-major**: after the `(nrows, ncols)` header
//! each row contributes its `row_ptr[r + 1]` terminator followed by its
//! column indices. Row-major interleaving is what makes the digest
//! *incrementally updatable*: [`FingerprintState`] persists both lane
//! states after every row (a pair of `u64` checkpoints per row), so a
//! structural edit whose first mutated row is `d` re-absorbs only rows
//! `d..nrows` instead of the whole matrix. Rows before the first edit have
//! identical `row_ptr` prefixes and column slices by construction, so the
//! checkpoint at `d` is valid for the mutated matrix too.

use crate::csr::Csr;

/// 128-bit structure digest of a CSR matrix; the plan-cache key.
///
/// Equality means "same `nrows`, `ncols`, `row_ptr` and `col_idx`" up to
/// hash collisions (~2⁻¹²⁸ per pair); values play no part.
///
/// ```
/// use graph_sparse::{gen, StructureFingerprint};
///
/// let a = gen::erdos_renyi(64, 200, 1);
/// let mut b = a.clone();
/// b.vals.iter_mut().for_each(|v| *v *= 2.0); // reweight only
/// assert_eq!(StructureFingerprint::of(&a), StructureFingerprint::of(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureFingerprint {
    /// Low lane of the digest.
    pub lo: u64,
    /// High lane of the digest.
    pub hi: u64,
}

/// SplitMix64 finalizer: a bijective scramble with full avalanche, so a
/// single-bit difference in any absorbed word flips ~half the state bits.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Both hash lanes as one chained state. The low lane absorbs each word
/// raw, the high lane absorbs it pre-scrambled, so the lanes decorrelate
/// even on adversarially structured inputs. Chaining makes the digest
/// position-sensitive (moving a non-zero between rows changes both
/// `row_ptr` and the absorbed sequence).
#[derive(Clone, Copy, PartialEq, Eq)]
struct Lanes {
    lo: u64,
    hi: u64,
}

impl Lanes {
    /// Independent lane seeds (hex digits of π).
    const SEED: Lanes = Lanes {
        lo: 0x2435_f6a8_885a_308d,
        hi: 0x1319_8a2e_0370_7344,
    };

    fn absorb(&mut self, word: u64) {
        self.lo = splitmix(self.lo ^ word);
        self.hi = splitmix(self.hi ^ splitmix(word));
    }

    /// Absorb the `(nrows, ncols)` header.
    fn header(a: &Csr) -> Lanes {
        let mut l = Lanes::SEED;
        l.absorb(a.nrows as u64);
        l.absorb(a.ncols as u64);
        l
    }

    /// Absorb one row: its `row_ptr` terminator, then its columns. The
    /// terminator doubles as a length prefix (the previous terminator is
    /// already in the chain), keeping the stream self-delimiting.
    fn row(&mut self, a: &Csr, r: usize) {
        self.absorb(a.row_ptr[r + 1] as u64);
        let lo = a.row_ptr[r] as usize;
        let hi = a.row_ptr[r + 1] as usize;
        for &c in &a.col_idx[lo..hi] {
            self.absorb(c as u64);
        }
    }

    fn digest(self) -> StructureFingerprint {
        StructureFingerprint {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

impl StructureFingerprint {
    /// Digest the structure of `a`. Runs serially in one O(nrows + nnz)
    /// pass; bit-identical at any thread count by construction.
    pub fn of(a: &Csr) -> StructureFingerprint {
        let mut lanes = Lanes::header(a);
        for r in 0..a.nrows {
            lanes.row(a, r);
        }
        lanes.digest()
    }

    /// Fixed-width hex rendering for logs and cache listings.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// A [`StructureFingerprint`] together with the per-row lane checkpoints
/// that make it incrementally recomputable.
///
/// `checkpoints[r]` holds both lane states after absorbing the header and
/// rows `0..r`; `checkpoints[nrows]` is the finished digest. When an edit
/// batch's first mutated row is `d`, [`FingerprintState::update`] resumes
/// from `checkpoints[d]` and re-absorbs only the suffix — O(nrows − d +
/// suffix nnz) instead of O(nrows + nnz). The checkpoints cost 16 bytes
/// per row, the price of suffix recompute.
///
/// ```
/// use graph_sparse::{gen, FingerprintState, StructureFingerprint};
///
/// let a = gen::erdos_renyi(64, 200, 1);
/// let st = FingerprintState::of(&a);
/// assert_eq!(st.fingerprint(), StructureFingerprint::of(&a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintState {
    fingerprint: StructureFingerprint,
    /// Lane states after the header and each completed row; length
    /// `nrows + 1`.
    checkpoints: Vec<(u64, u64)>,
    nrows: usize,
    ncols: usize,
}

impl FingerprintState {
    /// Digest `a` and keep the per-row checkpoints for later suffix
    /// updates. Same O(nrows + nnz) pass as [`StructureFingerprint::of`],
    /// plus the checkpoint writes.
    pub fn of(a: &Csr) -> FingerprintState {
        let mut lanes = Lanes::header(a);
        let mut checkpoints = Vec::with_capacity(a.nrows + 1);
        checkpoints.push((lanes.lo, lanes.hi));
        for r in 0..a.nrows {
            lanes.row(a, r);
            checkpoints.push((lanes.lo, lanes.hi));
        }
        FingerprintState {
            fingerprint: lanes.digest(),
            checkpoints,
            nrows: a.nrows,
            ncols: a.ncols,
        }
    }

    /// The digest this state describes.
    pub fn fingerprint(&self) -> StructureFingerprint {
        self.fingerprint
    }

    /// Number of rows the checkpoints cover.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Heap bytes held by the checkpoint vector (cache accounting).
    pub fn checkpoint_bytes(&self) -> u64 {
        (self.checkpoints.len() * std::mem::size_of::<(u64, u64)>()) as u64
    }

    /// Recompute the digest for `updated`, which differs from the matrix
    /// this state was built over only in rows `>= first_dirty_row` (shape
    /// preserved). Resumes both lanes from the checkpoint before the first
    /// dirty row and re-absorbs only the suffix; rows absorbed before that
    /// checkpoint — including every `row_ptr` prefix value — are unchanged
    /// by such an edit, so their lane states still hold.
    ///
    /// Total on any input: if the shape changed or `first_dirty_row` is
    /// out of range, falls back to a full O(nrows + nnz) recompute.
    pub fn update(&self, updated: &Csr, first_dirty_row: usize) -> FingerprintState {
        if updated.nrows != self.nrows
            || updated.ncols != self.ncols
            || first_dirty_row > self.nrows
        {
            return FingerprintState::of(updated);
        }
        let (lo, hi) = self.checkpoints[first_dirty_row];
        let mut lanes = Lanes { lo, hi };
        let mut checkpoints = Vec::with_capacity(self.nrows + 1);
        checkpoints.extend_from_slice(&self.checkpoints[..=first_dirty_row]);
        for r in first_dirty_row..updated.nrows {
            lanes.row(updated, r);
            checkpoints.push((lanes.lo, lanes.hi));
        }
        FingerprintState {
            fingerprint: lanes.digest(),
            checkpoints,
            nrows: updated.nrows,
            ncols: updated.ncols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen;

    #[test]
    fn values_do_not_affect_the_key() {
        let a = gen::community(256, 1_500, 8, 0.9, 1);
        let mut b = a.clone();
        for v in &mut b.vals {
            *v = v.mul_add(3.0, 1.0);
        }
        assert_eq!(StructureFingerprint::of(&a), StructureFingerprint::of(&b));
    }

    #[test]
    fn structural_edits_change_the_key() {
        let base = Coo::from_triples(32, 32, [(0, 1, 1.0), (5, 7, 1.0), (20, 3, 1.0)]).to_csr();
        let fp = StructureFingerprint::of(&base);
        // Add a non-zero.
        let added = Coo::from_triples(
            32,
            32,
            [(0, 1, 1.0), (5, 7, 1.0), (20, 3, 1.0), (9, 9, 1.0)],
        )
        .to_csr();
        assert_ne!(fp, StructureFingerprint::of(&added));
        // Move a non-zero to another column.
        let moved = Coo::from_triples(32, 32, [(0, 2, 1.0), (5, 7, 1.0), (20, 3, 1.0)]).to_csr();
        assert_ne!(fp, StructureFingerprint::of(&moved));
        // Change dimensions only.
        let wider = Coo::from_triples(32, 33, [(0, 1, 1.0), (5, 7, 1.0), (20, 3, 1.0)]).to_csr();
        assert_ne!(fp, StructureFingerprint::of(&wider));
    }

    #[test]
    fn empty_matrices_of_different_shapes_differ() {
        let a = StructureFingerprint::of(&Csr::empty(16, 16));
        let b = StructureFingerprint::of(&Csr::empty(16, 17));
        let c = StructureFingerprint::of(&Csr::empty(17, 16));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn hex_rendering_is_32_digits() {
        let fp = StructureFingerprint::of(&gen::erdos_renyi(64, 100, 2));
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn state_matches_direct_digest_and_has_one_checkpoint_per_row() {
        let a = gen::community(300, 2_000, 10, 0.9, 3);
        let st = FingerprintState::of(&a);
        assert_eq!(st.fingerprint(), StructureFingerprint::of(&a));
        assert_eq!(st.checkpoints.len(), a.nrows + 1);
        assert_eq!(st.checkpoint_bytes(), (a.nrows as u64 + 1) * 16);
    }

    #[test]
    fn suffix_update_matches_full_recompute_at_every_resume_row() {
        let a = Coo::from_triples(
            48,
            48,
            [(2, 3, 1.0), (17, 1, 1.0), (17, 9, 1.0), (40, 40, 1.0)],
        )
        .to_csr();
        let st = FingerprintState::of(&a);
        // Edit row 17: move (17, 9) to (17, 30).
        let b = Coo::from_triples(
            48,
            48,
            [(2, 3, 1.0), (17, 1, 1.0), (17, 30, 1.0), (40, 40, 1.0)],
        )
        .to_csr();
        let full = FingerprintState::of(&b);
        // Any conservative (earlier) first-dirty-row must agree too.
        for resume in [0, 5, 17] {
            let inc = st.update(&b, resume);
            assert_eq!(inc, full, "resume at row {resume}");
        }
        assert_eq!(inc_digest(&st, &b, 17), StructureFingerprint::of(&b));
    }

    fn inc_digest(st: &FingerprintState, b: &Csr, d: usize) -> StructureFingerprint {
        st.update(b, d).fingerprint()
    }

    #[test]
    fn shape_change_falls_back_to_full_recompute() {
        let a = gen::erdos_renyi(32, 100, 4);
        let b = gen::erdos_renyi(40, 100, 4);
        let st = FingerprintState::of(&a);
        assert_eq!(st.update(&b, 0), FingerprintState::of(&b));
        // Out-of-range resume row is total as well.
        assert_eq!(st.update(&a, a.nrows + 5), FingerprintState::of(&a));
    }
}
