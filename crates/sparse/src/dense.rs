//! Row-major dense matrices (the `X`, `Z`, `W` operands).

use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// Dense row-major f32 matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, length `rows · cols`.
    pub data: Vec<f32>,
}

impl DenseMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from row slices.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix {
            rows: rows.len(),
            cols: ncols,
            data,
        }
    }

    /// Build from a generator function over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Deterministic pseudo-random features in [-1, 1] (for reproducible
    /// workloads without threading an RNG everywhere).
    pub fn random_features(rows: usize, cols: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        DenseMatrix::from_fn(rows, cols, |_, _| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            ((bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dense matrix multiply `self · other` (reference implementation; the
    /// simulated gemm kernel lives in the `gnn` crate). Output rows are
    /// computed on the `hc-parallel` pool, each accumulated in the serial
    /// k-order, so results match the serial loop bit-for-bit.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        if self.rows == 0 || other.cols == 0 {
            return out;
        }
        let work = 2 * self.rows as u64 * self.cols as u64 * other.cols as u64;
        hc_parallel::par_chunks_mut(&mut out.data, other.cols, work, |r, out_row| {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Element-wise `self + other`.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise scale.
    pub fn scale(&self, s: f32) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Apply `f` element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Max absolute difference against another matrix (test helper).
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Storage footprint in bytes.
    pub fn byte_size(&self) -> u64 {
        (self.data.len() * 4) as u64
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_index() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn matmul_small() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DenseMatrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::random_features(7, 3, 42);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn transpose_matmul_identity_property() {
        // (A·B)^T == B^T·A^T
        let a = DenseMatrix::random_features(4, 5, 1);
        let b = DenseMatrix::random_features(5, 3, 2);
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        assert!(lhs.max_abs_diff(&rhs) < 1e-5);
    }

    #[test]
    fn random_features_deterministic_and_bounded() {
        let a = DenseMatrix::random_features(10, 10, 7);
        let b = DenseMatrix::random_features(10, 10, 7);
        assert_eq!(a, b);
        assert!(a.data.iter().all(|v| (-1.0..=1.0).contains(v)));
        // Not all equal.
        assert!(a.data.iter().any(|&v| v != a.data[0]));
    }

    #[test]
    fn add_scale_map() {
        let a = DenseMatrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.add(&a).row(0), &[2.0, -4.0]);
        assert_eq!(a.scale(3.0).row(0), &[3.0, -6.0]);
        assert_eq!(a.map(f32::abs).row(0), &[1.0, 2.0]);
    }
}
