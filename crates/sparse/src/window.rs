//! Row-window partitioning with column condensing.
//!
//! HC-SpMM's hybrid unit (§IV-A) is the *row window*: 16 consecutive rows of
//! the adjacency matrix. Within a window, the non-zero columns are moved to
//! the front (TC-GNN-style condensing), so Tensor cores only traverse
//! `ceil(nnz_cols / 8)` 16×8 tiles while CUDA cores read the original CSR
//! entries directly. Both views of a window describe the same values, so no
//! result merging is needed.

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::tile::TileMeta;

/// Rows per row window, fixed by the WMMA m-dimension (§IV-A).
pub const WINDOW_ROWS: usize = 16;

/// One condensed row window. The condensed structure (distinct columns +
/// per-entry condensed indices) is held in compressed form — occupancy
/// bitmaps plus a delta-varint column stream ([`TileMeta`]) — which is the
/// canonical representation kernels and cost models consume directly; the
/// old dense `unique_cols`/`cond_idx` vectors are recoverable views, not
/// stored state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowWindow {
    /// First row of the window in the parent matrix.
    pub start_row: usize,
    /// Rows covered (equal to `WINDOW_ROWS` except possibly the last).
    pub rows: usize,
    /// Non-zero count within the window.
    pub nnz: usize,
    /// Compressed tile metadata: occupancy bitmaps + column stream.
    pub meta: TileMeta,
}

impl RowWindow {
    /// Number of non-zero columns — one of the two selection features.
    pub fn nnz_cols(&self) -> usize {
        self.meta.nnz_cols()
    }

    /// Decode the sorted distinct columns (the old `unique_cols` view).
    /// Allocates; format converters use it, hot paths walk
    /// [`TileMeta::row_cond_indices`] instead.
    pub fn unique_cols(&self) -> Vec<u32> {
        self.meta.decode_cols()
    }

    /// Bytes of the window's device-format metadata encoding — what the
    /// condense step writes back and the tensor A-conversion loads.
    pub fn meta_bytes(&self) -> usize {
        self.meta.encoded_bytes()
    }

    /// Sparsity of the condensed window: fraction of zeros inside the
    /// `rows × nnz_cols` region actually traversed by the Tensor cores —
    /// the other selection feature (§IV-B).
    pub fn sparsity(&self) -> f64 {
        let cells = self.rows * self.nnz_cols();
        if cells == 0 {
            return 1.0;
        }
        1.0 - self.nnz as f64 / cells as f64
    }

    /// Computing intensity = #nonzero elements / #nonzero columns (Eq. 5);
    /// the objective LOA maximizes.
    pub fn computing_intensity(&self) -> f64 {
        if self.nnz_cols() == 0 {
            return 0.0;
        }
        self.nnz as f64 / self.nnz_cols() as f64
    }

    /// Number of `rows × tile_k` tiles the Tensor cores traverse.
    pub fn num_tiles(&self, tile_k: usize) -> usize {
        self.nnz_cols().div_ceil(tile_k)
    }

    /// Whether the window holds no edges at all.
    pub fn is_empty(&self) -> bool {
        self.nnz == 0
    }

    /// Condense the window covering rows `[start, start + rows)` of `a`.
    /// This is the single source of truth for window construction: the
    /// full partition build and the dynamic-graph patch path (which
    /// re-condenses only windows whose rows a delta touched) both call it,
    /// so a patched window is bit-identical to a freshly built one.
    pub fn build(a: &Csr, start: usize, rows: usize) -> RowWindow {
        let lo = a.row_ptr[start] as usize;
        let hi = a.row_ptr[start + rows] as usize;

        // Distinct sorted columns of the window.
        let mut unique_cols = a.col_idx[lo..hi].to_vec();
        unique_cols.sort_unstable();
        unique_cols.dedup();

        // Compress directly: one set bit per entry at (local row, condensed
        // column via binary search) — no dense cond_idx staging vector.
        let entries = (0..rows).flat_map(|r| {
            let rlo = a.row_ptr[start + r] as usize;
            let rhi = a.row_ptr[start + r + 1] as usize;
            let cols = &unique_cols;
            a.col_idx[rlo..rhi]
                .iter()
                .map(move |c| (r, cols.binary_search(c).expect("col present")))
        });
        let meta = TileMeta::encode(rows, &unique_cols, entries);

        RowWindow {
            start_row: start,
            rows,
            nnz: hi - lo,
            meta,
        }
    }
}

/// A full partition of a CSR matrix into condensed row windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowWindowPartition {
    /// The windows, in row order.
    pub windows: Vec<RowWindow>,
    /// Rows per window used to build the partition.
    pub window_rows: usize,
}

impl RowWindowPartition {
    /// Partition `a` into windows of [`WINDOW_ROWS`] rows.
    pub fn build(a: &Csr) -> Self {
        Self::build_with_rows(a, WINDOW_ROWS)
    }

    /// Partition with a custom window height (characterization experiments
    /// use 16×32 synthetic windows). Windows are independent, so large
    /// matrices are condensed on the `hc-parallel` pool; the output is
    /// deterministic regardless of thread count (window `w` is always
    /// built from rows `[w·h, (w+1)·h)` with the same serial logic).
    pub fn build_with_rows(a: &Csr, window_rows: usize) -> Self {
        assert!(window_rows > 0);
        let n_windows = a.nrows.div_ceil(window_rows);

        let build_one = |w: usize| -> RowWindow {
            let start = w * window_rows;
            RowWindow::build(a, start, window_rows.min(a.nrows - start))
        };

        // Work hint: each entry is sorted (~log factor folded into the
        // constant) and binary-searched once.
        let work = 2 * a.nnz() as u64 + n_windows as u64;
        let windows = hc_parallel::par_map_indexed(n_windows, work, build_one);

        RowWindowPartition {
            windows,
            window_rows,
        }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when the partition covers an empty matrix.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Entry range `[lo, hi)` of window `w` in the parent CSR arrays.
    pub fn entry_range(&self, a: &Csr, w: usize) -> (usize, usize) {
        let win = &self.windows[w];
        (
            a.row_ptr[win.start_row] as usize,
            a.row_ptr[win.start_row + win.rows] as usize,
        )
    }

    /// Mean computing intensity across non-empty windows (LOA's global
    /// objective, reported by Fig. 15-style analyses).
    pub fn mean_computing_intensity(&self) -> f64 {
        let live: Vec<&RowWindow> = self.windows.iter().filter(|w| !w.is_empty()).collect();
        if live.is_empty() {
            return 0.0;
        }
        live.iter().map(|w| w.computing_intensity()).sum::<f64>() / live.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn banded(n: usize, band: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for d in 0..band {
                let c = (r + d) % n;
                coo.push(r as u32, c as u32, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn covers_all_rows() {
        let a = banded(40, 3);
        let p = RowWindowPartition::build(&a);
        assert_eq!(p.len(), 3); // 16 + 16 + 8
        assert_eq!(p.windows[2].rows, 8);
        let total_rows: usize = p.windows.iter().map(|w| w.rows).sum();
        assert_eq!(total_rows, 40);
        let total_nnz: usize = p.windows.iter().map(|w| w.nnz).sum();
        assert_eq!(total_nnz, a.nnz());
    }

    #[test]
    fn condensed_indices_point_at_right_columns() {
        let a = banded(32, 4);
        let p = RowWindowPartition::build(&a);
        for (wi, w) in p.windows.iter().enumerate() {
            let (lo, hi) = p.entry_range(&a, wi);
            let cols = w.unique_cols();
            // The row-by-row bitmap walk must reproduce the CSR entry
            // order exactly (rows ascend; columns ascend within a row).
            let cond: Vec<u32> = (0..w.rows)
                .flat_map(|r| w.meta.row_cond_indices(r))
                .collect();
            assert_eq!(cond.len(), hi - lo);
            for (e, &ci) in (lo..hi).zip(&cond) {
                assert_eq!(cols[ci as usize], a.col_idx[e]);
            }
        }
    }

    #[test]
    fn dense_window_features() {
        // A fully dense 16×16 block: sparsity 0, intensity 16.
        let mut coo = Coo::new(16, 16);
        for r in 0..16 {
            for c in 0..16 {
                coo.push(r, c, 1.0);
            }
        }
        let p = RowWindowPartition::build(&coo.to_csr());
        let w = &p.windows[0];
        assert_eq!(w.nnz_cols(), 16);
        assert_eq!(w.sparsity(), 0.0);
        assert_eq!(w.computing_intensity(), 16.0);
        assert_eq!(w.num_tiles(8), 2);
    }

    #[test]
    fn diagonal_window_features() {
        // Identity: each window has 16 nnz over 16 distinct columns.
        let p = RowWindowPartition::build(&Csr::identity(16));
        let w = &p.windows[0];
        assert_eq!(w.nnz_cols(), 16);
        assert!((w.sparsity() - (1.0 - 16.0 / 256.0)).abs() < 1e-12);
        assert_eq!(w.computing_intensity(), 1.0);
    }

    #[test]
    fn empty_window_is_degenerate() {
        let p = RowWindowPartition::build(&Csr::empty(16, 16));
        let w = &p.windows[0];
        assert!(w.is_empty());
        assert_eq!(w.sparsity(), 1.0);
        assert_eq!(w.computing_intensity(), 0.0);
        assert_eq!(w.num_tiles(8), 0);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Above the threshold the build runs threaded; the result must be
        // identical to a window-by-window sequential construction.
        let a = crate::gen::barabasi_albert(16 * 5000, 2, 9);
        let parallel = RowWindowPartition::build(&a);
        assert_eq!(parallel.len(), 5000);
        // Sequential reference via the small-path (build per 16-row slice).
        for probe in [0usize, 1, 2499, 4999] {
            let start = probe * 16;
            let rows = 16.min(a.nrows - start);
            let lo = a.row_ptr[start] as usize;
            let hi = a.row_ptr[start + rows] as usize;
            let mut cols: Vec<u32> = a.col_idx[lo..hi].to_vec();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(parallel.windows[probe].unique_cols(), cols);
            assert_eq!(parallel.windows[probe].nnz, hi - lo);
        }
    }

    #[test]
    fn custom_window_height() {
        let a = banded(64, 2);
        let p = RowWindowPartition::build_with_rows(&a, 32);
        assert_eq!(p.len(), 2);
        assert_eq!(p.windows[0].rows, 32);
    }

    #[test]
    fn condensing_shrinks_traversal() {
        // One row window touching columns {0, 1000, 2000}: condensed width 3.
        let coo = Coo::from_triples(16, 4096, [(0, 0, 1.0), (5, 1000, 1.0), (9, 2000, 1.0)]);
        let p = RowWindowPartition::build(&coo.to_csr());
        assert_eq!(p.windows[0].nnz_cols(), 3);
        assert_eq!(p.windows[0].num_tiles(8), 1);
    }
}
