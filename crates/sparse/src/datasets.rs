//! Registry of synthetic analogues for the paper's 14 datasets (Table II).
//!
//! The originals live at SNAP / TUDataset / KONECT and are not available
//! offline, so each registry entry records the real vertex/edge/dimension
//! counts plus a *structure class* capturing the property the evaluation
//! attributes to it (degree skew, community density, neighbour-ID locality).
//! [`DatasetId::load`] generates a graph of that class, scaled down by a
//! divisor (default 64×) so experiments finish at workstation speed; the
//! average degree — which controls window density — is preserved exactly.

use std::collections::HashMap;
use std::sync::Arc;

use hc_parallel::sync::Mutex;
use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::gen;

/// Default scale divisor applied to vertex and edge counts.
pub const DEFAULT_SCALE: usize = 64;

/// The 14 evaluation datasets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DatasetId {
    CS, // Citeseer
    CR, // Cora
    PM, // Pubmed
    PT, // PROTEINS
    DD,
    AZ, // Amazon
    YS, // Yeast
    OC, // OVCAR
    GH, // Github
    YH, // YeastH
    RD, // Reddit
    TT, // Twitch
    CP, // CitPatents
    DP, // Depedia
}

/// Structural class driving the generator choice (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Structure {
    /// Citation-style power-law graph with reasonable locality.
    Citation,
    /// Union of small dense molecules / protein graphs: strong communities.
    ProteinCommunity,
    /// Power-law graph whose vertex IDs are randomly scattered — the poor
    /// locality the paper blames for cuSPARSE's collapse on AZ/DP (§VI-B1).
    Scattered,
    /// Heavy-tailed social graph (Reddit/Twitch-like).
    PowerLaw,
    /// Sparse biological interaction network with moderate communities and
    /// low average degree (YS/OC/YH).
    Community,
    /// Mesh-like layout with high neighbour locality ("favorable original
    /// layout", DP in Fig. 14).
    Mesh,
    /// Molecule collection whose shipped layout is already aligned — LOA
    /// finds nothing to fix (GH in Fig. 14).
    CleanMolecules,
}

/// Static description of one dataset (real-world counts from Table II).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset.
    pub id: DatasetId,
    /// Full name as printed in Table II.
    pub name: &'static str,
    /// Real vertex count.
    pub vertices: usize,
    /// Real edge count (directed entries of the adjacency matrix).
    pub edges: usize,
    /// Feature dimension used in the evaluation.
    pub dim: usize,
    /// Structure class for the generator.
    pub structure: Structure,
}

/// A loaded (generated) dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The spec it was generated from.
    pub spec: DatasetSpec,
    /// Scale divisor used.
    pub scale: usize,
    /// Symmetric adjacency matrix (unnormalized, unit weights).
    pub adj: Csr,
}

impl DatasetId {
    /// All 14 datasets, Table II order.
    pub const ALL: [DatasetId; 14] = [
        DatasetId::CS,
        DatasetId::CR,
        DatasetId::PM,
        DatasetId::PT,
        DatasetId::DD,
        DatasetId::AZ,
        DatasetId::YS,
        DatasetId::OC,
        DatasetId::GH,
        DatasetId::YH,
        DatasetId::RD,
        DatasetId::TT,
        DatasetId::CP,
        DatasetId::DP,
    ];

    /// The 13 datasets of Fig. 10 (DP's GNN runs OOM in the paper; it is
    /// still included in SpMM comparisons).
    pub const SPMM_SET: [DatasetId; 13] = [
        DatasetId::CS,
        DatasetId::CR,
        DatasetId::PM,
        DatasetId::PT,
        DatasetId::DD,
        DatasetId::AZ,
        DatasetId::YS,
        DatasetId::OC,
        DatasetId::GH,
        DatasetId::YH,
        DatasetId::RD,
        DatasetId::TT,
        DatasetId::CP,
    ];

    /// The five large datasets used by the ablations (Tables IV–VI, XI–XV).
    pub const ABLATION_SET: [DatasetId; 5] = [
        DatasetId::YS,
        DatasetId::OC,
        DatasetId::YH,
        DatasetId::RD,
        DatasetId::TT,
    ];

    /// Two-letter code used in the paper's tables.
    pub fn code(self) -> &'static str {
        self.spec().name_code
    }

    /// Static spec for this dataset.
    pub fn spec(self) -> SpecEntry {
        REGISTRY
            .iter()
            .find(|e| e.id == self)
            .copied()
            .expect("all ids registered")
    }

    /// Load (generate) the dataset at the default 64× scale.
    pub fn load(self) -> Dataset {
        self.load_scaled(DEFAULT_SCALE)
    }

    /// Load through the process-wide cache: generation runs once per
    /// (dataset, scale) pair no matter how many threads or call sites ask.
    pub fn load_cached(self, scale: usize) -> Arc<Dataset> {
        type Cache = HashMap<(DatasetId, usize), Arc<Dataset>>;
        static CACHE: Mutex<Option<Cache>> = Mutex::named("dataset-cache", None);
        let mut guard = CACHE.lock();
        let map = guard.get_or_insert_with(HashMap::new);
        if let Some(ds) = map.get(&(self, scale)) {
            return Arc::clone(ds);
        }
        // Generation can be slow; holding the lock keeps the semantics
        // simple and generation single-flight. Callers needing concurrency
        // across *different* datasets should pre-warm sequentially.
        let ds = Arc::new(self.load_scaled(scale));
        map.insert((self, scale), Arc::clone(&ds));
        ds
    }

    /// Load at a custom scale divisor (1 = full size — slow for DP).
    pub fn load_scaled(self, scale: usize) -> Dataset {
        let e = self.spec();
        let scale = scale.max(1);
        let v = (e.vertices / scale).max(64);
        // Preserve average degree: edges scale with the vertex ratio.
        let undirected = ((e.edges / 2) as f64 * v as f64 / e.vertices as f64).round() as usize;
        let undirected = undirected.max(v / 2);
        let seed = 0x4C53_704D ^ (self as u64);
        let adj = match e.structure {
            Structure::Citation => gen::barabasi_albert(v, (undirected / v).max(1), seed),
            Structure::ProteinCommunity => {
                // Molecule collections (TUDataset): hubs + intra-molecule
                // bonds, lightly shuffled — a sizable minority of windows
                // stays hub-aligned and Tensor-suited, as the paper's Fig. 8
                // scatter shows for PT.
                let base = gen::molecules(v, undirected, seed);
                gen::local_shuffle(&base, 32, seed ^ 0x10ca1)
            }
            Structure::Scattered => {
                // Amazon-style co-purchase graphs are strongly clustered
                // (hub products with many co-purchases); what is
                // pathological about their shipped layout is the scattered
                // vertex numbering, which we apply on top.
                let base = gen::molecules(v, undirected, seed);
                gen::scatter_relabel(&base, seed ^ 0xa5a5)
            }
            Structure::PowerLaw => {
                let base = gen::social(v, undirected, seed);
                gen::local_shuffle(&base, 64, seed ^ 0x50c)
            }
            Structure::Community => {
                // Low-degree biological graphs (yeast interactions, OVCAR
                // assays): star-dominated molecules whose shipped layout
                // interleaves them — exactly the slack LOA recovers.
                let base = gen::molecules(v, undirected, seed);
                gen::local_shuffle(&base, 64, seed ^ 0xb10)
            }
            Structure::Mesh => gen::mesh_noisy(v, undirected, 0.15, seed),
            Structure::CleanMolecules => gen::molecules(v, undirected, seed),
        };
        Dataset {
            spec: DatasetSpec {
                id: self,
                name: e.name,
                vertices: e.vertices,
                edges: e.edges,
                dim: e.dim,
                structure: e.structure,
            },
            scale,
            adj,
        }
    }
}

/// Internal registry row.
#[derive(Debug, Clone, Copy)]
pub struct SpecEntry {
    /// Dataset id.
    pub id: DatasetId,
    /// Full name.
    pub name: &'static str,
    /// Two-letter code.
    pub name_code: &'static str,
    /// Real vertices.
    pub vertices: usize,
    /// Real directed edges.
    pub edges: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Structure class.
    pub structure: Structure,
}

const REGISTRY: [SpecEntry; 14] = [
    SpecEntry {
        id: DatasetId::CS,
        name: "Citeseer",
        name_code: "CS",
        vertices: 3_327,
        edges: 9_464,
        dim: 3_703,
        structure: Structure::Citation,
    },
    SpecEntry {
        id: DatasetId::CR,
        name: "Cora",
        name_code: "CR",
        vertices: 2_708,
        edges: 10_858,
        dim: 1_433,
        structure: Structure::Citation,
    },
    SpecEntry {
        id: DatasetId::PM,
        name: "Pubmed",
        name_code: "PM",
        vertices: 19_717,
        edges: 88_676,
        dim: 500,
        structure: Structure::Citation,
    },
    SpecEntry {
        id: DatasetId::PT,
        name: "PROTEINS",
        name_code: "PT",
        vertices: 43_471,
        edges: 162_088,
        dim: 29,
        structure: Structure::ProteinCommunity,
    },
    SpecEntry {
        id: DatasetId::DD,
        name: "DD",
        name_code: "DD",
        vertices: 334_925,
        edges: 1_686_092,
        dim: 89,
        structure: Structure::ProteinCommunity,
    },
    SpecEntry {
        id: DatasetId::AZ,
        name: "Amazon",
        name_code: "AZ",
        vertices: 410_236,
        edges: 3_356_824,
        dim: 96,
        structure: Structure::Scattered,
    },
    SpecEntry {
        id: DatasetId::YS,
        name: "Yeast",
        name_code: "YS",
        vertices: 1_710_902,
        edges: 3_636_546,
        dim: 74,
        structure: Structure::Community,
    },
    SpecEntry {
        id: DatasetId::OC,
        name: "OVCAR",
        name_code: "OC",
        vertices: 1_889_542,
        edges: 3_946_402,
        dim: 66,
        structure: Structure::Community,
    },
    SpecEntry {
        id: DatasetId::GH,
        name: "Github",
        name_code: "GH",
        vertices: 1_448_038,
        edges: 5_971_562,
        dim: 64,
        structure: Structure::CleanMolecules,
    },
    SpecEntry {
        id: DatasetId::YH,
        name: "YeastH",
        name_code: "YH",
        vertices: 3_138_114,
        edges: 6_487_230,
        dim: 75,
        structure: Structure::Community,
    },
    SpecEntry {
        id: DatasetId::RD,
        name: "Reddit",
        name_code: "RD",
        vertices: 4_859_280,
        edges: 10_149_830,
        dim: 96,
        structure: Structure::PowerLaw,
    },
    SpecEntry {
        id: DatasetId::TT,
        name: "Twitch",
        name_code: "TT",
        vertices: 3_771_081,
        edges: 22_011_034,
        dim: 96,
        structure: Structure::PowerLaw,
    },
    SpecEntry {
        id: DatasetId::CP,
        name: "CitPatents",
        name_code: "CP",
        vertices: 3_774_768,
        edges: 16_518_948,
        dim: 96,
        structure: Structure::Citation,
    },
    SpecEntry {
        id: DatasetId::DP,
        name: "Depedia",
        name_code: "DP",
        vertices: 18_268_981,
        edges: 172_183_984,
        dim: 96,
        structure: Structure::Mesh,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_ids() {
        for id in DatasetId::ALL {
            let e = id.spec();
            assert_eq!(e.id, id);
            assert!(e.vertices > 0 && e.edges > 0 && e.dim > 0);
        }
    }

    #[test]
    fn table2_counts_match_paper() {
        assert_eq!(DatasetId::CS.spec().vertices, 3_327);
        assert_eq!(DatasetId::RD.spec().edges, 10_149_830);
        assert_eq!(DatasetId::DP.spec().vertices, 18_268_981);
        assert_eq!(DatasetId::PT.spec().dim, 29);
    }

    #[test]
    fn load_preserves_average_degree() {
        let d = DatasetId::PM.load_scaled(32);
        let spec = DatasetId::PM.spec();
        let real_deg = spec.edges as f64 / spec.vertices as f64;
        let got_deg = d.adj.nnz() as f64 / d.adj.nrows as f64;
        assert!(
            (got_deg - real_deg).abs() / real_deg < 0.5,
            "degree drift: real {real_deg:.2}, got {got_deg:.2}"
        );
    }

    #[test]
    fn cached_load_returns_shared_instances() {
        let a = DatasetId::CR.load_cached(1024);
        let b = DatasetId::CR.load_cached(1024);
        assert!(Arc::ptr_eq(&a, &b));
        let c = DatasetId::CR.load_cached(512);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.adj, DatasetId::CR.load_scaled(1024).adj);
    }

    #[test]
    fn load_is_deterministic() {
        let a = DatasetId::CR.load_scaled(16);
        let b = DatasetId::CR.load_scaled(16);
        assert_eq!(a.adj, b.adj);
    }

    #[test]
    fn loaded_adjacency_is_symmetric() {
        for id in [DatasetId::CS, DatasetId::AZ, DatasetId::GH] {
            let d = id.load_scaled(128);
            assert_eq!(d.adj.transpose(), d.adj, "{id:?} not symmetric");
        }
    }

    #[test]
    fn scattered_dataset_has_worse_locality_than_mesh() {
        let az = DatasetId::AZ.load_scaled(256);
        let gh = DatasetId::GH.load_scaled(256);
        let spread = |g: &Csr| -> f64 {
            let mut total = 0f64;
            let mut n = 0usize;
            for r in 0..g.nrows {
                for &c in g.row_cols(r) {
                    total += (c as i64 - r as i64).abs() as f64;
                    n += 1;
                }
            }
            total / n.max(1) as f64 / g.nrows as f64
        };
        assert!(spread(&az.adj) > 4.0 * spread(&gh.adj));
    }
}
