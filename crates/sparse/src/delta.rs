//! Edge-churn batches over CSR graphs: the dynamic-graph ingestion format.
//!
//! Production graph traffic mutates: edges arrive and expire between
//! requests on the same structure. A [`DeltaCsr`] is one validated batch of
//! edge inserts and deletes against a specific CSR shape. It is the unit
//! the serving layer re-plans over — [`DeltaCsr::apply`] produces the
//! post-mutation matrix, [`DeltaCsr::first_dirty_row`] feeds the
//! suffix-only fingerprint recompute
//! ([`crate::fingerprint::FingerprintState::update`]), and
//! [`DeltaCsr::dirty_rows`] tells the planner which row windows must be
//! re-condensed.
//!
//! Every malformed batch is a typed [`DeltaError`], never a panic: dupes,
//! out-of-range endpoints, inserting an edge that already exists, deleting
//! one that does not, and shape mismatches at apply time are all errors the
//! serving layer turns into request failures.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::csr::Csr;

/// Defects a [`DeltaCsr`] batch can carry, split between construction-time
/// (list hygiene, ranges) and apply-time (disagreement with the base
/// matrix) checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaError {
    /// An edit names a row outside the declared shape.
    RowOutOfRange {
        /// The bad row.
        row: u32,
        /// Rows the delta declares.
        nrows: usize,
    },
    /// An edit names a column outside the declared shape.
    ColOutOfRange {
        /// The bad column.
        col: u32,
        /// Columns the delta declares.
        ncols: usize,
    },
    /// The same edge appears twice in the insert list.
    DuplicateInsert {
        /// Row of the repeated edge.
        row: u32,
        /// Column of the repeated edge.
        col: u32,
    },
    /// The same edge appears twice in the delete list.
    DuplicateDelete {
        /// Row of the repeated edge.
        row: u32,
        /// Column of the repeated edge.
        col: u32,
    },
    /// An edge appears in both the insert and the delete list.
    InsertAndDelete {
        /// Row of the conflicted edge.
        row: u32,
        /// Column of the conflicted edge.
        col: u32,
    },
    /// An inserted value is NaN or ±Inf.
    NonFiniteValue {
        /// Row of the bad insert.
        row: u32,
        /// Column of the bad insert.
        col: u32,
    },
    /// The base matrix's shape differs from the delta's declared shape.
    ShapeMismatch {
        /// Shape the delta was built for (rows, cols).
        expected: (usize, usize),
        /// Shape of the matrix it was applied to.
        got: (usize, usize),
    },
    /// An insert names an edge the base matrix already has.
    EdgePresent {
        /// Row of the colliding insert.
        row: u32,
        /// Column of the colliding insert.
        col: u32,
    },
    /// A delete names an edge the base matrix does not have.
    EdgeAbsent {
        /// Row of the missing edge.
        row: u32,
        /// Column of the missing edge.
        col: u32,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::RowOutOfRange { row, nrows } => {
                write!(f, "edit row {row} out of range (nrows {nrows})")
            }
            DeltaError::ColOutOfRange { col, ncols } => {
                write!(f, "edit column {col} out of range (ncols {ncols})")
            }
            DeltaError::DuplicateInsert { row, col } => {
                write!(f, "edge ({row}, {col}) inserted twice")
            }
            DeltaError::DuplicateDelete { row, col } => {
                write!(f, "edge ({row}, {col}) deleted twice")
            }
            DeltaError::InsertAndDelete { row, col } => {
                write!(f, "edge ({row}, {col}) both inserted and deleted")
            }
            DeltaError::NonFiniteValue { row, col } => {
                write!(f, "insert at ({row}, {col}) is not finite")
            }
            DeltaError::ShapeMismatch { expected, got } => write!(
                f,
                "delta built for {}x{} applied to {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            DeltaError::EdgePresent { row, col } => {
                write!(f, "insert ({row}, {col}): edge already present")
            }
            DeltaError::EdgeAbsent { row, col } => {
                write!(f, "delete ({row}, {col}): edge not present")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// One validated batch of edge inserts and deletes against a CSR of a
/// declared shape.
///
/// Construction sorts both lists row-major and rejects malformed batches
/// ([`DeltaError`]); the shape itself never changes — dynamic *vertices*
/// are out of scope, only edge churn. Presence/absence of the named edges
/// is checked against the concrete base matrix at [`DeltaCsr::apply`]
/// time, so one delta can be validated once and applied to any matrix with
/// the structure it was built for.
///
/// ```
/// use graph_sparse::{Coo, DeltaCsr};
///
/// let a = Coo::from_triples(4, 4, [(0, 1, 1.0), (2, 3, 1.0)]).to_csr();
/// let d = DeltaCsr::new(4, 4, vec![(2, 0, 5.0)], vec![(0, 1)]).unwrap();
/// let b = d.apply(&a).unwrap();
/// assert_eq!(b.nnz(), 2);
/// assert_eq!(b.row_cols(2), &[0, 3]);
/// assert_eq!(d.first_dirty_row(), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaCsr {
    nrows: usize,
    ncols: usize,
    /// `(row, col, value)` edges to add, sorted row-major.
    inserts: Vec<(u32, u32, f32)>,
    /// `(row, col)` edges to remove, sorted row-major.
    deletes: Vec<(u32, u32)>,
}

impl DeltaCsr {
    /// Build a batch for matrices of shape `nrows x ncols`, validating
    /// ranges, finiteness and edge-list hygiene. Empty batches are legal
    /// no-ops.
    pub fn new(
        nrows: usize,
        ncols: usize,
        mut inserts: Vec<(u32, u32, f32)>,
        mut deletes: Vec<(u32, u32)>,
    ) -> Result<DeltaCsr, DeltaError> {
        for &(row, col, val) in &inserts {
            check_range(row, col, nrows, ncols)?;
            if !val.is_finite() {
                return Err(DeltaError::NonFiniteValue { row, col });
            }
        }
        for &(row, col) in &deletes {
            check_range(row, col, nrows, ncols)?;
        }
        inserts.sort_unstable_by_key(|&(r, c, _)| (r, c));
        deletes.sort_unstable();
        if let Some(w) = inserts
            .windows(2)
            .find(|w| (w[0].0, w[0].1) == (w[1].0, w[1].1))
        {
            return Err(DeltaError::DuplicateInsert {
                row: w[0].0,
                col: w[0].1,
            });
        }
        if let Some(w) = deletes.windows(2).find(|w| w[0] == w[1]) {
            return Err(DeltaError::DuplicateDelete {
                row: w[0].0,
                col: w[0].1,
            });
        }
        // Both lists are sorted: a linear merge finds any edge named twice.
        let (mut i, mut j) = (0, 0);
        while i < inserts.len() && j < deletes.len() {
            let ins = (inserts[i].0, inserts[i].1);
            match ins.cmp(&deletes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    return Err(DeltaError::InsertAndDelete {
                        row: ins.0,
                        col: ins.1,
                    })
                }
            }
        }
        Ok(DeltaCsr {
            nrows,
            ncols,
            inserts,
            deletes,
        })
    }

    /// Rows of the shape this delta was built for.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the shape this delta was built for.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The insert list, sorted row-major.
    pub fn inserts(&self) -> &[(u32, u32, f32)] {
        &self.inserts
    }

    /// The delete list, sorted row-major.
    pub fn deletes(&self) -> &[(u32, u32)] {
        &self.deletes
    }

    /// Total edits in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the batch edits nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Smallest row any edit touches, or `None` for an empty batch. This
    /// is where the incremental fingerprint resumes its suffix recompute.
    pub fn first_dirty_row(&self) -> Option<usize> {
        let ins = self.inserts.first().map(|&(r, _, _)| r as usize);
        let del = self.deletes.first().map(|&(r, _)| r as usize);
        match (ins, del) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Sorted, deduplicated rows the batch touches — the planner derives
    /// its dirty row windows from this.
    pub fn dirty_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self
            .inserts
            .iter()
            .map(|&(r, _, _)| r as usize)
            .chain(self.deletes.iter().map(|&(r, _)| r as usize))
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Apply the batch to `base`, producing the post-mutation matrix.
    /// Checks that `base` has the declared shape, that every insert names
    /// an absent edge and every delete a present one; rows not named by
    /// any edit are copied verbatim, so per-row column order stays sorted.
    pub fn apply(&self, base: &Csr) -> Result<Csr, DeltaError> {
        if base.nrows != self.nrows || base.ncols != self.ncols {
            return Err(DeltaError::ShapeMismatch {
                expected: (self.nrows, self.ncols),
                got: (base.nrows, base.ncols),
            });
        }
        let new_nnz = (base.nnz() + self.inserts.len()).saturating_sub(self.deletes.len());
        let mut row_ptr = Vec::with_capacity(base.nrows + 1);
        let mut col_idx = Vec::with_capacity(new_nnz);
        let mut vals = Vec::with_capacity(new_nnz);
        row_ptr.push(0u32);
        let (mut i, mut j) = (0, 0); // cursors into inserts / deletes
        for r in 0..base.nrows {
            let cols = base.row_cols(r);
            let row_vals = base.row_vals(r);
            let ins_end = advance(&mut i, self.inserts.len(), |k| {
                self.inserts[k].0 as usize == r
            });
            let del_end = advance(&mut j, self.deletes.len(), |k| {
                self.deletes[k].0 as usize == r
            });
            let ins = &self.inserts[ins_end.0..ins_end.1];
            let del = &self.deletes[del_end.0..del_end.1];
            if ins.is_empty() && del.is_empty() {
                col_idx.extend_from_slice(cols);
                vals.extend_from_slice(row_vals);
            } else {
                merge_row(r as u32, cols, row_vals, ins, del, &mut col_idx, &mut vals)?;
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Ok(Csr {
            nrows: base.nrows,
            ncols: base.ncols,
            row_ptr,
            col_idx,
            vals,
        })
    }
}

fn check_range(row: u32, col: u32, nrows: usize, ncols: usize) -> Result<(), DeltaError> {
    if row as usize >= nrows {
        return Err(DeltaError::RowOutOfRange { row, nrows });
    }
    if col as usize >= ncols {
        return Err(DeltaError::ColOutOfRange { col, ncols });
    }
    Ok(())
}

/// Advance `cursor` while `still(k)` holds; returns the consumed range.
fn advance(cursor: &mut usize, len: usize, still: impl Fn(usize) -> bool) -> (usize, usize) {
    let start = *cursor;
    while *cursor < len && still(*cursor) {
        *cursor += 1;
    }
    (start, *cursor)
}

/// Merge one row's existing entries with its sorted inserts, dropping its
/// deletes; all three inputs are sorted by column, so one linear pass
/// keeps the output sorted and detects presence/absence violations.
fn merge_row(
    row: u32,
    cols: &[u32],
    row_vals: &[f32],
    ins: &[(u32, u32, f32)],
    del: &[(u32, u32)],
    col_idx: &mut Vec<u32>,
    vals: &mut Vec<f32>,
) -> Result<(), DeltaError> {
    let (mut e, mut i, mut d) = (0, 0, 0);
    while e < cols.len() || i < ins.len() {
        let next_ins = ins.get(i).map(|&(_, c, _)| c);
        let take_insert = match (cols.get(e), next_ins) {
            (Some(&ec), Some(ic)) => {
                if ec == ic {
                    return Err(DeltaError::EdgePresent { row, col: ic });
                }
                ic < ec
            }
            (None, Some(_)) => true,
            _ => false,
        };
        if take_insert {
            col_idx.push(ins[i].1);
            vals.push(ins[i].2);
            i += 1;
            continue;
        }
        let c = cols[e];
        if d < del.len() && del[d].1 == c {
            d += 1; // deleted: drop the entry
        } else {
            col_idx.push(c);
            vals.push(row_vals[e]);
        }
        e += 1;
    }
    if d < del.len() {
        return Err(DeltaError::EdgeAbsent { row, col: del[d].1 });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::fingerprint::StructureFingerprint;
    use crate::gen;

    fn base() -> Csr {
        Coo::from_triples(
            6,
            6,
            [
                (0, 1, 1.0),
                (0, 4, 2.0),
                (2, 2, 3.0),
                (5, 0, 4.0),
                (5, 5, 5.0),
            ],
        )
        .to_csr()
    }

    #[test]
    fn apply_inserts_and_deletes_and_stays_valid() {
        let a = base();
        let d = DeltaCsr::new(6, 6, vec![(2, 0, 9.0), (3, 3, 8.0)], vec![(0, 4), (5, 0)])
            .expect("valid batch");
        let b = d.apply(&a).expect("applies");
        b.validate().expect("result is a valid CSR");
        assert_eq!(b.nnz(), 5);
        assert_eq!(b.row_cols(0), &[1]);
        assert_eq!(b.row_cols(2), &[0, 2]);
        assert_eq!(b.row_cols(3), &[3]);
        assert_eq!(b.row_cols(5), &[5]);
        assert_eq!(d.first_dirty_row(), Some(0));
        assert_eq!(d.dirty_rows(), vec![0, 2, 3, 5]);
    }

    #[test]
    fn construction_rejects_malformed_batches() {
        assert_eq!(
            DeltaCsr::new(6, 6, vec![(6, 0, 1.0)], vec![]),
            Err(DeltaError::RowOutOfRange { row: 6, nrows: 6 })
        );
        assert_eq!(
            DeltaCsr::new(6, 6, vec![], vec![(0, 6)]),
            Err(DeltaError::ColOutOfRange { col: 6, ncols: 6 })
        );
        assert_eq!(
            DeltaCsr::new(6, 6, vec![(1, 1, 1.0), (1, 1, 2.0)], vec![]),
            Err(DeltaError::DuplicateInsert { row: 1, col: 1 })
        );
        assert_eq!(
            DeltaCsr::new(6, 6, vec![], vec![(2, 2), (2, 2)]),
            Err(DeltaError::DuplicateDelete { row: 2, col: 2 })
        );
        assert_eq!(
            DeltaCsr::new(6, 6, vec![(3, 3, 1.0)], vec![(3, 3)]),
            Err(DeltaError::InsertAndDelete { row: 3, col: 3 })
        );
        assert_eq!(
            DeltaCsr::new(6, 6, vec![(1, 1, f32::NAN)], vec![]),
            Err(DeltaError::NonFiniteValue { row: 1, col: 1 })
        );
    }

    #[test]
    fn apply_rejects_disagreements_with_the_base() {
        let a = base();
        let present = DeltaCsr::new(6, 6, vec![(0, 1, 9.0)], vec![]).expect("constructs");
        assert_eq!(
            present.apply(&a),
            Err(DeltaError::EdgePresent { row: 0, col: 1 })
        );
        let absent = DeltaCsr::new(6, 6, vec![], vec![(1, 1)]).expect("constructs");
        assert_eq!(
            absent.apply(&a),
            Err(DeltaError::EdgeAbsent { row: 1, col: 1 })
        );
        let shape = DeltaCsr::new(7, 6, vec![], vec![]).expect("constructs");
        assert_eq!(
            shape.apply(&a),
            Err(DeltaError::ShapeMismatch {
                expected: (7, 6),
                got: (6, 6)
            })
        );
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let a = gen::erdos_renyi(40, 200, 9);
        let d = DeltaCsr::new(40, 40, vec![], vec![]).expect("empty is legal");
        assert!(d.is_empty());
        assert_eq!(d.first_dirty_row(), None);
        let b = d.apply(&a).expect("applies");
        assert_eq!(StructureFingerprint::of(&a), StructureFingerprint::of(&b));
        assert_eq!(a, b);
    }
}
