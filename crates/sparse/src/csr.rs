//! Compressed Sparse Row — the working format of every kernel.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coo::Coo;
use crate::dense::DenseMatrix;

/// Structural defects [`Csr::validate`] detects.
#[derive(Debug, Clone, PartialEq)]
pub enum CsrError {
    /// `row_ptr` has the wrong length (must be `nrows + 1`).
    RowPtrLength {
        /// Actual length found.
        found: usize,
        /// Expected length.
        expected: usize,
    },
    /// `row_ptr` decreases between two rows.
    RowPtrNotMonotone {
        /// First offending row.
        row: usize,
    },
    /// `row_ptr` does not start at 0 or end at `nnz`.
    RowPtrBounds,
    /// `col_idx` and `vals` lengths disagree.
    ArrayLengthMismatch,
    /// A column index is out of range.
    ColumnOutOfRange {
        /// Entry index.
        entry: usize,
        /// The bad column.
        col: u32,
    },
    /// Columns within a row are not strictly increasing.
    UnsortedRow {
        /// The offending row.
        row: usize,
    },
    /// A stored value is NaN or infinite.
    NonFiniteValue {
        /// Entry index.
        entry: usize,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::RowPtrLength { found, expected } => {
                write!(f, "row_ptr length {found}, expected {expected}")
            }
            CsrError::RowPtrNotMonotone { row } => {
                write!(f, "row_ptr decreases at row {row}")
            }
            CsrError::RowPtrBounds => write!(f, "row_ptr must start at 0 and end at nnz"),
            CsrError::ArrayLengthMismatch => write!(f, "col_idx and vals lengths differ"),
            CsrError::ColumnOutOfRange { entry, col } => {
                write!(f, "entry {entry} has column {col} out of range")
            }
            CsrError::UnsortedRow { row } => write!(f, "row {row} has unsorted columns"),
            CsrError::NonFiniteValue { entry } => write!(f, "entry {entry} is not finite"),
        }
    }
}

impl std::error::Error for CsrError {}

/// CSR sparse matrix with f32 values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries. Length
    /// `nrows + 1`.
    pub row_ptr: Vec<u32>,
    /// Column index of each entry, sorted within a row.
    pub col_idx: Vec<u32>,
    /// Value of each entry.
    pub vals: Vec<f32>,
}

impl Csr {
    /// Empty matrix of the given shape.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n as u32).collect(),
            col_idx: (0..n as u32).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[u32] {
        let (s, e) = self.row_range(r);
        &self.col_idx[s..e]
    }

    /// Values of row `r`.
    pub fn row_vals(&self, r: usize) -> &[f32] {
        let (s, e) = self.row_range(r);
        &self.vals[s..e]
    }

    /// Entry range of row `r`.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize)
    }

    /// Degree (nnz) of row `r`.
    pub fn degree(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Overall density `nnz / (nrows·ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// Convert back to COO.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            let (s, e) = self.row_range(r);
            for i in s..e {
                coo.push(r as u32, self.col_idx[i], self.vals[i]);
            }
        }
        coo
    }

    /// Materialize as a dense row-major matrix (test/debug sizes only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            let (s, e) = self.row_range(r);
            for i in s..e {
                d[(r, self.col_idx[i] as usize)] = self.vals[i];
            }
        }
        d
    }

    /// Transpose (also serves as CSC view of the same matrix).
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0u32; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0f32; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.nrows {
            let (s, e) = self.row_range(r);
            for i in s..e {
                let c = self.col_idx[i] as usize;
                let dst = next[c] as usize;
                col_idx[dst] = r as u32;
                vals[dst] = self.vals[i];
                next[c] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Reference SpMM: `Z = self · x`, straightforward and trusted. All
    /// kernels are tested against this. Rows are computed on the
    /// `hc-parallel` pool; each output row is owned by one worker and
    /// accumulated in CSR entry order, so the result is bit-identical at
    /// any thread count.
    ///
    /// ```
    /// use graph_sparse::{Coo, DenseMatrix};
    /// let a = Coo::from_triples(2, 2, [(0, 1, 2.0)]).to_csr();
    /// let x = DenseMatrix::from_rows(&[&[1.0], &[3.0]]);
    /// assert_eq!(a.spmm_reference(&x).row(0), &[6.0]);
    /// ```
    pub fn spmm_reference(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.ncols, x.rows,
            "dimension mismatch: A is {}x{}, X is {}x{}",
            self.nrows, self.ncols, x.rows, x.cols
        );
        let mut z = DenseMatrix::zeros(self.nrows, x.cols);
        if self.nrows == 0 || x.cols == 0 {
            return z;
        }
        let work = 2 * self.nnz() as u64 * x.cols as u64;
        hc_parallel::par_chunks_mut(&mut z.data, x.cols, work, |r, out| {
            let (s, e) = self.row_range(r);
            for i in s..e {
                let v = self.vals[i];
                let xrow = x.row(self.col_idx[i] as usize);
                for (o, &xv) in out.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        });
        z
    }

    /// Row-normalized adjacency with self-loops:
    /// `Ā = D̃^{-1/2} (A + I) D̃^{-1/2}` — the GCN propagation matrix
    /// (Kipf & Welling), i.e. the paper's `Ā` in Eq. 1.
    pub fn gcn_normalize(&self) -> Csr {
        assert_eq!(self.nrows, self.ncols, "adjacency must be square");
        // A + I
        let mut coo = self.to_coo();
        for i in 0..self.nrows {
            coo.push(i as u32, i as u32, 1.0);
        }
        let a_hat = coo.to_csr();
        let deg: Vec<f32> = (0..a_hat.nrows)
            .map(|r| a_hat.row_vals(r).iter().sum())
            .collect();
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = a_hat;
        for r in 0..out.nrows {
            let (s, e) = out.row_range(r);
            for i in s..e {
                let c = out.col_idx[i] as usize;
                out.vals[i] *= inv_sqrt[r] * inv_sqrt[c];
            }
        }
        out
    }

    /// Apply a vertex permutation: row & column `i` of the result correspond
    /// to old vertex `perm[i]`. Used by the LOA layout optimizer; the
    /// permuted matrix represents the same graph relabeled.
    pub fn permute_symmetric(&self, perm: &[u32]) -> Csr {
        assert_eq!(self.nrows, self.ncols, "symmetric permutation needs square");
        assert_eq!(perm.len(), self.nrows);
        let mut inv = vec![0u32; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        let mut coo = Coo::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            let (s, e) = self.row_range(r);
            for i in s..e {
                coo.push(inv[r], inv[self.col_idx[i] as usize], self.vals[i]);
            }
        }
        coo.to_csr()
    }

    /// Check every structural invariant the kernels rely on. Run this on
    /// any externally supplied matrix (file loads, FFI) before handing it
    /// to a kernel; internally constructed matrices hold these by
    /// construction.
    pub fn validate(&self) -> Result<(), CsrError> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(CsrError::RowPtrLength {
                found: self.row_ptr.len(),
                expected: self.nrows + 1,
            });
        }
        if self.col_idx.len() != self.vals.len() {
            return Err(CsrError::ArrayLengthMismatch);
        }
        if self.row_ptr.first() != Some(&0)
            || self.row_ptr.last().copied() != Some(self.nnz() as u32)
        {
            return Err(CsrError::RowPtrBounds);
        }
        // Monotonicity and range first: the per-entry pass below indexes
        // col_idx through row_ptr, so these must hold before touching it.
        for r in 0..self.nrows {
            if self.row_ptr[r] > self.row_ptr[r + 1] {
                return Err(CsrError::RowPtrNotMonotone { row: r });
            }
            if self.row_ptr[r + 1] as usize > self.nnz() {
                return Err(CsrError::RowPtrBounds);
            }
        }
        for r in 0..self.nrows {
            let (s, e) = self.row_range(r);
            for i in s..e {
                if self.col_idx[i] as usize >= self.ncols {
                    return Err(CsrError::ColumnOutOfRange {
                        entry: i,
                        col: self.col_idx[i],
                    });
                }
                if i > s && self.col_idx[i] <= self.col_idx[i - 1] {
                    return Err(CsrError::UnsortedRow { row: r });
                }
            }
        }
        if let Some(entry) = self.vals.iter().position(|v| !v.is_finite()) {
            return Err(CsrError::NonFiniteValue { entry });
        }
        Ok(())
    }

    /// Bytes of the CSR arrays (what PCIe would carry, per §VI-B1).
    pub fn byte_size(&self) -> u64 {
        (self.row_ptr.len() * 4 + self.col_idx.len() * 4 + self.vals.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [0 3 4]
        Coo::from_triples(3, 3, [(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 2, 4.0)]).to_csr()
    }

    #[test]
    fn roundtrip_coo() {
        let c = small();
        assert_eq!(c.to_coo().to_csr(), c);
    }

    #[test]
    fn degrees_and_density() {
        let c = small();
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(1), 0);
        assert_eq!(c.degree(2), 2);
        assert!((c.density() - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let c = small();
        assert_eq!(c.transpose().transpose(), c);
    }

    #[test]
    fn transpose_matches_dense() {
        let c = small();
        let d = c.to_dense();
        let t = c.transpose().to_dense();
        for r in 0..3 {
            for col in 0..3 {
                assert_eq!(d[(r, col)], t[(col, r)]);
            }
        }
    }

    #[test]
    fn spmm_reference_matches_dense_multiply() {
        let c = small();
        let x = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let z = c.spmm_reference(&x);
        // row0 = 1*[1,2] + 2*[5,6] = [11,14]
        assert_eq!(z.row(0), &[11.0, 14.0]);
        assert_eq!(z.row(1), &[0.0, 0.0]);
        // row2 = 3*[3,4] + 4*[5,6] = [29,36]
        assert_eq!(z.row(2), &[29.0, 36.0]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let x = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let z = Csr::identity(2).spmm_reference(&x);
        assert_eq!(z, x);
    }

    #[test]
    fn gcn_normalize_rows_of_regular_graph() {
        // 2-cycle: A+I has all degrees 2 ⇒ every entry 1/2.
        let a = Coo::from_triples(2, 2, [(0, 1, 1.0), (1, 0, 1.0)]).to_csr();
        let n = a.gcn_normalize();
        for r in 0..2 {
            for &v in n.row_vals(r) {
                assert!((v - 0.5).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn permute_symmetric_preserves_structure() {
        let a =
            Coo::from_triples(3, 3, [(0, 1, 5.0), (1, 0, 5.0), (1, 2, 7.0), (2, 1, 7.0)]).to_csr();
        // Reverse the vertex order.
        let p = a.permute_symmetric(&[2, 1, 0]);
        assert_eq!(p.nnz(), a.nnz());
        // Old edge (0,1,5.0) is now (2,1,5.0).
        let d = p.to_dense();
        assert_eq!(d[(2, 1)], 5.0);
        assert_eq!(d[(1, 2)], 5.0);
        assert_eq!(d[(0, 1)], 7.0);
    }

    #[test]
    fn validate_accepts_well_formed_and_rejects_corruption() {
        let good = small();
        assert!(good.validate().is_ok());
        assert!(Csr::identity(5).validate().is_ok());
        assert!(Csr::empty(3, 3).validate().is_ok());

        // Failure injection, one defect at a time.
        let mut m = good.clone();
        m.row_ptr.pop();
        assert!(matches!(m.validate(), Err(CsrError::RowPtrLength { .. })));

        let mut m = good.clone();
        m.row_ptr[1] = 99;
        assert!(matches!(
            m.validate(),
            Err(CsrError::RowPtrNotMonotone { .. }) | Err(CsrError::RowPtrBounds)
        ));

        let mut m = good.clone();
        m.col_idx[0] = 77;
        assert!(matches!(
            m.validate(),
            Err(CsrError::ColumnOutOfRange { entry: 0, col: 77 })
        ));

        let mut m = good.clone();
        m.col_idx.swap(0, 1);
        assert!(matches!(
            m.validate(),
            Err(CsrError::UnsortedRow { row: 0 })
        ));

        let mut m = good.clone();
        m.vals[2] = f32::NAN;
        assert!(matches!(
            m.validate(),
            Err(CsrError::NonFiniteValue { entry: 2 })
        ));

        let mut m = good.clone();
        m.vals.pop();
        assert!(matches!(m.validate(), Err(CsrError::ArrayLengthMismatch)));

        let mut m = good;
        m.row_ptr[3] = 3;
        assert!(matches!(m.validate(), Err(CsrError::RowPtrBounds)));
    }

    #[test]
    fn identity_permutation_is_noop() {
        let a = small();
        // make square & symmetric-ish not needed; use identity perm
        let p: Vec<u32> = (0..3).collect();
        assert_eq!(a.permute_symmetric(&p), a);
    }
}
