//! Structural graph metrics.
//!
//! These quantify the properties the evaluation attributes to its datasets
//! — degree skew, clustering, neighbour-ID locality, and row-window shape —
//! and back the claims in `DESIGN.md` that each synthetic analogue carries
//! the structure its real counterpart is credited with.

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::window::RowWindowPartition;

/// Degree-distribution summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Arithmetic mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Maximum degree.
    pub max: usize,
    /// Fraction of isolated (degree-0) vertices.
    pub isolated: f64,
    /// Skew indicator: max / median (≫ 1 for power laws).
    pub skew: f64,
}

/// Compute degree statistics.
pub fn degree_stats(a: &Csr) -> DegreeStats {
    let mut degs: Vec<usize> = (0..a.nrows).map(|r| a.degree(r)).collect();
    degs.sort_unstable();
    let n = degs.len().max(1);
    let mean = degs.iter().sum::<usize>() as f64 / n as f64;
    let median = degs[n / 2];
    let max = degs.last().copied().unwrap_or(0);
    let isolated = degs.iter().filter(|&&d| d == 0).count() as f64 / n as f64;
    DegreeStats {
        mean,
        median,
        max,
        isolated,
        skew: max as f64 / median.max(1) as f64,
    }
}

/// Global clustering coefficient (transitivity): `3·triangles / wedges`,
/// computed exactly by sorted-neighbourhood intersection. Quadratic in
/// degree — intended for analogue-scale graphs.
pub fn clustering_coefficient(a: &Csr) -> f64 {
    assert_eq!(a.nrows, a.ncols);
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for u in 0..a.nrows {
        let nu = a.row_cols(u);
        let d = nu.len() as u64;
        wedges += d.saturating_sub(1) * d / 2;
        // Count edges among u's neighbours (each triangle seen 3×).
        for (i, &v) in nu.iter().enumerate() {
            let nv = a.row_cols(v as usize);
            for &w in &nu[i + 1..] {
                if nv.binary_search(&w).is_ok() {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        // Each triangle contributes one closed wedge per corner and was
        // counted once per corner above.
        triangles as f64 / wedges as f64
    }
}

/// Mean normalized neighbour-ID distance: `E[|col − row|] / n`. Near 0 for
/// banded/mesh layouts, ≈ ⅓ for uniformly scattered IDs — the §VI-B1
/// locality property.
pub fn locality_spread(a: &Csr) -> f64 {
    if a.nnz() == 0 || a.nrows == 0 {
        return 0.0;
    }
    let mut total = 0f64;
    for r in 0..a.nrows {
        for &c in a.row_cols(r) {
            total += (c as i64 - r as i64).unsigned_abs() as f64;
        }
    }
    total / a.nnz() as f64 / a.nrows as f64
}

/// Fraction of within-row column gaps exceeding `gap` — the far-gather
/// ratio that the cuSPARSE locality pathology keys on.
pub fn far_gather_fraction(a: &Csr, gap: u32) -> f64 {
    let mut far = 0u64;
    let mut total = 0u64;
    for r in 0..a.nrows {
        let cols = a.row_cols(r);
        for w in cols.windows(2) {
            total += 1;
            if w[1] - w[0] > gap {
                far += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        far as f64 / total as f64
    }
}

/// Row-window shape summary (the Fig. 8 axes, aggregated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Non-empty windows.
    pub windows: usize,
    /// Mean sparsity of non-empty windows.
    pub mean_sparsity: f64,
    /// Mean non-zero-column count.
    pub mean_nnz_cols: f64,
    /// Mean computing intensity (Eq. 5).
    pub mean_intensity: f64,
}

/// Summarize the row windows of a matrix.
pub fn window_stats(a: &Csr) -> WindowStats {
    let part = RowWindowPartition::build(a);
    let live: Vec<_> = part.windows.iter().filter(|w| !w.is_empty()).collect();
    let n = live.len().max(1) as f64;
    WindowStats {
        windows: live.len(),
        mean_sparsity: live.iter().map(|w| w.sparsity()).sum::<f64>() / n,
        mean_nnz_cols: live.iter().map(|w| w.nnz_cols() as f64).sum::<f64>() / n,
        mean_intensity: live.iter().map(|w| w.computing_intensity()).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::Coo;

    #[test]
    fn degree_stats_of_regular_graph() {
        let a = gen::banded(100, 3, 0);
        let s = degree_stats(&a);
        assert!((s.mean - 5.82).abs() < 0.2); // 6 minus boundary effects
        assert_eq!(s.median, 6);
        assert!(s.skew <= 1.1);
        assert_eq!(s.isolated, 0.0);
    }

    #[test]
    fn power_law_graph_is_skewed() {
        let a = gen::barabasi_albert(1000, 3, 1);
        let s = degree_stats(&a);
        assert!(s.skew > 4.0, "BA skew {:.1}", s.skew);
    }

    #[test]
    fn triangle_counts_on_known_graphs() {
        // Complete graph K4: transitivity 1.
        let mut coo = Coo::new(4, 4);
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    coo.push(u, v, 1.0);
                }
            }
        }
        assert!((clustering_coefficient(&coo.to_csr()) - 1.0).abs() < 1e-9);
        // Star graph: no triangles.
        let mut coo = Coo::new(5, 5);
        for v in 1..5u32 {
            coo.push(0, v, 1.0);
            coo.push(v, 0, 1.0);
        }
        assert_eq!(clustering_coefficient(&coo.to_csr()), 0.0);
    }

    #[test]
    fn community_graphs_cluster_more_than_random() {
        let comm = gen::community(400, 2400, 20, 0.95, 2);
        let er = gen::erdos_renyi(400, 2400, 2);
        assert!(clustering_coefficient(&comm) > 3.0 * clustering_coefficient(&er));
    }

    #[test]
    fn locality_separates_banded_from_scattered() {
        let banded = gen::banded(2048, 4, 0);
        let scattered = gen::scatter_relabel(&banded, 1);
        assert!(locality_spread(&banded) < 0.01);
        assert!(locality_spread(&scattered) > 0.2);
        assert!(far_gather_fraction(&banded, 64) < 0.05);
        // Uniformly scattered IDs over 2048 vertices: consecutive sorted
        // gaps average ~2048/9 ≫ 64.
        assert!(far_gather_fraction(&scattered, 64) > 0.5);
    }

    #[test]
    fn window_stats_consistency() {
        let a = gen::molecules(512, 1200, 3);
        let s = window_stats(&a);
        assert!(s.windows > 0);
        assert!((0.0..=1.0).contains(&s.mean_sparsity));
        // intensity · cols ≈ nnz per window on average (rough consistency).
        assert!(s.mean_intensity >= 1.0);
    }

    #[test]
    fn empty_graph_metrics_are_defined() {
        let a = Csr::empty(10, 10);
        assert_eq!(locality_spread(&a), 0.0);
        assert_eq!(clustering_coefficient(&a), 0.0);
        assert_eq!(far_gather_fraction(&a, 64), 0.0);
        assert_eq!(degree_stats(&a).isolated, 1.0);
    }
}
