//! ME-TCF — the Memory-Efficient Tensor-Core Format of DTC-SpMM (Fan et
//! al., ASPLOS'24), rebuilt as a real data structure.
//!
//! Per condensed row window, non-zero columns are grouped into tiles of
//! `TILE_K` and every entry is packed to one byte of position (4 bits of
//! row-in-window, 3 bits of column-in-tile) plus its value; tiles index a
//! shared entry array. Compared with keeping CSR plus per-entry u32
//! condensed indices, this is what makes the format "memory-efficient" —
//! [`MeTcf::byte_size`] quantifies it.

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::dense::DenseMatrix;
use crate::window::RowWindowPartition;

/// Columns per tensor-core tile (TF32 WMMA K-dimension).
pub const TILE_K: usize = 8;

/// One 16×8 tile's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileDesc {
    /// Range of this tile's entries in the packed arrays.
    pub entry_start: u32,
    /// Exclusive end of the entry range.
    pub entry_end: u32,
    /// First of the tile's (up to `TILE_K`) columns in `tile_cols`.
    pub col_start: u32,
    /// Number of live columns (< `TILE_K` only in a window's last tile).
    pub col_count: u8,
}

/// One row window in ME-TCF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeTcfWindow {
    /// First matrix row covered.
    pub start_row: u32,
    /// Rows covered (≤ 16).
    pub rows: u8,
    /// Range of this window's tiles in `tiles`.
    pub tile_start: u32,
    /// Exclusive end of the tile range.
    pub tile_end: u32,
}

/// The full ME-TCF matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeTcf {
    /// Number of matrix rows.
    pub nrows: usize,
    /// Number of matrix columns.
    pub ncols: usize,
    /// Row windows.
    pub windows: Vec<MeTcfWindow>,
    /// Tile descriptors, grouped by window.
    pub tiles: Vec<TileDesc>,
    /// Original column id per condensed tile column.
    pub tile_cols: Vec<u32>,
    /// Packed entry positions: `row_in_window << 3 | col_in_tile`.
    pub entry_pos: Vec<u8>,
    /// Entry values, parallel to `entry_pos`.
    pub entry_vals: Vec<f32>,
}

impl MeTcf {
    /// Convert a CSR matrix (16-row windows, condensed columns).
    pub fn from_csr(a: &Csr) -> MeTcf {
        let part = RowWindowPartition::build(a);
        let mut out = MeTcf {
            nrows: a.nrows,
            ncols: a.ncols,
            windows: Vec::with_capacity(part.len()),
            tiles: Vec::new(),
            tile_cols: Vec::new(),
            entry_pos: Vec::new(),
            entry_vals: Vec::new(),
        };
        for w in &part.windows {
            let tile_start = out.tiles.len() as u32;
            let n_tiles = w.nnz_cols().div_ceil(TILE_K);
            // Bucket entries by tile, preserving CSR order within a tile so
            // the format stays deterministic.
            let mut per_tile: Vec<Vec<(u8, f32)>> = vec![Vec::new(); n_tiles];
            for r in w.start_row..w.start_row + w.rows {
                let (s, e) = a.row_range(r);
                // The bitmap walk yields condensed indices in this row's
                // CSR entry order (both ascend by column).
                let conds = w.meta.row_cond_indices(r - w.start_row);
                for (i, cond) in (s..e).zip(conds) {
                    let cond = cond as usize;
                    let tile = cond / TILE_K;
                    let row_in_window = (r - w.start_row) as u8;
                    let col_in_tile = (cond % TILE_K) as u8;
                    per_tile[tile].push(((row_in_window << 3) | col_in_tile, a.vals[i]));
                }
            }
            let unique_cols = w.unique_cols();
            for (t, entries) in per_tile.into_iter().enumerate() {
                let entry_start = out.entry_pos.len() as u32;
                for (pos, val) in entries {
                    out.entry_pos.push(pos);
                    out.entry_vals.push(val);
                }
                let col_start = out.tile_cols.len() as u32;
                let cols = &unique_cols[t * TILE_K..((t + 1) * TILE_K).min(w.nnz_cols())];
                out.tile_cols.extend_from_slice(cols);
                out.tiles.push(TileDesc {
                    entry_start,
                    entry_end: out.entry_pos.len() as u32,
                    col_start,
                    col_count: cols.len() as u8,
                });
            }
            out.windows.push(MeTcfWindow {
                start_row: w.start_row as u32,
                rows: w.rows as u8,
                tile_start,
                tile_end: out.tiles.len() as u32,
            });
        }
        out
    }

    /// Total stored entries.
    pub fn nnz(&self) -> usize {
        self.entry_vals.len()
    }

    /// Total tiles (the Tensor-core cost driver).
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Format footprint in bytes.
    pub fn byte_size(&self) -> u64 {
        (self.windows.len() * std::mem::size_of::<MeTcfWindow>()
            + self.tiles.len() * std::mem::size_of::<TileDesc>()
            + self.tile_cols.len() * 4
            + self.entry_pos.len()
            + self.entry_vals.len() * 4) as u64
    }

    /// SpMM straight off the format — validates that the packing is
    /// lossless.
    pub fn spmm_reference(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, x.rows);
        let mut z = DenseMatrix::zeros(self.nrows, x.cols);
        for w in &self.windows {
            for t in w.tile_start..w.tile_end {
                let tile = &self.tiles[t as usize];
                for i in tile.entry_start..tile.entry_end {
                    let pos = self.entry_pos[i as usize];
                    let row = w.start_row as usize + (pos >> 3) as usize;
                    let col_in_tile = (pos & 0x7) as usize;
                    debug_assert!(col_in_tile < tile.col_count as usize);
                    let col = self.tile_cols[tile.col_start as usize + col_in_tile] as usize;
                    let v = self.entry_vals[i as usize];
                    let xrow = x.row(col);
                    let zrow = z.row_mut(row);
                    for (o, &xv) in zrow.iter_mut().zip(xrow) {
                        *o += v * xv;
                    }
                }
            }
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::window::WINDOW_ROWS;

    #[test]
    fn roundtrip_spmm_matches_csr() {
        for seed in 0..3 {
            let a = gen::erdos_renyi(200, 900, seed);
            let m = MeTcf::from_csr(&a);
            let x = DenseMatrix::random_features(200, 16, seed);
            let want = a.spmm_reference(&x);
            let got = m.spmm_reference(&x);
            assert!(want.max_abs_diff(&got) < 1e-4, "seed {seed}");
            assert_eq!(m.nnz(), a.nnz());
        }
    }

    #[test]
    fn tile_count_matches_window_math() {
        let a = gen::community(320, 2_000, 10, 0.9, 1);
        let m = MeTcf::from_csr(&a);
        let part = RowWindowPartition::build(&a);
        let want: usize = part.windows.iter().map(|w| w.num_tiles(TILE_K)).sum();
        assert_eq!(m.num_tiles(), want);
    }

    #[test]
    fn packing_is_within_bounds() {
        let a = gen::barabasi_albert(500, 4, 2);
        let m = MeTcf::from_csr(&a);
        for w in &m.windows {
            assert!(w.rows as usize <= WINDOW_ROWS);
            for t in w.tile_start..w.tile_end {
                let tile = &m.tiles[t as usize];
                for i in tile.entry_start..tile.entry_end {
                    let pos = m.entry_pos[i as usize];
                    assert!((pos >> 3) < w.rows, "row out of window");
                    assert!((pos & 7) < tile.col_count, "col out of tile");
                }
            }
        }
    }

    #[test]
    fn more_compact_than_csr_plus_condensed_indices() {
        // The "memory-efficient" claim: 1 byte of position per entry beats
        // the 4-byte condensed index HC-SpMM keeps alongside CSR.
        let a = gen::molecules(2_048, 5_000, 3);
        let m = MeTcf::from_csr(&a);
        let csr_plus_idx = a.byte_size() + a.nnz() as u64 * 4;
        assert!(
            m.byte_size() < csr_plus_idx,
            "ME-TCF {} should beat CSR+idx {}",
            m.byte_size(),
            csr_plus_idx
        );
    }

    #[test]
    fn empty_matrix() {
        let m = MeTcf::from_csr(&Csr::empty(40, 40));
        assert_eq!(m.nnz(), 0);
        let x = DenseMatrix::random_features(40, 4, 1);
        assert_eq!(m.spmm_reference(&x), DenseMatrix::zeros(40, 4));
    }
}
