//! # graph-sparse — sparse-matrix and graph substrate
//!
//! Data layer for the HC-SpMM reproduction: sparse formats (COO, CSR, CSC),
//! dense row-major matrices, the row-window partition with TC-GNN-style
//! column condensing that HC-SpMM computes over, synthetic graph generators,
//! and a registry of analogues for the paper's 14 evaluation datasets
//! (Table II).
//!
//! Everything is plain CPU data; the `gpu-sim` crate only sees the access
//! patterns kernels derive from these structures.

#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod dense;
pub mod fingerprint;
pub mod gen;
pub mod io;
pub mod metcf;
pub mod metrics;
pub mod tile;
pub mod window;

pub use coo::Coo;
pub use csr::{Csr, CsrError};
pub use datasets::{Dataset, DatasetId, DatasetSpec};
pub use delta::{DeltaCsr, DeltaError};
pub use dense::DenseMatrix;
pub use fingerprint::{FingerprintState, StructureFingerprint};
pub use metcf::MeTcf;
pub use tile::{TileCodecError, TileMeta};
pub use window::{RowWindow, RowWindowPartition, WINDOW_ROWS};
