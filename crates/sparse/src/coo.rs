//! Coordinate-format sparse matrices — the interchange format.
//!
//! Graph generators and file loaders produce COO; kernels consume CSR.

use serde::{Deserialize, Serialize};

use crate::csr::Csr;

/// A sparse matrix as (row, col, value) triples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coo {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row indices, one per non-zero.
    pub rows: Vec<u32>,
    /// Column indices, one per non-zero.
    pub cols: Vec<u32>,
    /// Values, one per non-zero.
    pub vals: Vec<f32>,
}

impl Coo {
    /// An empty matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from triples, validating indices.
    pub fn from_triples(
        nrows: usize,
        ncols: usize,
        triples: impl IntoIterator<Item = (u32, u32, f32)>,
    ) -> Self {
        let mut coo = Coo::new(nrows, ncols);
        for (r, c, v) in triples {
            coo.push(r, c, v);
        }
        coo
    }

    /// Append one entry. Panics on out-of-range indices.
    pub fn push(&mut self, row: u32, col: u32, val: f32) {
        assert!((row as usize) < self.nrows, "row {row} out of range");
        assert!((col as usize) < self.ncols, "col {col} out of range");
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Number of stored entries (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Sort by (row, col) and sum duplicate coordinates.
    pub fn deduplicate(&mut self) {
        let mut idx: Vec<usize> = (0..self.nnz()).collect();
        idx.sort_by_key(|&i| (self.rows[i], self.cols[i]));
        let mut rows = Vec::with_capacity(idx.len());
        let mut cols = Vec::with_capacity(idx.len());
        let mut vals: Vec<f32> = Vec::with_capacity(idx.len());
        for &i in &idx {
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == self.rows[i] && lc == self.cols[i] {
                    *vals.last_mut().expect("parallel arrays") += self.vals[i];
                    continue;
                }
            }
            rows.push(self.rows[i]);
            cols.push(self.cols[i]);
            vals.push(self.vals[i]);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Convert to CSR (duplicates are summed).
    pub fn to_csr(&self) -> Csr {
        let mut me = self.clone();
        me.deduplicate();
        let mut row_ptr = vec![0u32; me.nrows + 1];
        for &r in &me.rows {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..me.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr {
            nrows: me.nrows,
            ncols: me.ncols,
            row_ptr,
            col_idx: me.cols,
            vals: me.vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_nnz() {
        let mut c = Coo::new(3, 3);
        c.push(0, 1, 1.0);
        c.push(2, 2, 2.0);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "row 5 out of range")]
    fn push_validates_row() {
        let mut c = Coo::new(3, 3);
        c.push(5, 0, 1.0);
    }

    #[test]
    fn deduplicate_sums_values() {
        let mut c = Coo::from_triples(2, 2, [(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        c.deduplicate();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.vals[0], 3.5);
    }

    #[test]
    fn deduplicate_sorts() {
        let mut c = Coo::from_triples(3, 3, [(2, 1, 1.0), (0, 2, 1.0), (0, 0, 1.0)]);
        c.deduplicate();
        assert_eq!(c.rows, vec![0, 0, 2]);
        assert_eq!(c.cols, vec![0, 2, 1]);
    }

    #[test]
    fn to_csr_counts_rows() {
        let c = Coo::from_triples(3, 4, [(0, 1, 1.0), (0, 3, 2.0), (2, 0, 3.0)]);
        let csr = c.to_csr();
        assert_eq!(csr.row_ptr, vec![0, 2, 2, 3]);
        assert_eq!(csr.col_idx, vec![1, 3, 0]);
        assert_eq!(csr.nnz(), 3);
    }
}
