//! Compressed tile metadata for condensed row windows.
//!
//! The paper's tensor path traverses a window as `ceil(nnz_cols / 8)`
//! 16×8 WMMA tiles. The original reproduction stored that structure as two
//! dense index vectors per window (`unique_cols` + a per-entry `cond_idx`),
//! i.e. ~`4·(nnz + nnz_cols)` bytes — the dominant share of
//! `Plan::approx_bytes` and of the simulated metadata traffic the A-operand
//! conversion loads. Following Acc-SpMM's bitmap tiles (arXiv:2501.09251),
//! [`TileMeta`] replaces both vectors with
//!
//! * **occupancy bitmaps** — one `u128` per (tile, 16-row group): bit
//!   `(row % 16) · 8 + cond % 8` is set iff the window has a non-zero at
//!   `(row, cond)`; and
//! * a **delta-varint column stream** — the sorted distinct columns as
//!   LEB128 varints: the first column verbatim, then `gap − 1` per
//!   successor (gaps are ≥ 1 because the columns are strictly increasing).
//!
//! The per-entry condensed indices are *not* stored at all: CSR rows carry
//! strictly increasing columns (construction dedups), so the set bits of a
//! row's bitmaps, walked in ascending condensed order, reproduce the
//! entry-order `cond_idx` sequence exactly. [`TileMeta::row_cond_indices`]
//! is that walk, and every former `cond_idx` consumer iterates it without
//! materializing a dense staging form.
//!
//! Hostile encodings (truncated varints, trailing bytes, stray bits, lying
//! counts) are rejected by [`TileMeta::from_parts`] with a typed
//! [`TileCodecError`] — never a panic.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Columns per WMMA tile (the k-dimension of the 16×8 tile).
pub const TILE_COLS: usize = 8;

/// Rows per bitmap row group (the m-dimension of the 16×8 tile).
pub const GROUP_ROWS: usize = 16;

/// Compressed metadata of one condensed row window: occupancy bitmaps plus
/// a delta-compressed unique-column stream. This is the canonical stored
/// form — kernels and cost models consume it directly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileMeta {
    /// Rows the window covers.
    rows: u32,
    /// Non-zeros in the window (== total set bits).
    nnz: u32,
    /// Distinct non-zero columns (== values in `col_stream`).
    nnz_cols: u32,
    /// Delta-varint stream of the sorted distinct columns.
    col_stream: Vec<u8>,
    /// `tiles · row_groups` occupancy bitmaps; tile-major, row groups
    /// consecutive within a tile.
    bitmaps: Vec<u128>,
}

/// Typed decode failure for hostile [`TileMeta`] encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileCodecError {
    /// The column stream ended inside a varint.
    TruncatedColStream {
        /// Byte offset of the truncated varint.
        at: usize,
    },
    /// A varint ran past the 5 bytes a `u32` can need.
    OverlongVarint {
        /// Byte offset of the offending varint.
        at: usize,
    },
    /// Bytes remained after the last expected column.
    TrailingColBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A decoded column exceeded `u32::MAX`.
    ColOverflow {
        /// Byte offset of the overflowing varint.
        at: usize,
    },
    /// `bitmaps.len()` disagrees with `tiles · row_groups`.
    BitmapCountMismatch {
        /// Expected bitmap count for the declared shape.
        expected: usize,
        /// Actual bitmap count.
        got: usize,
    },
    /// A bitmap has a bit set outside the window's rows/columns.
    BitOutOfRange {
        /// Index of the offending bitmap.
        bitmap: usize,
    },
    /// Total set bits disagree with the declared `nnz`.
    PopcountMismatch {
        /// Declared non-zero count.
        expected: u64,
        /// Set bits actually found.
        got: u64,
    },
}

impl fmt::Display for TileCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TileCodecError::TruncatedColStream { at } => {
                write!(f, "column stream truncated inside varint at byte {at}")
            }
            TileCodecError::OverlongVarint { at } => {
                write!(f, "overlong varint at byte {at}")
            }
            TileCodecError::TrailingColBytes { extra } => {
                write!(f, "{extra} trailing bytes after last column")
            }
            TileCodecError::ColOverflow { at } => {
                write!(f, "column overflows u32 at byte {at}")
            }
            TileCodecError::BitmapCountMismatch { expected, got } => {
                write!(f, "expected {expected} bitmaps, got {got}")
            }
            TileCodecError::BitOutOfRange { bitmap } => {
                write!(f, "bitmap {bitmap} sets a bit outside the window")
            }
            TileCodecError::PopcountMismatch { expected, got } => {
                write!(f, "declared nnz {expected} but bitmaps hold {got} bits")
            }
        }
    }
}

impl std::error::Error for TileCodecError {}

/// Append `v` as a LEB128 varint.
fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one LEB128 varint at `*pos`, advancing it. Rejects truncation,
/// overlength, and `u32` overflow with a typed error.
fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u32, TileCodecError> {
    let start = *pos;
    let mut v: u64 = 0;
    for shift in 0..5u32 {
        let Some(&b) = buf.get(*pos) else {
            return Err(TileCodecError::TruncatedColStream { at: start });
        };
        *pos += 1;
        v |= u64::from(b & 0x7f) << (7 * shift);
        if b & 0x80 == 0 {
            return u32::try_from(v).map_err(|_| TileCodecError::ColOverflow { at: start });
        }
    }
    Err(TileCodecError::OverlongVarint { at: start })
}

impl TileMeta {
    /// Encode a window from its sorted distinct columns and its set-bit
    /// positions `(local_row, cond)`. Duplicate bits are an internal
    /// invariant violation (CSR construction dedups), checked in debug
    /// builds only.
    pub fn encode<I>(rows: usize, unique_cols: &[u32], entries: I) -> TileMeta
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let row_groups = rows.div_ceil(GROUP_ROWS);
        let tiles = unique_cols.len().div_ceil(TILE_COLS);
        let mut bitmaps = vec![0u128; tiles * row_groups];
        let mut nnz = 0u32;
        for (local_row, cond) in entries {
            debug_assert!(local_row < rows && cond < unique_cols.len());
            let idx = (cond / TILE_COLS) * row_groups + local_row / GROUP_ROWS;
            let bit = (local_row % GROUP_ROWS) * TILE_COLS + cond % TILE_COLS;
            debug_assert!(bitmaps[idx] & (1u128 << bit) == 0, "duplicate CSR entry");
            bitmaps[idx] |= 1u128 << bit;
            nnz += 1;
        }

        let mut col_stream = Vec::new();
        let mut prev: Option<u32> = None;
        for &c in unique_cols {
            match prev {
                None => push_varint(&mut col_stream, c),
                Some(p) => {
                    debug_assert!(c > p, "unique_cols must be strictly increasing");
                    push_varint(&mut col_stream, c - p - 1);
                }
            }
            prev = Some(c);
        }

        TileMeta {
            rows: rows as u32,
            nnz,
            nnz_cols: unique_cols.len() as u32,
            col_stream,
            bitmaps,
        }
    }

    /// Reassemble from raw parts, validating every invariant the accessors
    /// rely on: the column stream must decode to exactly `nnz_cols`
    /// strictly increasing columns with no trailing bytes, the bitmap
    /// count must match the declared shape, no bit may fall outside the
    /// window, and the total popcount must equal `nnz`.
    pub fn from_parts(
        rows: u32,
        nnz: u32,
        nnz_cols: u32,
        col_stream: Vec<u8>,
        bitmaps: Vec<u128>,
    ) -> Result<TileMeta, TileCodecError> {
        // Columns decode cleanly and stay within u32.
        let mut pos = 0usize;
        let mut prev: u64 = 0;
        for i in 0..nnz_cols as usize {
            let at = pos;
            let v = read_varint(&col_stream, &mut pos)?;
            prev = if i == 0 {
                u64::from(v)
            } else {
                // gap − 1 encoding: successor = prev + v + 1.
                prev + u64::from(v) + 1
            };
            if prev > u64::from(u32::MAX) {
                return Err(TileCodecError::ColOverflow { at });
            }
        }
        if pos != col_stream.len() {
            return Err(TileCodecError::TrailingColBytes {
                extra: col_stream.len() - pos,
            });
        }

        // Bitmap shape and content.
        let row_groups = (rows as usize).div_ceil(GROUP_ROWS);
        let tiles = (nnz_cols as usize).div_ceil(TILE_COLS);
        if bitmaps.len() != tiles * row_groups {
            return Err(TileCodecError::BitmapCountMismatch {
                expected: tiles * row_groups,
                got: bitmaps.len(),
            });
        }
        let mut popcount = 0u64;
        for (idx, &bm) in bitmaps.iter().enumerate() {
            let tile = idx / row_groups.max(1);
            let group = idx % row_groups.max(1);
            // Lanes beyond the window's last row and columns beyond its
            // last condensed column must stay clear.
            let live_rows = (rows as usize - group * GROUP_ROWS).min(GROUP_ROWS);
            let live_cols = (nnz_cols as usize - tile * TILE_COLS).min(TILE_COLS);
            let col_mask = if live_cols == TILE_COLS {
                0xffu128
            } else {
                (1u128 << live_cols) - 1
            };
            let mut valid = 0u128;
            for lane in 0..live_rows {
                valid |= col_mask << (lane * TILE_COLS);
            }
            if bm & !valid != 0 {
                return Err(TileCodecError::BitOutOfRange { bitmap: idx });
            }
            popcount += u64::from(bm.count_ones());
        }
        if popcount != u64::from(nnz) {
            return Err(TileCodecError::PopcountMismatch {
                expected: u64::from(nnz),
                got: popcount,
            });
        }

        Ok(TileMeta {
            rows,
            nnz,
            nnz_cols,
            col_stream,
            bitmaps,
        })
    }

    /// Rows the window covers.
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Non-zeros in the window.
    pub fn nnz(&self) -> usize {
        self.nnz as usize
    }

    /// Distinct non-zero columns (the paper's "#non-zero columns").
    pub fn nnz_cols(&self) -> usize {
        self.nnz_cols as usize
    }

    /// 16×8 tiles the tensor path traverses.
    pub fn tiles(&self) -> usize {
        self.nnz_cols().div_ceil(TILE_COLS)
    }

    /// 16-row bitmap groups per tile.
    pub fn row_groups(&self) -> usize {
        self.rows().div_ceil(GROUP_ROWS)
    }

    /// Raw parts `(col_stream, bitmaps)` — the device-format payload, also
    /// what hostile-encoding tests corrupt before [`TileMeta::from_parts`].
    pub fn parts(&self) -> (&[u8], &[u128]) {
        (&self.col_stream, &self.bitmaps)
    }

    /// Size of the device-format encoding: a 12-byte header (rows, nnz,
    /// nnz_cols) plus the column stream and the bitmaps. This is what the
    /// condense step writes back and the A-operand conversion loads.
    pub fn encoded_bytes(&self) -> usize {
        12 + self.col_stream.len() + 16 * self.bitmaps.len()
    }

    /// Heap bytes this value holds (by content length, not capacity, so
    /// patched and freshly built windows account identically).
    pub fn heap_bytes(&self) -> usize {
        self.col_stream.len() + 16 * self.bitmaps.len()
    }

    /// Deterministic estimate of [`TileMeta::encoded_bytes`] from the two
    /// scalars the analytic cost models receive (`nnz_cols`, `rows`):
    /// header + bitmaps exactly, plus 3 bytes per column (the varint
    /// stream's typical share on graph windows). Cost sites that hold a
    /// real window and those that only hold scalars must bill the *same*
    /// source per site class, so planner and patcher stay bit-identical.
    pub fn nominal_bytes(nnz_cols: usize, rows: usize) -> usize {
        let tiles = nnz_cols.div_ceil(TILE_COLS);
        let row_groups = rows.div_ceil(GROUP_ROWS);
        12 + 3 * nnz_cols + 16 * tiles * row_groups
    }

    /// Decode the sorted distinct columns. Infallible on validated
    /// metadata (both constructors guarantee a clean stream).
    pub fn decode_cols(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.nnz_cols());
        let mut pos = 0usize;
        let mut prev = 0u32;
        for i in 0..self.nnz_cols() {
            let v = read_varint(&self.col_stream, &mut pos).expect("validated col stream");
            prev = if i == 0 { v } else { prev + v + 1 };
            out.push(prev);
        }
        out
    }

    /// Per-condensed-column non-zero counts (the tile-splitter's density
    /// input), straight off the bitmaps — no decode, no staging vector
    /// larger than the output.
    pub fn col_counts(&self) -> Vec<u32> {
        // One bit per lane at column offset 0: multiplying by a shifted
        // copy selects one column across all 16 lanes.
        const LANE_MASK: u128 = 0x0101_0101_0101_0101_0101_0101_0101_0101;
        let row_groups = self.row_groups();
        let mut counts = vec![0u32; self.nnz_cols()];
        for (cond, count) in counts.iter_mut().enumerate() {
            let tile = cond / TILE_COLS;
            let mask = LANE_MASK << (cond % TILE_COLS);
            for group in 0..row_groups {
                *count += (self.bitmaps[tile * row_groups + group] & mask).count_ones();
            }
        }
        counts
    }

    /// Condensed column indices of `local_row`'s entries, ascending —
    /// exactly the window's CSR entry order for that row (CSR columns are
    /// strictly increasing, so are condensed indices). Iterating rows
    /// `0..rows` and chaining these walks reproduces the old per-entry
    /// `cond_idx` vector without materializing it.
    pub fn row_cond_indices(&self, local_row: usize) -> RowCondIter<'_> {
        let row_groups = self.row_groups();
        RowCondIter {
            bitmaps: &self.bitmaps,
            row_groups,
            group: local_row / GROUP_ROWS,
            lane_shift: (local_row % GROUP_ROWS) * TILE_COLS,
            tile: 0,
            tiles: self.tiles(),
            pending: 0,
        }
    }
}

/// Iterator over one row's condensed column indices (see
/// [`TileMeta::row_cond_indices`]).
pub struct RowCondIter<'a> {
    bitmaps: &'a [u128],
    row_groups: usize,
    group: usize,
    lane_shift: usize,
    tile: usize,
    tiles: usize,
    /// Remaining set bits of the current tile's lane byte, shifted so bit
    /// `i` means condensed column `(tile − 1) · 8 + i`.
    pending: u8,
}

impl Iterator for RowCondIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.pending != 0 {
                let bit = self.pending.trailing_zeros();
                self.pending &= self.pending - 1;
                return Some(((self.tile - 1) * TILE_COLS) as u32 + bit);
            }
            if self.tile == self.tiles {
                return None;
            }
            let bm = self.bitmaps[self.tile * self.row_groups + self.group];
            self.pending = (bm >> self.lane_shift) as u8;
            self.tile += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TileMeta {
        // 2 rows, columns {3, 130, 131}: row 0 hits 3 and 131, row 1 hits
        // 130.
        TileMeta::encode(2, &[3, 130, 131], [(0, 0), (0, 2), (1, 1)])
    }

    #[test]
    fn roundtrips_through_parts() {
        let m = sample();
        let (cs, bm) = m.parts();
        let back = TileMeta::from_parts(2, 3, 3, cs.to_vec(), bm.to_vec()).expect("valid parts");
        assert_eq!(back, m);
        assert_eq!(back.decode_cols(), vec![3, 130, 131]);
    }

    #[test]
    fn row_walk_matches_entry_order() {
        let m = sample();
        let r0: Vec<u32> = m.row_cond_indices(0).collect();
        let r1: Vec<u32> = m.row_cond_indices(1).collect();
        assert_eq!(r0, vec![0, 2]);
        assert_eq!(r1, vec![1]);
        assert_eq!(m.col_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn truncated_stream_is_typed_error() {
        let m = sample();
        let (cs, bm) = m.parts();
        let cut = cs[..cs.len() - 1].to_vec();
        let err = TileMeta::from_parts(2, 3, 3, cut, bm.to_vec());
        assert!(matches!(
            err,
            Err(TileCodecError::TruncatedColStream { .. })
                | Err(TileCodecError::TrailingColBytes { .. })
        ));
    }

    #[test]
    fn stray_bit_is_rejected() {
        let m = sample();
        let (cs, bm) = m.parts();
        let mut bad = bm.to_vec();
        // Lane 5 does not exist in a 2-row window.
        bad[0] |= 1u128 << (5 * TILE_COLS);
        assert!(matches!(
            TileMeta::from_parts(2, 3, 3, cs.to_vec(), bad),
            Err(TileCodecError::BitOutOfRange { bitmap: 0 })
        ));
    }

    #[test]
    fn empty_window_encodes_to_nothing() {
        let m = TileMeta::encode(16, &[], std::iter::empty());
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.heap_bytes(), 0);
        assert_eq!(m.decode_cols(), Vec::<u32>::new());
        assert_eq!(m.row_cond_indices(3).count(), 0);
    }
}
