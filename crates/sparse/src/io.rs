//! Edge-list and binary CSR IO.
//!
//! The paper's datasets ship as SNAP-style edge lists; this module reads and
//! writes that format plus a compact binary CSR cache so generated analogues
//! can be reused across harness runs.

use std::io::{self, BufRead, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};

use crate::coo::Coo;
use crate::csr::Csr;

/// Parse a SNAP-style whitespace-separated edge list (`# comment` lines
/// skipped). Vertices are remapped densely in order of first appearance;
/// the graph is stored symmetrically with unit weights.
pub fn read_edge_list(reader: impl BufRead) -> io::Result<Csr> {
    let mut map: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad edge line: {t:?}"),
                ))
            }
        };
        let parse = |s: &str| -> io::Result<u64> {
            s.parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {s:?}")))
        };
        let (a, b) = (parse(a)?, parse(b)?);
        let next = map.len() as u32;
        let ia = *map.entry(a).or_insert(next);
        let next = map.len() as u32;
        let ib = *map.entry(b).or_insert(next);
        if ia != ib {
            edges.push((ia, ib));
        }
    }
    let n = map.len();
    let mut coo = Coo::new(n, n);
    for (u, v) in edges {
        coo.push(u, v, 1.0);
        coo.push(v, u, 1.0);
    }
    let mut c = coo;
    c.deduplicate();
    c.vals.iter_mut().for_each(|v| *v = 1.0);
    let csr = c.to_csr();
    // Every ingest path validates before the matrix reaches a kernel:
    // a defect here means the reader (not the caller) is broken, but the
    // contract is the same — no unvalidated CSR leaves this module.
    csr.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(csr)
}

/// Read an edge list from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> io::Result<Csr> {
    let f = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(f))
}

/// Write a CSR matrix's upper-triangular edges as an edge list.
pub fn write_edge_list(csr: &Csr, writer: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for r in 0..csr.nrows {
        for &c in csr.row_cols(r) {
            if (c as usize) >= r {
                writeln!(w, "{r}\t{c}")?;
            }
        }
    }
    w.flush()
}

const MAGIC: u32 = 0x4853_4d43; // "HSMC"

/// Serialize a CSR matrix to a compact binary blob.
pub fn csr_to_bytes(csr: &Csr) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(24 + csr.byte_size() as usize);
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(csr.nrows as u64);
    buf.put_u64_le(csr.ncols as u64);
    buf.put_u64_le(csr.nnz() as u64);
    for &p in &csr.row_ptr {
        buf.put_u32_le(p);
    }
    for &c in &csr.col_idx {
        buf.put_u32_le(c);
    }
    for &v in &csr.vals {
        buf.put_f32_le(v);
    }
    buf.to_vec()
}

/// Deserialize a CSR matrix written by [`csr_to_bytes`].
pub fn csr_from_bytes(mut data: &[u8]) -> io::Result<Csr> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if data.remaining() < 28 {
        return Err(bad("truncated header"));
    }
    if data.get_u32_le() != MAGIC {
        return Err(bad("bad magic"));
    }
    let nrows = data.get_u64_le() as usize;
    let ncols = data.get_u64_le() as usize;
    let nnz = data.get_u64_le() as usize;
    // Header fields are untrusted: size arithmetic must not overflow, and a
    // body that cannot possibly be present must fail cleanly rather than
    // abort on allocation.
    let need = nrows
        .checked_add(1)
        .and_then(|r| r.checked_mul(4))
        .and_then(|r| nnz.checked_mul(8).and_then(|e| r.checked_add(e)))
        .ok_or_else(|| bad("header sizes overflow"))?;
    if data.remaining() < need {
        return Err(bad("truncated body"));
    }
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    for _ in 0..=nrows {
        row_ptr.push(data.get_u32_le());
    }
    let mut col_idx = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_idx.push(data.get_u32_le());
    }
    let mut vals = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        vals.push(data.get_f32_le());
    }
    if row_ptr.last().copied() != Some(nnz as u32) {
        return Err(bad("inconsistent row_ptr"));
    }
    let csr = Csr {
        nrows,
        ncols,
        row_ptr,
        col_idx,
        vals,
    };
    csr.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(csr)
}

/// Write a binary CSR cache file.
pub fn write_csr_file(csr: &Csr, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, csr_to_bytes(csr))
}

/// Read a binary CSR cache file.
pub fn read_csr_file(path: impl AsRef<Path>) -> io::Result<Csr> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    csr_from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_roundtrip() {
        let g = gen::erdos_renyi(50, 120, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.nnz(), g.nnz());
        assert_eq!(back.nrows, g.nrows);
    }

    #[test]
    fn edge_list_skips_comments_and_self_loops() {
        let text = "# comment\n% other comment\n0 1\n1 1\n1 2\n";
        let g = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.nrows, 3);
        assert_eq!(g.nnz(), 4); // two undirected edges, stored both ways
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let text = "0 x\n";
        assert!(read_edge_list(io::BufReader::new(text.as_bytes())).is_err());
        let text = "0\n";
        assert!(read_edge_list(io::BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn binary_roundtrip_exact() {
        let g = gen::barabasi_albert(100, 3, 5);
        let bytes = csr_to_bytes(&g);
        let back = csr_from_bytes(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = gen::erdos_renyi(20, 30, 1);
        let mut bytes = csr_to_bytes(&g);
        bytes[0] ^= 0xff; // break magic
        assert!(csr_from_bytes(&bytes).is_err());
        let bytes = csr_to_bytes(&g);
        assert!(csr_from_bytes(&bytes[..10]).is_err());
        assert!(csr_from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn binary_rejects_structurally_corrupt_payloads() {
        // Valid framing, broken invariants: a column index out of range.
        let g = gen::erdos_renyi(20, 30, 1);
        let mut bytes = csr_to_bytes(&g);
        // col_idx starts after 28-byte header + row_ptr array.
        let col_off = 28 + (g.nrows + 1) * 4;
        bytes[col_off..col_off + 4].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(csr_from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let g = gen::community(64, 100, 4, 0.9, 2);
        let dir = std::env::temp_dir().join("hc_spmm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.csrbin");
        write_csr_file(&g, &path).unwrap();
        assert_eq!(read_csr_file(&path).unwrap(), g);
    }
}
