//! Synthetic graph and matrix generators.
//!
//! These stand in for the paper's 14 downloaded datasets and for the
//! synthetic matrices of the characterization (§IV-B), selector-training
//! (§IV-C) and sparsity-sweep (Appendix D) experiments. All generators are
//! deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::Coo;
use crate::csr::Csr;

/// Erdős–Rényi-style graph with exactly `edges` distinct undirected edges
/// (stored symmetrically; self-loops excluded).
pub fn erdos_renyi(n: usize, edges: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::with_capacity(edges * 2);
    let mut placed = 0usize;
    let max_edges = n * (n - 1) / 2;
    let target = edges.min(max_edges);
    while placed < target {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
            placed += 1;
        }
    }
    coo.to_csr()
}

/// Preferential-attachment (Barabási–Albert-like) graph: power-law degree
/// distribution, the shape of citation and social networks.
pub fn barabasi_albert(n: usize, edges_per_node: usize, seed: u64) -> Csr {
    let m = edges_per_node.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    // Target list with multiplicity = degree (preferential attachment).
    let mut targets: Vec<u32> = Vec::with_capacity(2 * n * m);
    let seed_nodes = (m + 1).min(n);
    for u in 0..seed_nodes {
        for v in 0..u {
            coo.push(u as u32, v as u32, 1.0);
            coo.push(v as u32, u as u32, 1.0);
            targets.push(u as u32);
            targets.push(v as u32);
        }
    }
    for u in seed_nodes..n {
        let mut chosen = std::collections::HashSet::new();
        while chosen.len() < m.min(u) {
            let t = if targets.is_empty() {
                rng.gen_range(0..u as u32)
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if t as usize != u {
                chosen.insert(t);
            }
        }
        // Sort for determinism: HashSet iteration order would otherwise leak
        // into the target list and change downstream sampling.
        let mut chosen: Vec<u32> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for &t in &chosen {
            coo.push(u as u32, t, 1.0);
            coo.push(t, u as u32, 1.0);
            targets.push(u as u32);
            targets.push(t);
        }
    }
    let mut c = coo;
    c.deduplicate();
    c.vals.iter_mut().for_each(|v| *v = 1.0);
    c.to_csr()
}

/// R-MAT recursive generator (Kronecker-like skew, community structure).
/// `scale` gives `n = 2^scale` vertices.
pub fn rmat(scale: u32, edges: usize, seed: u64) -> Csr {
    let n = 1usize << scale;
    let (a, b, c) = (0.57, 0.19, 0.19); // Graph500 parameters; d = 0.05
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::with_capacity(edges * 2);
    let mut attempts = 0usize;
    while seen.len() < edges && attempts < edges * 20 {
        attempts += 1;
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    coo.to_csr()
}

/// Stochastic-block-model-like community graph: `communities` equal-size
/// groups; a fraction `p_in` of edges fall within a group. High `p_in`
/// yields the dense diagonal blocks that favor Tensor cores.
pub fn community(n: usize, edges: usize, communities: usize, p_in: f64, seed: u64) -> Csr {
    let k = communities.max(1);
    let group = n.div_ceil(k);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::with_capacity(edges * 2);
    let mut attempts = 0usize;
    while seen.len() < edges && attempts < edges * 40 {
        attempts += 1;
        let (u, v) = if rng.gen_bool(p_in) {
            let g = rng.gen_range(0..k);
            let lo = g * group;
            let hi = ((g + 1) * group).min(n);
            // Tiny graphs: the last group may be empty or a singleton.
            if lo >= n || hi <= lo + 1 {
                continue;
            }
            (rng.gen_range(lo..hi) as u32, rng.gen_range(lo..hi) as u32)
        } else {
            (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32)
        };
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
    }
    coo.to_csr()
}

/// Regular banded mesh: every vertex links to its `band` successors. Very
/// high locality — the "favorable original layout" the paper credits GH/DP
/// with.
pub fn banded(n: usize, band: usize, seed: u64) -> Csr {
    let _ = seed;
    let mut coo = Coo::new(n, n);
    for u in 0..n {
        for d in 1..=band {
            let v = u + d;
            if v < n {
                coo.push(u as u32, v as u32, 1.0);
                coo.push(v as u32, u as u32, 1.0);
            }
        }
    }
    coo.to_csr()
}

/// Union of small molecule-like graphs (the TUDataset shape of PROTEINS,
/// DD, OVCAR, YeastH): each molecule is a hub with leaves plus intra-
/// molecule bonds until the global `edges` target is met. Star patterns are
/// what lets a low-average-degree graph form *dense row windows*: sixteen
/// leaves of one hub touch a single column.
pub fn molecules(n: usize, edges: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    let mut placed = 0usize;
    let mut bounds: Vec<(usize, usize)> = Vec::new(); // molecule ranges
    let mut u = 0usize;
    while u < n {
        let size = rng.gen_range(12..=24).min(n - u);
        bounds.push((u, u + size));
        // Star: hub = first vertex of the molecule.
        for leaf in u + 1..u + size {
            coo.push(u as u32, leaf as u32, 1.0);
            coo.push(leaf as u32, u as u32, 1.0);
            placed += 1;
        }
        u += size;
    }
    // Intra-molecule bonds (ring/bridge edges) until the edge target.
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while placed < edges && attempts < edges * 30 {
        attempts += 1;
        let (lo, hi) = bounds[rng.gen_range(0..bounds.len())];
        if hi - lo < 3 {
            continue;
        }
        let a = rng.gen_range(lo + 1..hi) as u32;
        let b = rng.gen_range(lo + 1..hi) as u32;
        if a == b {
            continue;
        }
        if seen.insert((a.min(b), a.max(b))) {
            coo.push(a, b, 1.0);
            coo.push(b, a, 1.0);
            placed += 1;
        }
    }
    let mut c = coo;
    c.deduplicate();
    c.vals.iter_mut().for_each(|v| *v = 1.0);
    c.to_csr()
}

/// Shuffle vertex IDs only *within* consecutive blocks of `block` vertices:
/// coarse locality survives, but row windows no longer align with the
/// underlying clusters — the mild layout imperfection every real-world
/// dataset ships with (and the slack LOA exploits).
pub fn local_shuffle(a: &Csr, block: usize, seed: u64) -> Csr {
    let block = block.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..a.nrows as u32).collect();
    for chunk in perm.chunks_mut(block) {
        for i in (1..chunk.len()).rev() {
            let j = rng.gen_range(0..=i);
            chunk.swap(i, j);
        }
    }
    a.permute_symmetric(&perm)
}

/// Social-network generator: a preferential-attachment core (degree skew)
/// overlaid with community edges (clustering) — the Reddit/Twitch shape.
pub fn social(n: usize, edges: usize, seed: u64) -> Csr {
    let hub_edges = edges / 2;
    let comm_edges = edges - hub_edges;
    let hubs = barabasi_albert(n, (hub_edges / n).max(1), seed);
    let comm = community(n, comm_edges, (n / 40).max(1), 0.9, seed ^ 0x50c1a1);
    let mut coo = hubs.to_coo();
    let cc = comm.to_coo();
    for i in 0..cc.nnz() {
        coo.push(cc.rows[i], cc.cols[i], cc.vals[i]);
    }
    coo.deduplicate();
    coo.vals.iter_mut().for_each(|v| *v = 1.0);
    coo.to_csr()
}

/// Mesh with long-range noise: a banded core plus a fraction of uniformly
/// random edges. Row windows stay dense (favorable layout, nothing for LOA
/// to fix) while adjacency lists contain the scattered far neighbours that
/// break untiled kernels — the DP profile of §VI-B1.
pub fn mesh_noisy(n: usize, edges: usize, noise: f64, seed: u64) -> Csr {
    let noise_edges = (edges as f64 * noise) as usize;
    let band_edges = edges - noise_edges;
    let base = banded(n, (band_edges / n).max(1), seed);
    let er = erdos_renyi(n, noise_edges.max(1), seed ^ 0x0e15e);
    let mut coo = base.to_coo();
    let ec = er.to_coo();
    for i in 0..ec.nnz() {
        coo.push(ec.rows[i], ec.cols[i], ec.vals[i]);
    }
    coo.deduplicate();
    coo.vals.iter_mut().for_each(|v| *v = 1.0);
    coo.to_csr()
}

/// Relabel vertices with a random permutation, destroying neighbour-ID
/// locality (the AZ/DP pathology the paper describes in §VI-B1).
pub fn scatter_relabel(a: &Csr, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..a.nrows as u32).collect();
    // Fisher–Yates.
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    a.permute_symmetric(&perm)
}

/// One synthetic row window as generated by the selector-training pipeline
/// (§IV-C): `rows × cols`, every column gets at least one non-zero, then
/// `nnz - cols` extra entries placed uniformly at random. Requires
/// `cols <= nnz <= rows * cols`.
pub fn training_window(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
    assert!(cols >= 1 && nnz >= cols && nnz <= rows * cols);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(nnz * 2);
    let mut coo = Coo::new(rows, cols);
    // One entry per column at a uniformly random row (paper's step 1).
    for c in 0..cols {
        let r = rng.gen_range(0..rows) as u32;
        seen.insert((r, c as u32));
        coo.push(r, c as u32, 1.0);
    }
    // Remaining entries uniformly at random (paper's step 2).
    while seen.len() < nnz {
        let r = rng.gen_range(0..rows) as u32;
        let c = rng.gen_range(0..cols) as u32;
        if seen.insert((r, c)) {
            coo.push(r, c, 1.0);
        }
    }
    coo.to_csr()
}

/// Block-structured synthetic matrix for the Appendix D sparsity sweep
/// (Table X): `blocks` 16×8 non-zero blocks placed on a block diagonal,
/// each filled to `1 - sparsity` density.
pub fn block_sparse(blocks: usize, sparsity: f64, seed: u64) -> Csr {
    assert!((0.0..1.0).contains(&sparsity));
    let rows = blocks.div_ceil(2) * 16; // two 16×8 blocks per window row-band
    let cols = rows;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(rows, cols);
    let per_block = ((16.0 * 8.0) * (1.0 - sparsity)).round().max(1.0) as usize;
    for b in 0..blocks {
        let base_r = (b / 2) * 16;
        let base_c = ((b / 2) * 16 + (b % 2) * 8) % cols;
        let mut seen = std::collections::HashSet::new();
        while seen.len() < per_block {
            let r = base_r + rng.gen_range(0..16);
            let c = base_c + rng.gen_range(0..8);
            if seen.insert((r, c)) {
                coo.push(r as u32, c as u32, 1.0);
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_has_requested_edges() {
        let g = erdos_renyi(100, 300, 1);
        assert_eq!(g.nnz(), 600); // symmetric storage
        assert_eq!(g.nrows, 100);
    }

    #[test]
    fn erdos_renyi_is_symmetric() {
        let g = erdos_renyi(50, 100, 2);
        assert_eq!(g.transpose(), g);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(erdos_renyi(64, 128, 9), erdos_renyi(64, 128, 9));
        assert_eq!(barabasi_albert(64, 3, 9), barabasi_albert(64, 3, 9));
        assert_eq!(rmat(6, 100, 9), rmat(6, 100, 9));
        assert_eq!(community(64, 100, 4, 0.9, 9), community(64, 100, 4, 0.9, 9));
    }

    #[test]
    fn barabasi_albert_is_skewed() {
        let g = barabasi_albert(500, 3, 3);
        let mut degs: Vec<usize> = (0..g.nrows).map(|r| g.degree(r)).collect();
        degs.sort_unstable();
        let max = *degs.last().unwrap();
        let median = degs[degs.len() / 2];
        assert!(
            max >= 4 * median,
            "power-law tail expected: max {max}, median {median}"
        );
        assert_eq!(g.transpose(), g);
    }

    #[test]
    fn community_graph_clusters() {
        let g = community(128, 400, 8, 0.95, 4);
        // Count intra-community edges.
        let group = 16;
        let mut intra = 0usize;
        for r in 0..g.nrows {
            for &c in g.row_cols(r) {
                if r / group == c as usize / group {
                    intra += 1;
                }
            }
        }
        assert!(intra as f64 > 0.8 * g.nnz() as f64);
    }

    #[test]
    fn banded_has_high_locality() {
        let g = banded(100, 4, 0);
        for r in 0..g.nrows {
            for &c in g.row_cols(r) {
                assert!((c as i64 - r as i64).unsigned_abs() <= 4);
            }
        }
    }

    #[test]
    fn scatter_preserves_edge_count_and_symmetry() {
        let g = banded(64, 3, 0);
        let s = scatter_relabel(&g, 5);
        assert_eq!(s.nnz(), g.nnz());
        assert_eq!(s.transpose(), s);
        assert_ne!(s, g);
    }

    #[test]
    fn training_window_meets_spec() {
        for (cols, nnz) in [(1, 1), (10, 10), (10, 100), (130, 800)] {
            let w = training_window(16, cols, nnz, 7);
            assert_eq!(w.nnz(), nnz);
            // Every column occupied.
            let t = w.transpose();
            for c in 0..cols {
                assert!(t.degree(c) >= 1, "column {c} empty");
            }
        }
    }

    #[test]
    fn block_sparse_density_tracks_request() {
        for sp in [0.80, 0.90] {
            let m = block_sparse(20, sp, 3);
            let per_block = (128.0 * (1.0 - sp)).round() as usize;
            assert_eq!(m.nnz(), per_block * 20);
        }
    }

    #[test]
    fn rmat_is_skewed_and_symmetric() {
        let g = rmat(8, 600, 11);
        assert_eq!(g.transpose(), g);
        let mut degs: Vec<usize> = (0..g.nrows).map(|r| g.degree(r)).collect();
        degs.sort_unstable();
        assert!(degs[degs.len() - 1] > degs[degs.len() / 2]);
    }
}
