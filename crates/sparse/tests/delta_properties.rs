//! Property tests for [`DeltaCsr`] edge-churn batches.
//!
//! The dynamic-graph contract rests on three properties: applying a delta
//! and fingerprinting the result equals updating the incremental
//! [`FingerprintState`] from the first dirty row (the plan-patch path
//! never recomputes clean prefixes), a delta composed with its exact
//! inverse is the identity (bit-exact, values included), and no input —
//! however malformed — ever panics: every defect is a typed
//! [`DeltaError`].

use graph_sparse::{Coo, Csr, DeltaCsr, DeltaError, FingerprintState, StructureFingerprint};
use proptest::prelude::*;

/// A graph, the cells to insert, and the edges to delete.
type ChurnCase = (Csr, Vec<(u32, u32, f32)>, Vec<(u32, u32)>);

fn arb_entries() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f32)>)> {
    (2usize..60, 2usize..60).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r as u32, 0..c as u32, -5.0f32..5.0), 1..250)
            .prop_map(move |es| (r, c, es))
    })
}

/// A graph plus a valid delta against it: a subset of its edges to
/// delete (chosen by mask) and a handful of absent cells to insert.
fn arb_case() -> impl Strategy<Value = ChurnCase> {
    arb_entries().prop_flat_map(|(r, c, es)| {
        let a = Coo::from_triples(r, c, es).to_csr();
        let nnz = a.nnz().max(1);
        (
            Just(a),
            proptest::collection::vec(0u32..2, nnz),
            proptest::collection::vec((0..r as u32, 0..c as u32, 0.5f32..2.0), 0..12),
        )
            .prop_map(|(a, mask, candidates)| {
                let mut deletes = Vec::new();
                let mut k = 0;
                for row in 0..a.nrows {
                    for &col in a.row_cols(row) {
                        if mask.get(k).copied().unwrap_or(0) == 1 {
                            deletes.push((row as u32, col));
                        }
                        k += 1;
                    }
                }
                let mut seen = std::collections::HashSet::new();
                let mut inserts = Vec::new();
                for (ri, ci, v) in candidates {
                    if a.row_cols(ri as usize).contains(&ci) {
                        continue; // already present: would be EdgePresent
                    }
                    if seen.insert((ri, ci)) {
                        inserts.push((ri, ci, v));
                    }
                }
                (a, inserts, deletes)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// apply-then-fingerprint == incremental suffix update. The whole
    /// point of the per-row checkpoints is that the plan-patch path can
    /// resume hashing at the first dirty row and land on exactly the
    /// state a full recompute would produce.
    #[test]
    fn apply_then_fingerprint_matches_incremental_update(
        (a, inserts, deletes) in arb_case(),
    ) {
        let delta = DeltaCsr::new(a.nrows, a.ncols, inserts, deletes)
            .expect("constructed valid by arb_case");
        let b = delta.apply(&a).expect("valid against its base");
        let st = FingerprintState::of(&a);
        let incremental = match delta.first_dirty_row() {
            Some(d) => st.update(&b, d),
            None => st.clone(),
        };
        prop_assert_eq!(&incremental, &FingerprintState::of(&b));
        prop_assert_eq!(incremental.fingerprint(), StructureFingerprint::of(&b));
        // An empty delta is the identity on the fingerprint too.
        if delta.is_empty() {
            prop_assert_eq!(
                StructureFingerprint::of(&a),
                StructureFingerprint::of(&b)
            );
        }
    }

    /// A delta composed with its exact inverse (delete what was inserted,
    /// re-insert what was deleted, original values) is the identity —
    /// bit-exact on structure *and* values.
    #[test]
    fn insert_then_delete_round_trips((a, inserts, deletes) in arb_case()) {
        // Capture deleted values before they go.
        let restore: Vec<(u32, u32, f32)> = deletes
            .iter()
            .map(|&(r, c)| {
                let i = a
                    .row_cols(r as usize)
                    .iter()
                    .position(|&x| x == c)
                    .expect("delete targets an existing edge");
                (r, c, a.row_vals(r as usize)[i])
            })
            .collect();
        let undo_deletes: Vec<(u32, u32)> =
            inserts.iter().map(|&(r, c, _)| (r, c)).collect();
        let forward = DeltaCsr::new(a.nrows, a.ncols, inserts, deletes)
            .expect("constructed valid by arb_case");
        let b = forward.apply(&a).expect("valid against its base");
        let inverse = DeltaCsr::new(a.nrows, a.ncols, restore, undo_deletes)
            .expect("the inverse of a valid delta is valid");
        let back = inverse.apply(&b).expect("inverse applies to the mutated graph");
        prop_assert_eq!(back, a);
    }

    /// No delta input panics: construction and application either succeed
    /// or return a typed [`DeltaError`], even for arbitrary rows, columns
    /// and values (NaN and ±Inf included).
    #[test]
    fn arbitrary_deltas_never_panic(
        (r, c, es) in arb_entries(),
        dr in 0usize..80,
        dc in 0usize..80,
        raw_inserts in proptest::collection::vec(
            (0u32..80, 0u32..80, 0u32..=u32::MAX), 0..8),
        deletes in proptest::collection::vec((0u32..80, 0u32..80), 0..8),
    ) {
        let a = Coo::from_triples(r, c, es).to_csr();
        // Raw bit patterns cover every f32, NaN and ±Inf included.
        let inserts: Vec<(u32, u32, f32)> = raw_inserts
            .into_iter()
            .map(|(ri, ci, bits)| (ri, ci, f32::from_bits(bits)))
            .collect();
        if let Ok(d) = DeltaCsr::new(dr, dc, inserts, deletes) {
            let _ = d.apply(&a); // Ok or typed Err, never a panic
        }
    }
}

/// Every defect class comes back as its own typed error.
#[test]
fn each_defect_class_is_its_own_typed_error() {
    let a = Coo::from_triples(4, 4, [(0, 1, 1.0), (2, 3, 1.0)]).to_csr();
    let new = |ins: Vec<(u32, u32, f32)>, del: Vec<(u32, u32)>| DeltaCsr::new(4, 4, ins, del);

    assert_eq!(
        new(vec![(9, 0, 1.0)], vec![]).err(),
        Some(DeltaError::RowOutOfRange { row: 9, nrows: 4 })
    );
    assert_eq!(
        new(vec![], vec![(0, 9)]).err(),
        Some(DeltaError::ColOutOfRange { col: 9, ncols: 4 })
    );
    assert_eq!(
        new(vec![(1, 2, 1.0), (1, 2, 3.0)], vec![]).err(),
        Some(DeltaError::DuplicateInsert { row: 1, col: 2 })
    );
    assert_eq!(
        new(vec![], vec![(0, 1), (0, 1)]).err(),
        Some(DeltaError::DuplicateDelete { row: 0, col: 1 })
    );
    assert_eq!(
        new(vec![(0, 1, 1.0)], vec![(0, 1)]).err(),
        Some(DeltaError::InsertAndDelete { row: 0, col: 1 })
    );
    assert_eq!(
        new(vec![(1, 1, f32::NAN)], vec![]).err(),
        Some(DeltaError::NonFiniteValue { row: 1, col: 1 })
    );
    let ok = new(vec![(1, 1, 1.0)], vec![]).expect("valid");
    assert_eq!(
        ok.apply(&Coo::from_triples(5, 4, [(0, 1, 1.0)]).to_csr())
            .err(),
        Some(DeltaError::ShapeMismatch {
            expected: (4, 4),
            got: (5, 4),
        })
    );
    assert_eq!(
        new(vec![(0, 1, 2.0)], vec![])
            .expect("valid")
            .apply(&a)
            .err(),
        Some(DeltaError::EdgePresent { row: 0, col: 1 })
    );
    assert_eq!(
        new(vec![], vec![(3, 3)]).expect("valid").apply(&a).err(),
        Some(DeltaError::EdgeAbsent { row: 3, col: 3 })
    );
}
