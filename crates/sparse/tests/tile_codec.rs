//! Property tests for the compressed tile-metadata codec ([`TileMeta`]).
//!
//! The codec's contract: encoding a window and reassembling it from its
//! raw parts is the identity; the bitmap row walks reproduce the exact
//! per-entry condensed-index sequence the dense representation used to
//! store; and no byte stream — however hostile — ever panics the decoder:
//! every defect comes back as a typed [`TileCodecError`].

use graph_sparse::tile::{GROUP_ROWS, TILE_COLS};
use graph_sparse::{TileCodecError, TileMeta};
use proptest::prelude::*;

/// A synthetic window: its row count, sorted distinct columns, and the set
/// of `(local_row, cond)` occupancy bits.
type WindowCase = (usize, Vec<u32>, Vec<(usize, usize)>);

fn arb_window() -> impl Strategy<Value = WindowCase> {
    (1usize..=40, 1usize..=40).prop_flat_map(|(rows, ncols)| {
        proptest::collection::vec((0..rows, 0u32..1000), 0..160).prop_map(move |cells| {
            // Dedup (row, col) pairs, then condense the distinct columns.
            let mut cells: Vec<(usize, u32)> = cells.into_iter().take(ncols * rows).collect();
            cells.sort_unstable();
            cells.dedup();
            let mut cols: Vec<u32> = cells.iter().map(|&(_, c)| c).collect();
            cols.sort_unstable();
            cols.dedup();
            let entries: Vec<(usize, usize)> = cells
                .iter()
                .map(|&(r, c)| (r, cols.binary_search(&c).expect("col present")))
                .collect();
            (rows, cols, entries)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode → parts → from_parts is the identity, and every accessor
    /// agrees with the generating window: decoded columns, per-row
    /// condensed walks (in CSR entry order), per-column counts, and the
    /// popcount/nnz bookkeeping.
    #[test]
    fn encode_roundtrips_and_accessors_agree((rows, cols, entries) in arb_window()) {
        let m = TileMeta::encode(rows, &cols, entries.iter().copied());
        prop_assert_eq!(m.rows(), rows);
        prop_assert_eq!(m.nnz(), entries.len());
        prop_assert_eq!(m.nnz_cols(), cols.len());
        prop_assert_eq!(m.decode_cols(), cols.clone());
        prop_assert_eq!(
            m.encoded_bytes(),
            12 + m.heap_bytes(),
            "encoded = header + heap"
        );

        // The bitmap walk reproduces each row's conds ascending — exactly
        // the dense cond_idx sequence in CSR entry order.
        let mut walked = 0usize;
        for r in 0..rows {
            let mut want: Vec<u32> = entries
                .iter()
                .filter(|&&(er, _)| er == r)
                .map(|&(_, c)| c as u32)
                .collect();
            want.sort_unstable();
            let got: Vec<u32> = m.row_cond_indices(r).collect();
            walked += got.len();
            prop_assert_eq!(got, want, "row {} walk", r);
        }
        prop_assert_eq!(walked, m.nnz());

        // Column counts straight off the bitmaps.
        let mut want_counts = vec![0u32; cols.len()];
        for &(_, cond) in &entries {
            want_counts[cond] += 1;
        }
        prop_assert_eq!(m.col_counts(), want_counts);

        // Reassembly from raw parts is bit-exact.
        let (cs, bm) = m.parts();
        let back = TileMeta::from_parts(
            rows as u32,
            m.nnz() as u32,
            cols.len() as u32,
            cs.to_vec(),
            bm.to_vec(),
        );
        prop_assert_eq!(back.as_ref(), Ok(&m));
    }

    /// Arbitrary raw parts never panic the validator: every outcome is
    /// `Ok` or a typed error, and an `Ok` value's accessors are safe.
    #[test]
    fn hostile_parts_never_panic(
        rows in 0u32..70,
        nnz in 0u32..300,
        nnz_cols in 0u32..70,
        col_stream in proptest::collection::vec(0u8..=255, 0..48),
        bitmap_halves in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..12),
    ) {
        let bitmaps: Vec<u128> = bitmap_halves
            .into_iter()
            .map(|(hi, lo)| (u128::from(hi) << 64) | u128::from(lo))
            .collect();
        if let Ok(m) = TileMeta::from_parts(rows, nnz, nnz_cols, col_stream, bitmaps) {
            // Validated metadata must be fully walkable without panics.
            prop_assert_eq!(m.decode_cols().len(), m.nnz_cols());
            let total: usize = (0..m.rows()).map(|r| m.row_cond_indices(r).count()).sum();
            prop_assert_eq!(total, m.nnz());
            prop_assert_eq!(m.col_counts().iter().map(|&c| c as usize).sum::<usize>(), m.nnz());
        }
    }

    /// Corrupting a valid encoding is always caught: truncating the column
    /// stream, appending trailing bytes, or lying about the bitmap count
    /// each produce a typed error, never a wrong-but-Ok decode.
    #[test]
    fn corrupted_encodings_are_rejected((rows, cols, entries) in arb_window()) {
        if cols.is_empty() {
            // Nothing to corrupt in an empty stream; vacuously true.
            return Ok(());
        }
        let m = TileMeta::encode(rows, &cols, entries.iter().copied());
        let (cs, bm) = m.parts();
        let (r, n, k) = (rows as u32, m.nnz() as u32, cols.len() as u32);

        // Truncated column stream.
        let cut = cs[..cs.len() - 1].to_vec();
        prop_assert!(TileMeta::from_parts(r, n, k, cut, bm.to_vec()).is_err());

        // Trailing bytes after the last column. 0x80 keeps a varint open,
        // so this lands on TrailingColBytes or TruncatedColStream —
        // either way a typed rejection.
        let mut fat = cs.to_vec();
        fat.push(0x80);
        prop_assert!(TileMeta::from_parts(r, n, k, fat, bm.to_vec()).is_err());

        // Overfull bitmap vector.
        let mut extra = bm.to_vec();
        extra.push(0);
        prop_assert_eq!(
            TileMeta::from_parts(r, n, k, cs.to_vec(), extra).err(),
            Some(TileCodecError::BitmapCountMismatch {
                expected: bm.len(),
                got: bm.len() + 1,
            })
        );

        // Lying nnz.
        prop_assert!(matches!(
            TileMeta::from_parts(r, n + 1, k, cs.to_vec(), bm.to_vec()),
            Err(TileCodecError::PopcountMismatch { .. })
        ));
    }
}

#[test]
fn empty_full_and_single_column_windows() {
    // Empty: no columns, no bitmaps, nothing to walk.
    let empty = TileMeta::encode(GROUP_ROWS, &[], std::iter::empty());
    assert_eq!(empty.heap_bytes(), 0);
    assert_eq!(empty.tiles(), 0);
    assert!(TileMeta::from_parts(GROUP_ROWS as u32, 0, 0, Vec::new(), Vec::new()).is_ok());

    // Full 16×8 window: every bit of the single bitmap set.
    let cols: Vec<u32> = (0..TILE_COLS as u32).collect();
    let entries = (0..GROUP_ROWS).flat_map(|r| (0..TILE_COLS).map(move |c| (r, c)));
    let full = TileMeta::encode(GROUP_ROWS, &cols, entries);
    assert_eq!(full.nnz(), GROUP_ROWS * TILE_COLS);
    let (_, bm) = full.parts();
    assert_eq!(bm, &[u128::MAX]);
    for r in 0..GROUP_ROWS {
        assert_eq!(
            full.row_cond_indices(r).collect::<Vec<_>>(),
            (0..TILE_COLS as u32).collect::<Vec<_>>()
        );
    }

    // Single column, hit by every row.
    let one = TileMeta::encode(GROUP_ROWS, &[777], (0..GROUP_ROWS).map(|r| (r, 0)));
    assert_eq!(one.decode_cols(), vec![777]);
    assert_eq!(one.col_counts(), vec![GROUP_ROWS as u32]);
    assert_eq!(one.tiles(), 1);

    // A window taller than one row group spreads across bitmaps.
    let tall = TileMeta::encode(32, &[5], [(0, 0), (31, 0)]);
    assert_eq!(tall.row_groups(), 2);
    assert_eq!(tall.parts().1.len(), 2);
    assert_eq!(tall.row_cond_indices(31).collect::<Vec<_>>(), vec![0]);
}
