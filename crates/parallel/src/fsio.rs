//! Crash-safe file persistence shared across the workspace.
//!
//! Every on-disk artifact the workspace writes — the host calibration
//! cache, `BENCH.json`, serving snapshots — must survive a crash mid-write
//! without ever being observed half-written. The standard recipe is the
//! same everywhere: write the full contents to a temporary sibling, fsync
//! it, then atomically rename over the destination. Before this module the
//! recipe was hand-rolled at each call site (and each copy skipped the
//! fsync); [`atomic_write`] is the single shared implementation.
//!
//! The atomicity guarantee is the filesystem's `rename(2)` contract: a
//! reader (or a post-crash recovery pass) sees either the previous
//! complete file or the new complete file, never a mixture and never a
//! truncated tail. The fsync before the rename closes the
//! data-loss-on-power-cut window that `write` + `rename` alone leaves
//! open.

use std::io::Write as _;
use std::path::Path;

/// Atomically replace `path` with `bytes`.
///
/// Parent directories are created as needed. The contents are written to
/// a `.tmp`-suffixed sibling in the same directory (so the final rename
/// cannot cross a filesystem boundary), flushed and fsynced, and then
/// renamed over `path`. On any error the destination is untouched; a
/// leftover `.tmp` sibling from an aborted attempt is simply overwritten
/// by the next call.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_sibling(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Best-effort cleanup; the rename error is the one that matters.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The temporary sibling `atomic_write` stages into: `path` with `.tmp`
/// appended to the full file name (not substituted for the extension, so
/// `a.json` and `a` never collide on the same temp name as `a.json.tmp`
/// vs `a.tmp`).
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hc-fsio-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("replace");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.json");
        atomic_write(&path, b"first").expect("first write");
        assert_eq!(std::fs::read(&path).expect("read back"), b"first");
        atomic_write(&path, b"second, longer contents").expect("second write");
        assert_eq!(
            std::fs::read(&path).expect("read back"),
            b"second, longer contents"
        );
        // No temp sibling is left behind after a successful write.
        assert!(!tmp_sibling(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_destination_intact() {
        let dir = scratch("intact");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("out.bin");
        atomic_write(&path, b"durable").expect("seed write");
        // Writing to a path whose parent is a *file* must fail without
        // touching the original.
        let bad = path.join("child.bin");
        assert!(atomic_write(&bad, b"x").is_err());
        assert_eq!(std::fs::read(&path).expect("read back"), b"durable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_name_appends_full_suffix() {
        assert_eq!(
            tmp_sibling(Path::new("/a/b/c.json")),
            Path::new("/a/b/c.json.tmp")
        );
        assert_eq!(tmp_sibling(Path::new("/a/b/c")), Path::new("/a/b/c.tmp"));
    }
}
