//! # Sync facade — the one gate between workspace code and the OS
//!
//! Every crate in this workspace synchronizes through these wrappers
//! instead of `std::sync` / `std::thread` (enforced by `hc-check`'s
//! `lint-sync` pass). In a normal build each wrapper compiles down to the
//! corresponding `std` primitive with poison swallowed (parking_lot
//! semantics: a poisoned lock hands back the inner guard). Under
//! `--cfg hc_check` the same wrappers additionally report every
//! acquisition, release, atomic access and thread event to the
//! `model` scheduler, which serializes the program onto one running
//! thread at a time and exhaustively explores interleavings — a
//! hand-rolled analogue of `loom`.
//!
//! ## Naming locks
//!
//! Locks carry a `&'static str` class name ([`Mutex::named`]) used by the
//! model's lock-order analysis: acquisition edges are recorded between
//! *names*, so every "plan-shard" mutex is one node regardless of how
//! many shard instances exist. Unnamed locks share the `"mutex"` class.
//!
//! ## Hazard-flagged locks
//!
//! [`Mutex::hazard`] marks a lock whose guard must never be held across a
//! device-execution boundary (the `Workspace` arena invariant).
//! Guard acquisition/release maintains a thread-local count and
//! [`assert_no_hazard_guards`] — called at the top of
//! `DeviceSpec::execute` — turns a violation into a debug-build panic
//! instead of a convention.

pub mod channel;

#[cfg(hc_check)]
pub mod model;

#[cfg(hc_check)]
pub use model::RaceCell;

pub use channel::{Bounded, TrySendError};

pub use std::sync::atomic::Ordering;

use std::cell::Cell;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

thread_local! {
    /// Count of live hazard-flagged guards on this thread.
    static HAZARD_GUARDS: Cell<u32> = const { Cell::new(0) };
}

/// Debug-assert that no hazard-flagged lock guard (see [`Mutex::hazard`])
/// is live on the calling thread. Call sites name themselves so the
/// panic message points at the boundary that was crossed, e.g.
/// `DeviceSpec::execute`.
pub fn assert_no_hazard_guards(site: &str) {
    #[cfg(debug_assertions)]
    {
        let held = HAZARD_GUARDS.with(Cell::get);
        debug_assert_eq!(
            held, 0,
            "hazard-flagged lock guard held across {site}: workspace-class \
             locks must be released before entering a device execution \
             boundary (checkout/check_in around the call, never across it)"
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = site;
}

/// Number of hazard-flagged guards currently live on this thread
/// (diagnostic hook for tests).
pub fn hazard_guards_held() -> u32 {
    HAZARD_GUARDS.with(Cell::get)
}

#[cfg(hc_check)]
fn obj_id<T: ?Sized>(p: *const T) -> u64 {
    p.cast::<()>() as u64
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Mutual exclusion lock: `std::sync::Mutex` with poison swallowed, a
/// lock-class name, and (under `hc_check`) full model instrumentation.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    name: &'static str,
    hazard: bool,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value under the anonymous `"mutex"` lock class.
    pub const fn new(value: T) -> Self {
        Self::named("mutex", value)
    }

    /// Wrap a value under lock class `name` (usable in `static`s).
    pub const fn named(name: &'static str, value: T) -> Self {
        Mutex {
            name,
            hazard: false,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Wrap a value under lock class `name`, flagging its guards as
    /// *hazardous*: they must not be held across a device-execution
    /// boundary (see [`assert_no_hazard_guards`]).
    pub const fn hazard(name: &'static str, value: T) -> Self {
        Mutex {
            name,
            hazard: true,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// The lock-class name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(hc_check)]
        model::op(model::OpKind::MutexLock, obj_id(self), 0, self.name);
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if self.hazard {
            HAZARD_GUARDS.with(|c| c.set(c.get() + 1));
        }
        MutexGuard {
            inner: ManuallyDrop::new(g),
            lock: self,
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(hc_check)]
        if let Some(granted) = model::op(model::OpKind::MutexTryLock, obj_id(self), 0, self.name) {
            if granted == 0 {
                return None;
            }
            // The model granted the lock, so the real acquisition below
            // cannot contend (only one model thread runs at a time).
        }
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        if self.hazard {
            HAZARD_GUARDS.with(|c| c.set(c.get() + 1));
        }
        Some(MutexGuard {
            inner: ManuallyDrop::new(g),
            lock: self,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]; releases (and reports the release to the
/// model) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.lock.hazard {
            HAZARD_GUARDS.with(|c| c.set(c.get().saturating_sub(1)));
        }
        // SAFETY: the guard is dropped exactly once, here; `inner` is
        // never touched again.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        #[cfg(hc_check)]
        model::op(
            model::OpKind::MutexUnlock,
            obj_id(self.lock),
            0,
            self.lock.name,
        );
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock: `std::sync::RwLock` with poison swallowed, a lock
/// class name and model instrumentation.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    name: &'static str,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value under the anonymous `"rwlock"` class.
    pub const fn new(value: T) -> Self {
        Self::named("rwlock", value)
    }

    /// Wrap a value under lock class `name`.
    pub const fn named(name: &'static str, value: T) -> Self {
        RwLock {
            name,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// The lock-class name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(hc_check)]
        model::op(model::OpKind::RwRead, obj_id(self), 0, self.name);
        let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard {
            inner: ManuallyDrop::new(g),
            lock: self,
        }
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(hc_check)]
        model::op(model::OpKind::RwWrite, obj_id(self), 0, self.name);
        let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard {
            inner: ManuallyDrop::new(g),
            lock: self,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<std::sync::RwLockReadGuard<'a, T>>,
    #[cfg_attr(not(hc_check), allow(dead_code))]
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: dropped exactly once, never touched again.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        #[cfg(hc_check)]
        model::op(
            model::OpKind::RwUnlockRead,
            obj_id(self.lock),
            0,
            self.lock.name,
        );
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<std::sync::RwLockWriteGuard<'a, T>>,
    #[cfg_attr(not(hc_check), allow(dead_code))]
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: dropped exactly once, never touched again.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        #[cfg(hc_check)]
        model::op(
            model::OpKind::RwUnlockWrite,
            obj_id(self.lock),
            0,
            self.lock.name,
        );
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Condition variable over the facade [`Mutex`].
///
/// Under the model the wait is approximated as release → park-until
/// notified → reacquire (no spurious wakeups are explored).
#[derive(Debug, Default)]
pub struct Condvar {
    name: &'static str,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// The condvar-class name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// New condition variable under the anonymous `"condvar"` class.
    pub const fn new() -> Self {
        Self::named("condvar")
    }

    /// New condition variable under class `name`.
    pub const fn named(name: &'static str) -> Self {
        Condvar {
            name,
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release `guard`'s mutex and wait for a notification,
    /// reacquiring before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mut guard = ManuallyDrop::new(guard);
        // SAFETY: `guard` is wrapped in ManuallyDrop and forgotten below,
        // so the inner std guard is moved out exactly once.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let lock = guard.lock;
        // `guard` (ManuallyDrop) is dropped without running Drop.
        if lock.hazard {
            HAZARD_GUARDS.with(|c| c.set(c.get().saturating_sub(1)));
        }
        #[cfg(hc_check)]
        let modeled = model::op(
            model::OpKind::CvRelease,
            obj_id(self),
            obj_id(lock),
            self.name,
        )
        .is_some();
        #[cfg(not(hc_check))]
        let modeled = false;
        let g = if modeled {
            #[cfg(hc_check)]
            {
                drop(std_guard);
                // Parks until notified and the mutex is free, then owns
                // the mutex in the model; the real lock cannot contend.
                model::op(
                    model::OpKind::CvReacquire,
                    obj_id(self),
                    obj_id(lock),
                    self.name,
                );
                lock.inner.lock().unwrap_or_else(PoisonError::into_inner)
            }
            #[cfg(not(hc_check))]
            unreachable!()
        } else {
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner)
        };
        if lock.hazard {
            HAZARD_GUARDS.with(|c| c.set(c.get() + 1));
        }
        MutexGuard {
            inner: ManuallyDrop::new(g),
            lock,
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        #[cfg(hc_check)]
        if model::op(model::OpKind::CvNotifyOne, obj_id(self), 0, self.name).is_some() {
            return;
        }
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        #[cfg(hc_check)]
        if model::op(model::OpKind::CvNotifyAll, obj_id(self), 0, self.name).is_some() {
            return;
        }
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! atomic_facade {
    ($(#[$doc:meta])* $name:ident, $std:ty, $ty:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            #[cfg_attr(not(hc_check), allow(dead_code))]
            tracked: bool,
            inner: $std,
        }

        impl $name {
            /// New *tracked* atomic: under the model every access is an
            /// interleaving point explored by the checker.
            pub const fn new(value: $ty) -> Self {
                $name { tracked: true, inner: <$std>::new(value) }
            }

            /// New *untracked* atomic: exempt from model exploration.
            /// For quiescent configuration cells and monotonic stats
            /// counters whose interleavings are not worth state space.
            pub const fn new_untracked(value: $ty) -> Self {
                $name { tracked: false, inner: <$std>::new(value) }
            }

            #[cfg(hc_check)]
            fn trace(&self, kind: model::OpKind) {
                if self.tracked {
                    model::op(kind, obj_id(self), 0, stringify!($name));
                }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $ty {
                #[cfg(hc_check)]
                self.trace(model::OpKind::AtomicLoad);
                self.inner.load(order)
            }

            /// Atomic store.
            pub fn store(&self, value: $ty, order: Ordering) {
                #[cfg(hc_check)]
                self.trace(model::OpKind::AtomicStore);
                self.inner.store(value, order)
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                #[cfg(hc_check)]
                self.trace(model::OpKind::AtomicRmw);
                self.inner.swap(value, order)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                #[cfg(hc_check)]
                self.trace(model::OpKind::AtomicRmw);
                self.inner.fetch_add(value, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                #[cfg(hc_check)]
                self.trace(model::OpKind::AtomicRmw);
                self.inner.fetch_sub(value, order)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                #[cfg(hc_check)]
                self.trace(model::OpKind::AtomicRmw);
                self.inner.fetch_max(value, order)
            }

            /// Atomic min, returning the previous value.
            pub fn fetch_min(&self, value: $ty, order: Ordering) -> $ty {
                #[cfg(hc_check)]
                self.trace(model::OpKind::AtomicRmw);
                self.inner.fetch_min(value, order)
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                #[cfg(hc_check)]
                self.trace(model::OpKind::AtomicRmw);
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    };
}

atomic_facade!(
    /// Facade over `std::sync::atomic::AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
atomic_facade!(
    /// Facade over `std::sync::atomic::AtomicU32`.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
atomic_facade!(
    /// Facade over `std::sync::atomic::AtomicU8`.
    AtomicU8,
    std::sync::atomic::AtomicU8,
    u8
);
atomic_facade!(
    /// Facade over `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

/// Facade over `std::sync::atomic::AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    #[cfg_attr(not(hc_check), allow(dead_code))]
    tracked: bool,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// New tracked atomic flag (model-explored).
    pub const fn new(value: bool) -> Self {
        AtomicBool {
            tracked: true,
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// New untracked atomic flag (exempt from model exploration).
    pub const fn new_untracked(value: bool) -> Self {
        AtomicBool {
            tracked: false,
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> bool {
        #[cfg(hc_check)]
        if self.tracked {
            model::op(model::OpKind::AtomicLoad, obj_id(self), 0, "AtomicBool");
        }
        self.inner.load(order)
    }

    /// Atomic store.
    pub fn store(&self, value: bool, order: Ordering) {
        #[cfg(hc_check)]
        if self.tracked {
            model::op(model::OpKind::AtomicStore, obj_id(self), 0, "AtomicBool");
        }
        self.inner.store(value, order)
    }

    /// Atomic swap, returning the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        #[cfg(hc_check)]
        if self.tracked {
            model::op(model::OpKind::AtomicRmw, obj_id(self), 0, "AtomicBool");
        }
        self.inner.swap(value, order)
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Thread spawning routed through the model under `hc_check`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex as StdMutex};

    #[cfg(hc_check)]
    use super::model;

    /// Panic payload type carried by joins and scope results.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    type PanicSlot = Arc<StdMutex<Option<PanicPayload>>>;

    fn stash_first(slot: &PanicSlot, payload: PanicPayload) -> Option<PanicPayload> {
        let mut s = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if s.is_none() {
            *s = Some(payload);
            None
        } else {
            Some(payload)
        }
    }

    /// Handle to a spawned (non-scoped) thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<Result<T, PanicPayload>>,
        #[cfg(hc_check)]
        tid: Option<usize>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish, returning its value or the
        /// panic payload it raised.
        pub fn join(self) -> Result<T, PanicPayload> {
            #[cfg(hc_check)]
            if let Some(tid) = self.tid {
                model::op(model::OpKind::Join, tid as u64, 0, "join");
            }
            match self.inner.join() {
                Ok(r) => r,
                Err(payload) => Err(payload),
            }
        }
    }

    /// Spawn a thread. Under the model the spawn, the thread body and the
    /// join are all scheduling points explored by the checker.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        #[cfg(hc_check)]
        {
            let token = model::spawn_prepare("thread");
            let tid = token.as_ref().map(|t| t.tid());
            let inner = std::thread::spawn(move || match token {
                Some(tok) => model::child_run(tok, f),
                None => catch_unwind(AssertUnwindSafe(f)),
            });
            JoinHandle { inner, tid }
        }
        #[cfg(not(hc_check))]
        {
            let inner = std::thread::spawn(move || catch_unwind(AssertUnwindSafe(f)));
            JoinHandle { inner }
        }
    }

    /// Handle through which scoped threads are spawned (crossbeam-style:
    /// the closure receives the scope back so workers can nest).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        first_panic: PanicSlot,
        #[cfg(hc_check)]
        children: Arc<StdMutex<Vec<usize>>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. The returned handle yields
        /// `Some(value)`, or `None` if the child panicked (the payload
        /// travels to [`scope`]'s `Err`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, Option<T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let first_panic = Arc::clone(&self.first_panic);
            #[cfg(hc_check)]
            let children = Arc::clone(&self.children);
            #[cfg(hc_check)]
            let token = {
                let tok = model::spawn_prepare("scoped");
                if let Some(t) = &tok {
                    children
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(t.tid());
                }
                tok
            };
            inner.spawn(move || {
                let scope = Scope {
                    inner,
                    first_panic: Arc::clone(&first_panic),
                    #[cfg(hc_check)]
                    children: Arc::clone(&children),
                };
                #[cfg(hc_check)]
                if let Some(tok) = token {
                    return match model::child_run(tok, move || f(&scope)) {
                        Ok(v) => Some(v),
                        Err(payload) => {
                            // Run is aborting (the model recorded the
                            // violation); stash the original payload so a
                            // caller inspecting Err still sees it.
                            if !payload.is::<model::ModelAbort>() {
                                stash_first(&first_panic, payload);
                            }
                            None
                        }
                    };
                }
                match catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        let payload = match stash_first(&first_panic, payload) {
                            None => Box::new("scoped thread panicked (payload captured by scope)")
                                as PanicPayload,
                            Some(p) => p,
                        };
                        resume_unwind(payload)
                    }
                }
            })
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; all are joined before `scope` returns. A panicking child
    /// surfaces as `Err(first_child_payload)` (crossbeam semantics)
    /// rather than unwinding the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let first_panic: PanicSlot = Arc::new(StdMutex::new(None));
        #[cfg(hc_check)]
        let children: Arc<StdMutex<Vec<usize>>> = Arc::new(StdMutex::new(Vec::new()));
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope {
                    inner: s,
                    first_panic: Arc::clone(&first_panic),
                    #[cfg(hc_check)]
                    children: Arc::clone(&children),
                };
                let r = catch_unwind(AssertUnwindSafe(|| f(&scope)));
                #[cfg(hc_check)]
                {
                    match &r {
                        // Model-join every child before std's auto-join so
                        // the scheduler runs them to completion.
                        Ok(_) => model::join_children(&children),
                        // The scope body panicked: release parked children
                        // (they exit via ModelAbort) so auto-join returns.
                        Err(_) => model::abort_if_active(),
                    }
                }
                match r {
                    Ok(v) => v,
                    Err(payload) => resume_unwind(payload),
                }
            })
        }));
        match result {
            Ok(v) => Ok(v),
            Err(outer) => {
                #[cfg(hc_check)]
                if outer.is::<model::ModelAbort>() || model::active_here() {
                    // Keep aborting the model run; the checker records the
                    // real payload at the run boundary.
                    resume_unwind(outer);
                }
                let stashed = first_panic
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take();
                Err(stashed.unwrap_or(outer))
            }
        }
    }

    /// Host parallelism (`std::thread::available_parallelism`), with a
    /// floor of 1.
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Cooperative yield: a scheduling point under the model, an OS yield
    /// otherwise.
    pub fn yield_now() {
        #[cfg(hc_check)]
        if model::op(model::OpKind::Yield, 0, 0, "yield").is_some() {
            return;
        }
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        static M: Mutex<i32> = Mutex::named("test-static", 0);
        *M.lock() += 41;
        *M.lock() += 1;
        assert_eq!(*M.lock(), 42);
        assert_eq!(M.name(), "test-static");
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(7);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free"), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::named("rw-test", vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn hazard_guard_counting() {
        let safe = Mutex::named("plain", 0u8);
        let hot = Mutex::hazard("arena", 0u8);
        assert_eq!(hazard_guards_held(), 0);
        let g1 = safe.lock();
        assert_eq!(hazard_guards_held(), 0);
        let g2 = hot.lock();
        assert_eq!(hazard_guards_held(), 1);
        assert_no_hazard_guards_would_fail();
        drop(g2);
        assert_eq!(hazard_guards_held(), 0);
        assert_no_hazard_guards("test-site");
        drop(g1);
    }

    #[cfg(debug_assertions)]
    fn assert_no_hazard_guards_would_fail() {
        let r = std::panic::catch_unwind(|| assert_no_hazard_guards("test-site"));
        assert!(r.is_err(), "hazard assert must fire with a live guard");
    }

    #[cfg(not(debug_assertions))]
    fn assert_no_hazard_guards_would_fail() {}

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::named("cv-mutex", false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            done = cv.wait(done);
        }
        drop(done);
        h.join().expect("notifier joins");
    }

    #[test]
    fn atomics_roundtrip() {
        let a = AtomicU64::new_untracked(5);
        assert_eq!(a.fetch_add(3, Ordering::Relaxed), 5);
        assert_eq!(a.load(Ordering::Relaxed), 8);
        a.store(1, Ordering::Relaxed);
        assert_eq!(a.swap(2, Ordering::Relaxed), 1);
        assert_eq!(
            a.compare_exchange(2, 9, Ordering::Relaxed, Ordering::Relaxed),
            Ok(2)
        );
        assert_eq!(a.fetch_max(4, Ordering::Relaxed), 9);
        assert_eq!(a.fetch_min(3, Ordering::Relaxed), 9);
        assert_eq!(a.load(Ordering::Relaxed), 3);
        let b = AtomicBool::new_untracked(false);
        assert!(!b.swap(true, Ordering::Relaxed));
        assert!(b.load(Ordering::Relaxed));
    }

    #[test]
    fn scope_joins_and_captures_panics() {
        let mut data = vec![0u32; 64];
        thread::scope(|scope| {
            for (t, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for (i, cell) in chunk.iter_mut().enumerate() {
                        *cell = (t * 16 + i) as u32;
                    }
                });
            }
        })
        .expect("workers joined");
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));

        let r = thread::scope(|scope| {
            scope.spawn(|_| panic!("child panic"));
        });
        let payload = r.expect_err("child panic surfaces as Err");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"child panic"));
    }

    #[test]
    fn spawn_join_roundtrip() {
        let h = thread::spawn(|| 6 * 7);
        assert_eq!(h.join().expect("clean exit"), 42);
        let h = thread::spawn(|| panic!("boom"));
        let payload = h.join().expect_err("panic propagates via join");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }
}
