//! Bounded MPMC channel built on the facade [`Mutex`] + [`Condvar`].
//!
//! [`Bounded`] is the queue the serving front-end feeds its workers
//! with: a fixed-capacity ring under one named mutex with two condition
//! variables (`<name>-send` / `<name>-recv`). Because it is built
//! entirely from facade primitives, every send/recv interleaving is
//! visible to the `hc_check` model scheduler for free — the front-end
//! model suite explores producer/consumer races without any extra
//! instrumentation here.
//!
//! ## Semantics
//!
//! * **Bounded**: `send` blocks while the queue is full; `try_send`
//!   returns [`TrySendError::Full`] instead. Capacity is fixed at
//!   construction and never grows — the channel can never become the
//!   unbounded buffer the admission layer exists to prevent.
//! * **Closable**: after [`close`](Bounded::close), sends fail and
//!   receivers drain the remaining items, then observe `None`. Closing
//!   is idempotent.
//! * **FIFO**: items are delivered in send order. With one producer and
//!   N consumers that makes dispatch order deterministic; *completion*
//!   order is up to the consumers.
//!
//! There is no `Sender`/`Receiver` split: the serving front-end shares
//! one `&Bounded<T>` across a [`thread::scope`](super::thread::scope),
//! so splitting would only add `Arc` traffic.

use std::collections::VecDeque;

use super::{Condvar, Mutex};

/// Error from [`Bounded::try_send`]; returns the rejected value.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue was at capacity.
    Full(T),
    /// The channel was closed.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// The value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Closed(v) => v,
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity MPMC queue on the facade primitives. See the module
/// docs for semantics.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// Channel holding at most `cap` items (minimum 1), with its mutex
    /// under lock class `name` and condvars under `<name>` as well.
    pub fn new(cap: usize, name: &'static str) -> Bounded<T> {
        let cap = cap.max(1);
        Bounded {
            state: Mutex::named(
                name,
                State {
                    queue: VecDeque::with_capacity(cap),
                    closed: false,
                },
            ),
            not_full: Condvar::named(name),
            not_empty: Condvar::named(name),
            cap,
        }
    }

    /// Block until there is room, then enqueue `v`. Returns `Err(v)` if
    /// the channel is (or becomes, while waiting) closed.
    pub fn send(&self, v: T) -> Result<(), T> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(v);
            }
            if st.queue.len() < self.cap {
                st.queue.push_back(v);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st);
        }
    }

    /// Enqueue `v` without blocking; a full queue or a closed channel
    /// hands the value back as a typed error.
    pub fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(TrySendError::Closed(v));
        }
        if st.queue.len() >= self.cap {
            return Err(TrySendError::Full(v));
        }
        st.queue.push_back(v);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until an item is available (returning it) or the channel is
    /// closed *and* drained (returning `None`).
    pub fn recv(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(v);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st);
        }
    }

    /// Dequeue without blocking; `None` when the queue is momentarily
    /// empty *or* closed-and-drained (use [`is_closed`](Bounded::is_closed)
    /// to tell them apart).
    pub fn try_recv(&self) -> Option<T> {
        let mut st = self.state.lock();
        let v = st.queue.pop_front();
        if v.is_some() {
            drop(st);
            self.not_full.notify_one();
        }
        v
    }

    /// Close the channel: pending items remain receivable, further sends
    /// fail, and every blocked sender/receiver wakes. Idempotent.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Bounded::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Items currently queued (racy outside a quiescent point).
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// True when nothing is queued (racy outside a quiescent point).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::super::thread;
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let ch = Bounded::new(4, "test-chan");
        for i in 0..4 {
            ch.send(i).expect("open channel accepts sends");
        }
        assert_eq!(ch.len(), 4);
        assert_eq!(ch.capacity(), 4);
        for i in 0..4 {
            assert_eq!(ch.recv(), Some(i));
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn try_send_reports_full_then_closed() {
        let ch = Bounded::new(1, "test-chan");
        assert_eq!(ch.try_send(10), Ok(()));
        assert_eq!(ch.try_send(11), Err(TrySendError::Full(11)));
        ch.close();
        assert_eq!(ch.try_send(12), Err(TrySendError::Closed(12)));
        assert_eq!(TrySendError::Full(7).into_inner(), 7);
        // The queued item survives the close.
        assert_eq!(ch.recv(), Some(10));
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let ch = Bounded::new(8, "test-chan");
        for i in 0..3 {
            ch.send(i).expect("open channel accepts sends");
        }
        ch.close();
        ch.close(); // idempotent
        assert!(ch.is_closed());
        assert!(ch.send(99).is_err());
        assert_eq!(ch.try_recv(), Some(0));
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), None);
        assert_eq!(ch.try_recv(), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ch = Bounded::new(0, "test-chan");
        assert_eq!(ch.capacity(), 1);
        assert_eq!(ch.try_send(1), Ok(()));
        assert_eq!(ch.try_send(2), Err(TrySendError::Full(2)));
    }

    #[test]
    fn blocking_send_and_recv_hand_off_across_threads() {
        const N: usize = 64;
        let ch = Bounded::new(2, "test-chan");
        let got = thread::scope(|s| {
            let ch = &ch;
            let consumer = s.spawn(move |_| {
                let mut got = Vec::new();
                while let Some(v) = ch.recv() {
                    got.push(v);
                }
                got
            });
            for i in 0..N {
                ch.send(i).expect("consumer is draining");
            }
            ch.close();
            consumer.join().expect("consumer must not panic")
        })
        .expect("scope must not panic");
        let got = got.expect("consumer ran to completion");
        assert_eq!(got, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn many_producers_one_consumer_deliver_every_item_once() {
        const PRODUCERS: usize = 4;
        const PER: usize = 32;
        let ch = Bounded::new(3, "test-chan");
        let got = thread::scope(|s| {
            let ch = &ch;
            let consumer = s.spawn(move |_| {
                let mut got = Vec::new();
                while let Some(v) = ch.recv() {
                    got.push(v);
                }
                got
            });
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    s.spawn(move |_| {
                        for i in 0..PER {
                            ch.send(p * PER + i).expect("channel is open");
                        }
                    })
                })
                .collect();
            for h in producers {
                h.join().expect("producer must not panic");
            }
            ch.close();
            consumer.join().expect("consumer must not panic")
        })
        .expect("scope must not panic");
        let mut got = got.expect("consumer ran to completion");
        got.sort_unstable();
        assert_eq!(got, (0..PRODUCERS * PER).collect::<Vec<_>>());
    }
}
