//! # Instrumented scheduler behind the sync facade (`--cfg hc_check`)
//!
//! A loom-style cooperative scheduler: when a checker run is active, every
//! facade operation ([`op`]) parks the calling OS thread and hands control
//! to a single global decision point, so exactly one *model thread* runs
//! between consecutive operations. The scheduler replays a caller-supplied
//! schedule prefix and extends it with a deterministic default policy
//! (run-to-completion: stay on the last chosen thread while it remains
//! enabled), recording at every step which threads were enabled and what
//! operation each had pending. The `hc-check` crate drives DFS over those
//! records to enumerate interleavings.
//!
//! On top of the schedule machinery this module maintains:
//!
//! * **vector clocks** per thread, joined through mutex/rwlock
//!   release→acquire pairs, atomic accesses (treated as acquire/release)
//!   and spawn/join edges — the happens-before relation;
//! * **race detection** for [`RaceCell`] accesses (FastTrack-style write
//!   epoch + read epochs checked against the accessor's clock);
//! * a **lock-order graph** over lock *class names*: acquiring `B` while
//!   holding `A` records the edge `A → B` with the acquiring thread and
//!   its held-lock stack; cycles (potential deadlocks) are reported by
//!   the checker. Edges accumulate across all runs of a check session;
//! * **deadlock detection**: a state where unfinished threads exist but
//!   none is enabled aborts the run with every thread's pending
//!   operation and held locks.
//!
//! Threads outside an active run (the common case even under
//! `--cfg hc_check`) pass through the facade untouched: [`op`] returns
//! `None` and the wrappers fall back to plain `std::sync` behaviour.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Panic payload used to unwind model threads when a run aborts
/// (violation found, deadlock, step limit). Not a user-visible error.
pub struct ModelAbort;

/// Kind of a facade operation (one scheduling point each).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// First scheduling point of a spawned thread.
    Start,
    /// `Mutex::lock` (enabled iff unowned).
    MutexLock,
    /// `Mutex::try_lock` (always enabled; result says whether it took).
    MutexTryLock,
    /// Mutex guard drop.
    MutexUnlock,
    /// `RwLock::read` (enabled iff no writer).
    RwRead,
    /// `RwLock::write` (enabled iff no writer and no readers).
    RwWrite,
    /// Read guard drop.
    RwUnlockRead,
    /// Write guard drop.
    RwUnlockWrite,
    /// Tracked atomic load.
    AtomicLoad,
    /// Tracked atomic store.
    AtomicStore,
    /// Tracked atomic read-modify-write (swap/fetch_*/compare_exchange).
    AtomicRmw,
    /// `Condvar::wait` releasing its mutex (`obj2`).
    CvRelease,
    /// `Condvar::wait` reacquiring after a notification (enabled iff a
    /// permit is available and the mutex is free).
    CvReacquire,
    /// `Condvar::notify_one`.
    CvNotifyOne,
    /// `Condvar::notify_all`.
    CvNotifyAll,
    /// [`RaceCell`] read.
    CellRead,
    /// [`RaceCell`] write.
    CellWrite,
    /// Parent side of a thread spawn (`obj` = child tid).
    Spawn,
    /// Join on a finished thread (`obj` = child tid).
    Join,
    /// Explicit yield point.
    Yield,
}

/// Signature of one pending/executed operation.
#[derive(Clone, Copy, Debug)]
pub struct OpSig {
    /// Operation kind.
    pub kind: OpKind,
    /// Primary object identity (address of the facade primitive, or the
    /// child tid for `Spawn`/`Join`).
    pub obj: u64,
    /// Secondary object (the mutex of a condvar wait).
    pub obj2: u64,
    /// Lock-class / object name for reports.
    pub name: &'static str,
}

/// A concurrency violation found during a run.
#[derive(Clone, Debug)]
pub enum Violation {
    /// No enabled thread while unfinished threads remain.
    Deadlock {
        /// Per-thread pending operation and held locks.
        detail: String,
    },
    /// Unsynchronized conflicting access to a [`RaceCell`].
    Race {
        /// Cell name.
        name: &'static str,
        /// Both access sites (thread + operation).
        detail: String,
    },
    /// A model thread panicked with a real (non-abort) payload.
    Panic {
        /// Thread label.
        thread: String,
        /// Panic message.
        message: String,
    },
    /// The replayed schedule chose a thread that was not enabled —
    /// the program under test is not deterministic given a schedule.
    ReplayDivergence {
        /// What diverged.
        detail: String,
    },
    /// A run exceeded the step budget (livelock or runaway loop).
    StepLimit {
        /// The configured budget.
        limit: usize,
    },
    /// Completed runs produced more than one outcome value.
    Nondeterministic {
        /// The distinct outcomes observed (sorted).
        outcomes: Vec<u64>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            Violation::Race { name, detail } => write!(f, "data race on '{name}': {detail}"),
            Violation::Panic { thread, message } => {
                write!(f, "panic in {thread}: {message}")
            }
            Violation::ReplayDivergence { detail } => write!(f, "replay divergence: {detail}"),
            Violation::StepLimit { limit } => write!(f, "step limit {limit} exceeded"),
            Violation::Nondeterministic { outcomes } => {
                write!(f, "nondeterministic outcomes: {outcomes:?}")
            }
        }
    }
}

/// One scheduling decision, as recorded in a run's trace.
#[derive(Clone, Debug)]
pub struct StepRec {
    /// Thread that was chosen to execute its pending operation.
    pub chosen: usize,
    /// The operation it executed.
    pub sig: OpSig,
    /// All threads that were enabled at this point.
    pub enabled: Vec<usize>,
    /// Pending operation of every enabled thread (for DFS alternatives).
    pub pending: Vec<(usize, OpSig)>,
}

/// An acquisition-order edge between two lock classes.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Lock class already held.
    pub from: &'static str,
    /// Lock class acquired while holding `from`.
    pub to: &'static str,
    /// Acquiring thread and its held-lock stack at the acquisition site.
    pub detail: String,
}

/// Everything one run produced.
#[derive(Debug)]
pub struct RunRecord {
    /// The decision trace (one entry per scheduling point).
    pub trace: Vec<StepRec>,
    /// Violations found during the run.
    pub violations: Vec<Violation>,
    /// Whether the run was aborted (violation / step limit).
    pub aborted: bool,
}

#[derive(Debug)]
struct ThreadState {
    name: &'static str,
    registered: bool,
    finished: bool,
    pending: Option<OpSig>,
}

#[derive(Debug, Default)]
struct RwState {
    writer: Option<usize>,
    readers: Vec<usize>,
}

#[derive(Debug, Default)]
struct CellState {
    last_write: Option<(usize, u64)>,
    reads: Vec<(usize, u64)>,
}

#[derive(Default)]
struct ModelState {
    threads: Vec<ThreadState>,
    vc: Vec<Vec<u64>>,
    schedule: Vec<usize>,
    trace: Vec<StepRec>,
    active: Option<usize>,
    last_chosen: Option<usize>,
    abort: bool,
    run_complete: bool,
    total: usize,
    finished: usize,
    max_steps: usize,
    mutex_owner: HashMap<u64, usize>,
    rw: HashMap<u64, RwState>,
    cv_permits: HashMap<u64, u64>,
    release_vc: HashMap<u64, Vec<u64>>,
    cells: HashMap<u64, CellState>,
    held: Vec<Vec<(u64, &'static str)>>,
    violations: Vec<Violation>,
    // Lock-order graph: accumulated across every run of the session.
    edge_keys: HashSet<(&'static str, &'static str)>,
    edges: Vec<LockEdge>,
}

/// The global decision point shared by all threads of a check session.
pub struct Model {
    st: StdMutex<ModelState>,
    cv: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Model>, usize)>> = const { RefCell::new(None) };
}

/// Whether the calling thread is attached to an active model run.
pub fn active_here() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Report one facade operation. Returns `None` when the calling thread is
/// not attached to a model (normal execution), `Some(result)` after the
/// scheduler has granted the operation (`result` is op-specific: 1/0 for
/// `MutexTryLock`, otherwise 0).
pub fn op(kind: OpKind, obj: u64, obj2: u64, name: &'static str) -> Option<u64> {
    if std::thread::panicking() {
        // Guard drops during a ModelAbort unwind must not re-enter the
        // scheduler (the run is already being torn down).
        return None;
    }
    let cur = CURRENT.with(|c| c.borrow().clone());
    let (model, tid) = cur?;
    Some(model.yield_op(
        tid,
        OpSig {
            kind,
            obj,
            obj2,
            name,
        },
    ))
}

/// Token carried from [`spawn_prepare`] (parent side) into the child
/// thread's [`child_run`].
pub struct SpawnToken {
    model: Arc<Model>,
    tid: usize,
}

impl SpawnToken {
    /// Model thread id allocated for the child.
    pub fn tid(&self) -> usize {
        self.tid
    }
}

/// Parent half of a model thread spawn: allocates the child's tid and
/// executes the `Spawn` scheduling point. Returns `None` when the caller
/// is not attached to a model (spawn proceeds as a plain OS thread).
pub fn spawn_prepare(name: &'static str) -> Option<SpawnToken> {
    if std::thread::panicking() {
        return None;
    }
    let cur = CURRENT.with(|c| c.borrow().clone());
    let (model, tid) = cur?;
    let child = {
        let mut st = model.lock_state();
        if st.abort {
            drop(st);
            panic_any(ModelAbort);
        }
        let child = st.threads.len();
        st.threads.push(ThreadState {
            name,
            registered: false,
            finished: false,
            pending: None,
        });
        st.vc.push(vec![0; child + 1]);
        st.held.push(Vec::new());
        child
    };
    model.yield_op(
        tid,
        OpSig {
            kind: OpKind::Spawn,
            obj: child as u64,
            obj2: 0,
            name,
        },
    );
    Some(SpawnToken { model, tid: child })
}

/// Child half of a model thread spawn: attaches the OS thread to the
/// model, runs `f` under the scheduler, records any real panic as a
/// violation, and marks the model thread finished.
pub fn child_run<T>(token: SpawnToken, f: impl FnOnce() -> T) -> Result<T, Box<dyn Any + Send>> {
    let SpawnToken { model, tid } = token;
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&model), tid)));
    let r = catch_unwind(AssertUnwindSafe(|| {
        op(OpKind::Start, 0, 0, "start");
        f()
    }));
    if let Err(payload) = &r {
        if !payload.is::<ModelAbort>() {
            model.record_panic(tid, describe_payload(payload));
        }
    }
    model.finish(tid);
    CURRENT.with(|c| *c.borrow_mut() = None);
    r
}

/// Model-join every child tid in `children` (used by the facade scope to
/// run spawned workers to completion before std's auto-join).
pub fn join_children(children: &Arc<StdMutex<Vec<usize>>>) {
    let tids: Vec<usize> = children
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    for tid in tids {
        op(OpKind::Join, tid as u64, 0, "scope-join");
    }
}

/// Abort the current run if the calling thread is attached to a model
/// (used when a scope body panics with parked children).
pub fn abort_if_active() {
    let cur = CURRENT.with(|c| c.borrow().clone());
    if let Some((model, _)) = cur {
        model.abort_now();
    }
}

/// Attach the calling thread to `model` as the main thread (tid 0).
pub fn attach_main(model: &Arc<Model>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(model), 0)));
}

/// Detach the calling thread from any model.
pub fn detach_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

fn describe_payload(payload: &Box<dyn Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

fn vc_join(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        if *d < s {
            *d = s;
        }
    }
}

fn vc_get(vc: &[u64], i: usize) -> u64 {
    vc.get(i).copied().unwrap_or(0)
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// Fresh model (one per check session).
    pub fn new() -> Self {
        Model {
            st: StdMutex::new(ModelState::default()),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ModelState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Reset per-run state and install the schedule prefix to replay.
    /// Lock-order edges accumulate across runs and are *not* reset.
    pub fn begin_run(&self, schedule: Vec<usize>, max_steps: usize) {
        let mut st = self.lock_state();
        debug_assert!(
            st.finished == st.total,
            "begin_run with {} of {} threads still live",
            st.total - st.finished,
            st.total
        );
        st.threads = vec![ThreadState {
            name: "main",
            registered: true,
            finished: false,
            pending: None,
        }];
        st.vc = vec![vec![1]];
        st.held = vec![Vec::new()];
        st.schedule = schedule;
        st.trace = Vec::new();
        st.active = None;
        st.last_chosen = None;
        st.abort = false;
        st.run_complete = false;
        st.total = 1;
        st.finished = 0;
        st.max_steps = max_steps;
        st.mutex_owner = HashMap::new();
        st.rw = HashMap::new();
        st.cv_permits = HashMap::new();
        st.release_vc = HashMap::new();
        st.cells = HashMap::new();
        st.violations = Vec::new();
    }

    /// Mark the main thread finished; `panic_msg` records a real panic in
    /// the run body as a violation (pass `None` for ModelAbort payloads).
    pub fn finish_main(&self, panic_msg: Option<String>) {
        if let Some(msg) = panic_msg {
            self.record_panic(0, msg);
        }
        self.finish(0);
    }

    /// Block until every model thread of the current run has finished.
    pub fn wait_all_finished(&self) {
        let mut st = self.lock_state();
        while st.finished < st.total {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Collect the run's trace and violations (call after
    /// [`Model::wait_all_finished`]).
    pub fn end_run(&self) -> RunRecord {
        let mut st = self.lock_state();
        RunRecord {
            trace: std::mem::take(&mut st.trace),
            violations: std::mem::take(&mut st.violations),
            aborted: st.abort,
        }
    }

    /// Snapshot of the accumulated lock-order edges.
    pub fn lock_edges(&self) -> Vec<LockEdge> {
        self.lock_state().edges.clone()
    }

    /// Abort the current run: parked threads wake and unwind with
    /// [`ModelAbort`].
    pub fn abort_now(&self) {
        let mut st = self.lock_state();
        st.abort = true;
        self.cv.notify_all();
    }

    fn record_panic(&self, tid: usize, message: String) {
        let mut st = self.lock_state();
        let thread = format!("t{tid} '{}'", st.threads[tid].name);
        st.violations.push(Violation::Panic { thread, message });
        st.abort = true;
        self.cv.notify_all();
    }

    fn finish(&self, tid: usize) {
        let mut st = self.lock_state();
        if st.active == Some(tid) {
            st.active = None;
        }
        if !st.threads[tid].finished {
            st.threads[tid].finished = true;
            st.threads[tid].pending = None;
            st.finished += 1;
        }
        self.try_schedule(&mut st);
        self.cv.notify_all();
    }

    /// Core scheduling point: park with `sig` pending, wait to be chosen,
    /// apply the operation's transition, and resume running.
    fn yield_op(&self, me: usize, sig: OpSig) -> u64 {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            panic_any(ModelAbort);
        }
        if st.active == Some(me) {
            st.active = None;
        }
        st.threads[me].pending = Some(sig);
        self.try_schedule(&mut st);
        loop {
            if st.abort {
                st.threads[me].pending = None;
                drop(st);
                panic_any(ModelAbort);
            }
            if st.active == Some(me) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.threads[me].pending = None;
        let result = self.apply(me, sig, &mut st);
        if st.abort {
            drop(st);
            panic_any(ModelAbort);
        }
        result
    }

    /// Pick the next thread to run, if the system is quiescent (every
    /// registered live thread parked with a pending operation).
    fn try_schedule(&self, st: &mut ModelState) {
        if st.abort || st.run_complete || st.active.is_some() {
            self.cv.notify_all();
            return;
        }
        for t in &st.threads {
            if t.registered && !t.finished && t.pending.is_none() {
                return; // not quiescent yet
            }
        }
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.registered && !t.finished)
            .filter(|(i, t)| t.pending.is_some_and(|sig| Self::enabled(st, *i, sig)))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.threads.iter().all(|t| !t.registered || t.finished) {
                st.run_complete = true;
            } else {
                let detail = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.registered && !t.finished)
                    .map(|(i, t)| {
                        let pend = t
                            .pending
                            .map(|s| format!("{:?} on '{}'", s.kind, s.name))
                            .unwrap_or_else(|| "<running>".to_string());
                        let held: Vec<&str> = st.held[i].iter().map(|&(_, n)| n).collect();
                        format!("t{i} '{}' waiting {pend}, holding {held:?}", t.name)
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                st.violations.push(Violation::Deadlock { detail });
                st.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        let k = st.trace.len();
        let chosen = if k < st.schedule.len() {
            let want = st.schedule[k];
            if enabled.contains(&want) {
                want
            } else {
                st.violations.push(Violation::ReplayDivergence {
                    detail: format!("step {k}: schedule wants t{want}, enabled {enabled:?}"),
                });
                Self::default_choice(&enabled, st.last_chosen)
            }
        } else {
            Self::default_choice(&enabled, st.last_chosen)
        };
        let pending: Vec<(usize, OpSig)> = enabled
            .iter()
            .filter_map(|&i| st.threads[i].pending.map(|s| (i, s)))
            .collect();
        let sig = st.threads[chosen].pending.unwrap_or(OpSig {
            kind: OpKind::Yield,
            obj: 0,
            obj2: 0,
            name: "?",
        });
        st.trace.push(StepRec {
            chosen,
            sig,
            enabled,
            pending,
        });
        if st.trace.len() > st.max_steps {
            st.violations.push(Violation::StepLimit {
                limit: st.max_steps,
            });
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        st.last_chosen = Some(chosen);
        st.active = Some(chosen);
        self.cv.notify_all();
    }

    /// Run-to-completion default: keep the last-chosen thread while it is
    /// enabled, otherwise the lowest-numbered enabled thread.
    fn default_choice(enabled: &[usize], last: Option<usize>) -> usize {
        if let Some(l) = last {
            if enabled.contains(&l) {
                return l;
            }
        }
        enabled[0]
    }

    /// Whether `sig` can execute now (never blocks when granted).
    fn enabled(st: &ModelState, _tid: usize, sig: OpSig) -> bool {
        match sig.kind {
            OpKind::MutexLock => !st.mutex_owner.contains_key(&sig.obj),
            OpKind::RwRead => st.rw.get(&sig.obj).is_none_or(|s| s.writer.is_none()),
            OpKind::RwWrite => st
                .rw
                .get(&sig.obj)
                .is_none_or(|s| s.writer.is_none() && s.readers.is_empty()),
            OpKind::CvReacquire => {
                st.cv_permits.get(&sig.obj).copied().unwrap_or(0) > 0
                    && !st.mutex_owner.contains_key(&sig.obj2)
            }
            OpKind::Join => st.threads.get(sig.obj as usize).is_some_and(|t| t.finished),
            _ => true,
        }
    }

    fn record_lock_edges(st: &mut ModelState, me: usize, name: &'static str) {
        let held: Vec<&'static str> = st.held[me].iter().map(|&(_, n)| n).collect();
        for &from in &held {
            if from == name || !st.edge_keys.insert((from, name)) {
                continue;
            }
            let detail = format!(
                "t{me} '{}' acquired '{name}' while holding {held:?}",
                st.threads[me].name
            );
            st.edges.push(LockEdge {
                from,
                to: name,
                detail,
            });
        }
    }

    fn acquire_vc(st: &mut ModelState, me: usize, obj: u64) {
        if let Some(rvc) = st.release_vc.get(&obj) {
            let rvc = rvc.clone();
            vc_join(&mut st.vc[me], &rvc);
        }
    }

    fn release_vc_update(st: &mut ModelState, me: usize, obj: u64) {
        let my = st.vc[me].clone();
        let slot = st.release_vc.entry(obj).or_default();
        vc_join(slot, &my);
        st.vc[me][me] += 1;
    }

    fn remove_held(st: &mut ModelState, me: usize, obj: u64) {
        if let Some(pos) = st.held[me].iter().rposition(|&(o, _)| o == obj) {
            st.held[me].remove(pos);
        }
    }

    /// Execute `sig`'s state transition for thread `me`. Called only when
    /// the scheduler granted the (enabled) operation.
    fn apply(&self, me: usize, sig: OpSig, st: &mut ModelState) -> u64 {
        match sig.kind {
            OpKind::Start | OpKind::Yield => 0,
            OpKind::MutexLock => {
                Self::record_lock_edges(st, me, sig.name);
                st.mutex_owner.insert(sig.obj, me);
                st.held[me].push((sig.obj, sig.name));
                Self::acquire_vc(st, me, sig.obj);
                0
            }
            OpKind::MutexTryLock => {
                if st.mutex_owner.contains_key(&sig.obj) {
                    0
                } else {
                    Self::record_lock_edges(st, me, sig.name);
                    st.mutex_owner.insert(sig.obj, me);
                    st.held[me].push((sig.obj, sig.name));
                    Self::acquire_vc(st, me, sig.obj);
                    1
                }
            }
            OpKind::MutexUnlock => {
                st.mutex_owner.remove(&sig.obj);
                Self::remove_held(st, me, sig.obj);
                Self::release_vc_update(st, me, sig.obj);
                0
            }
            OpKind::RwRead => {
                Self::record_lock_edges(st, me, sig.name);
                st.rw.entry(sig.obj).or_default().readers.push(me);
                st.held[me].push((sig.obj, sig.name));
                Self::acquire_vc(st, me, sig.obj);
                0
            }
            OpKind::RwWrite => {
                Self::record_lock_edges(st, me, sig.name);
                st.rw.entry(sig.obj).or_default().writer = Some(me);
                st.held[me].push((sig.obj, sig.name));
                Self::acquire_vc(st, me, sig.obj);
                0
            }
            OpKind::RwUnlockRead => {
                if let Some(s) = st.rw.get_mut(&sig.obj) {
                    if let Some(pos) = s.readers.iter().position(|&r| r == me) {
                        s.readers.remove(pos);
                    }
                }
                Self::remove_held(st, me, sig.obj);
                Self::release_vc_update(st, me, sig.obj);
                0
            }
            OpKind::RwUnlockWrite => {
                if let Some(s) = st.rw.get_mut(&sig.obj) {
                    s.writer = None;
                }
                Self::remove_held(st, me, sig.obj);
                Self::release_vc_update(st, me, sig.obj);
                0
            }
            OpKind::AtomicLoad => {
                Self::acquire_vc(st, me, sig.obj);
                0
            }
            OpKind::AtomicStore => {
                Self::release_vc_update(st, me, sig.obj);
                0
            }
            OpKind::AtomicRmw => {
                Self::acquire_vc(st, me, sig.obj);
                Self::release_vc_update(st, me, sig.obj);
                0
            }
            OpKind::CvRelease => {
                st.mutex_owner.remove(&sig.obj2);
                Self::remove_held(st, me, sig.obj2);
                Self::release_vc_update(st, me, sig.obj2);
                0
            }
            OpKind::CvReacquire => {
                if let Some(p) = st.cv_permits.get_mut(&sig.obj) {
                    *p = p.saturating_sub(1);
                }
                Self::record_lock_edges(st, me, sig.name);
                st.mutex_owner.insert(sig.obj2, me);
                st.held[me].push((sig.obj2, sig.name));
                Self::acquire_vc(st, me, sig.obj);
                Self::acquire_vc(st, me, sig.obj2);
                0
            }
            OpKind::CvNotifyOne => {
                *st.cv_permits.entry(sig.obj).or_insert(0) += 1;
                Self::release_vc_update(st, me, sig.obj);
                0
            }
            OpKind::CvNotifyAll => {
                let p = st.cv_permits.entry(sig.obj).or_insert(0);
                *p = p.saturating_add(1 << 20);
                Self::release_vc_update(st, me, sig.obj);
                0
            }
            OpKind::CellRead => {
                let my_clock = vc_get(&st.vc[me], me);
                let mut race: Option<String> = None;
                if let Some(cell) = st.cells.get(&sig.obj) {
                    if let Some((w, wc)) = cell.last_write {
                        if w != me && vc_get(&st.vc[me], w) < wc {
                            race = Some(format!(
                                "read by t{me} '{}' concurrent with write by t{w}",
                                st.threads[me].name
                            ));
                        }
                    }
                }
                let cell = st.cells.entry(sig.obj).or_default();
                if let Some(pos) = cell.reads.iter().position(|&(t, _)| t == me) {
                    cell.reads[pos] = (me, my_clock);
                } else {
                    cell.reads.push((me, my_clock));
                }
                if let Some(detail) = race {
                    st.violations.push(Violation::Race {
                        name: sig.name,
                        detail,
                    });
                    st.abort = true;
                    self.cv.notify_all();
                }
                0
            }
            OpKind::CellWrite => {
                let my_clock = vc_get(&st.vc[me], me);
                let mut race: Option<String> = None;
                if let Some(cell) = st.cells.get(&sig.obj) {
                    if let Some((w, wc)) = cell.last_write {
                        if w != me && vc_get(&st.vc[me], w) < wc {
                            race = Some(format!(
                                "write by t{me} '{}' concurrent with write by t{w}",
                                st.threads[me].name
                            ));
                        }
                    }
                    if race.is_none() {
                        for &(r, rc) in &cell.reads {
                            if r != me && vc_get(&st.vc[me], r) < rc {
                                race = Some(format!(
                                    "write by t{me} '{}' concurrent with read by t{r}",
                                    st.threads[me].name
                                ));
                                break;
                            }
                        }
                    }
                }
                let cell = st.cells.entry(sig.obj).or_default();
                cell.last_write = Some((me, my_clock));
                cell.reads.clear();
                if let Some(detail) = race {
                    st.violations.push(Violation::Race {
                        name: sig.name,
                        detail,
                    });
                    st.abort = true;
                    self.cv.notify_all();
                }
                0
            }
            OpKind::Spawn => {
                let child = sig.obj as usize;
                st.threads[child].registered = true;
                st.total += 1;
                let parent_vc = st.vc[me].clone();
                vc_join(&mut st.vc[child], &parent_vc);
                let c = vc_get(&st.vc[child], child).max(1);
                if st.vc[child].len() <= child {
                    st.vc[child].resize(child + 1, 0);
                }
                st.vc[child][child] = c;
                st.vc[me][me] += 1;
                0
            }
            OpKind::Join => {
                let child = sig.obj as usize;
                let child_vc = st.vc[child].clone();
                vc_join(&mut st.vc[me], &child_vc);
                0
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RaceCell
// ---------------------------------------------------------------------------

/// A deliberately unsynchronized shared cell, available only under
/// `--cfg hc_check`, for exposing code paths to the model's race
/// detector. Under an active model only one thread runs at a time, so the
/// underlying accesses never physically race; the *model* flags the
/// missing happens-before edge. Accessing a `RaceCell` from multiple
/// threads outside an active model run is not supported.
#[derive(Debug)]
pub struct RaceCell<T> {
    name: &'static str,
    inner: std::cell::UnsafeCell<T>,
}

// SAFETY: accesses are serialized by the model scheduler (one running
// thread at a time); see the type-level docs for the out-of-model caveat.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    /// New cell named for race reports.
    pub const fn new(name: &'static str, value: T) -> Self {
        RaceCell {
            name,
            inner: std::cell::UnsafeCell::new(value),
        }
    }

    /// Read the value (a `CellRead` scheduling point).
    pub fn get(&self) -> T {
        op(OpKind::CellRead, self as *const Self as u64, 0, self.name);
        // SAFETY: the model serializes all attached threads; detached use
        // is single-threaded by contract.
        unsafe { *self.inner.get() }
    }

    /// Write the value (a `CellWrite` scheduling point).
    pub fn set(&self, value: T) {
        op(OpKind::CellWrite, self as *const Self as u64, 0, self.name);
        // SAFETY: as in `get`.
        unsafe { *self.inner.get() = value }
    }
}
