//! # hc-parallel — deterministic scoped worker pool
//!
//! Host-side multi-threading for the HC-SpMM reproduction. Every parallel
//! region in the workspace goes through this crate so that one knob (the
//! `--threads` CLI flag, the `HC_THREADS` environment variable, or
//! [`set_threads`]) controls them all.
//!
//! ## Determinism guarantee
//!
//! All entry points decompose work into *indexed slots* — output slot `i`
//! is computed by exactly one worker, from inputs that do not depend on
//! scheduling, with the same per-slot arithmetic order as the serial loop.
//! Worker threads only race for *which* slot they compute next, never for
//! the slot's contents, so results are bit-identical to the serial
//! execution at any thread count. Reductions (sums, argmins, …) are the
//! caller's job: collect per-slot partials with [`par_map_indexed`] and
//! fold them in index order on the calling thread.
//!
//! ## Pool shape
//!
//! The pool is *scoped*: each parallel region spawns up to [`threads`]
//! workers via `crossbeam::thread::scope` (std scoped threads underneath),
//! which lets closures borrow the caller's data without `'static` bounds.
//! Work items are handed out in deterministic index batches from a
//! `parking_lot::Mutex`-guarded queue, so a skewed item (a dense row
//! window among sparse ones) does not serialize the region the way static
//! chunking would. A panic in any worker is re-raised on the calling
//! thread once the region drains.
//!
//! Regions whose `work` hint is below [`MIN_PARALLEL_WORK`] run inline on
//! the calling thread: thread spawn costs (~tens of µs) would dominate.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Process-wide thread-count override set by [`set_threads`] (0 = unset).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Scalar-operation threshold below which parallel regions run inline.
///
/// Calibrated against thread-spawn cost: at ~1 ns/op, 32 Ki ops is well
/// under the cost of standing up even two workers.
pub const MIN_PARALLEL_WORK: u64 = 1 << 15;

/// Set the process-wide worker count. `0` clears the override, restoring
/// the `HC_THREADS` / available-parallelism default. Wired to the CLI's
/// `--threads` flag.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The current [`set_threads`] override (`0` when unset). Lets callers
/// save/restore the configuration around a measurement at a forced count.
pub fn thread_override() -> usize {
    THREAD_OVERRIDE.load(Ordering::Relaxed)
}

/// Effective worker count for parallel regions, in priority order:
/// [`set_threads`] override, then the `HC_THREADS` environment variable,
/// then `std::thread::available_parallelism()`.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Some(n) = std::env::var("HC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether a region of `work` scalar operations is worth parallelizing
/// under the current configuration.
pub fn should_parallelize(work: u64) -> bool {
    work >= MIN_PARALLEL_WORK && threads() > 1
}

/// Run `f(i, item)` for every `(i, item)`, distributing items over the
/// pool. Items are claimed in deterministic index batches; `f` must not
/// rely on cross-item execution order (it cannot observe one anyway
/// without interior mutability).
fn run_indexed<I, F>(items: Vec<(usize, I)>, work: u64, f: &F)
where
    I: Send,
    F: Fn(usize, I) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let nthreads = threads().min(n);
    if nthreads <= 1 || work < MIN_PARALLEL_WORK {
        for (i, item) in items {
            f(i, item);
        }
        return;
    }
    // Batch grain: enough batches per worker that a skewed batch can be
    // absorbed by the others, few enough that queue locking stays cold.
    let grain = n.div_ceil(nthreads * 8).max(1);
    let queue = Mutex::new(items.into_iter());
    let result = crossbeam::thread::scope(|scope| {
        for _ in 0..nthreads {
            scope.spawn(|_| loop {
                let batch: Vec<(usize, I)> = {
                    let mut q = queue.lock();
                    q.by_ref().take(grain).collect()
                };
                if batch.is_empty() {
                    return;
                }
                for (i, item) in batch {
                    f(i, item);
                }
            });
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

/// Split `data` into `chunk_size`-sized chunks (the last may be shorter)
/// and run `f(chunk_index, chunk)` over the pool. Each chunk is visited
/// exactly once; chunk `i` always holds elements
/// `data[i*chunk_size .. (i+1)*chunk_size]`, so output placement is
/// independent of scheduling. `work` is the region's total scalar-op hint
/// (see [`MIN_PARALLEL_WORK`]).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, work: u64, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_size).enumerate().collect();
    run_indexed(chunks, work, &f);
}

/// Deterministic parallel map over an index range: returns
/// `(0..n).map(f).collect()`, computed on the pool. Slot `i` of the output
/// is `f(i)` regardless of thread count.
pub fn par_map_indexed<R, F>(n: usize, work: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    par_chunks_mut(&mut out, 1, work, |i, slot| slot[0] = Some(f(i)));
    out.into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Deterministic parallel map over a slice: `items.iter().map(f).collect()`
/// computed on the pool, with output order preserved.
pub fn par_map<T, R, F>(items: &[T], work: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), work, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Work hint that always takes the parallel path (when threads > 1).
    const BIG: u64 = u64::MAX;

    /// Serializes tests that touch the process-wide thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn zero_and_one_item_workloads() {
        let empty: Vec<i32> = par_map_indexed(0, BIG, |i| i as i32);
        assert!(empty.is_empty());
        let one = par_map_indexed(1, BIG, |i| i * 10);
        assert_eq!(one, vec![0]);
        let mut data: [u8; 0] = [];
        par_chunks_mut(&mut data, 4, BIG, |_, _| panic!("no chunks to visit"));
    }

    #[test]
    fn map_matches_serial_at_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock();
        let items: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = items.iter().map(|&v| v.wrapping_mul(v) ^ 0xabcd).collect();
        let saved = thread_override();
        for t in [1, 2, 3, 8, 64] {
            set_threads(t);
            let got = par_map(&items, BIG, |&v| v.wrapping_mul(v) ^ 0xabcd);
            assert_eq!(got, serial, "thread count {t}");
        }
        set_threads(saved);
    }

    #[test]
    fn chunks_are_disjoint_and_complete() {
        let _guard = OVERRIDE_LOCK.lock();
        let saved = thread_override();
        set_threads(7);
        let mut data = vec![0u32; 1000];
        par_chunks_mut(&mut data, 16, BIG, |i, chunk| {
            for (j, cell) in chunk.iter_mut().enumerate() {
                *cell = (i * 16 + j) as u32 + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        set_threads(saved);
    }

    #[test]
    fn skewed_workloads_still_deterministic() {
        let _guard = OVERRIDE_LOCK.lock();
        // One item 1000× heavier than the rest: dynamic batching means the
        // other workers absorb the remaining items, and output is unchanged.
        let saved = thread_override();
        set_threads(4);
        let costly = |i: usize| -> u64 {
            let iters = if i == 0 { 200_000 } else { 200 };
            (0..iters).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let par = par_map_indexed(64, BIG, costly);
        set_threads(1);
        let serial = par_map_indexed(64, BIG, costly);
        assert_eq!(par, serial);
        set_threads(saved);
    }

    #[test]
    fn worker_panic_propagates() {
        let _guard = OVERRIDE_LOCK.lock();
        let saved = thread_override();
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(256, BIG, |i| {
                if i == 97 {
                    panic!("worker 97 exploded");
                }
                i
            })
        });
        set_threads(saved);
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("worker 97 exploded"), "payload: {msg:?}");
    }

    #[test]
    fn small_work_runs_inline() {
        // Below MIN_PARALLEL_WORK the region must still produce the same
        // result (and not deadlock when nested inside another region).
        let got = par_map_indexed(8, 10, |i| {
            // a nested tiny region
            par_map_indexed(4, 10, move |j| i * 4 + j)
        });
        let want: Vec<Vec<usize>> = (0..8)
            .map(|i| (0..4).map(|j| i * 4 + j).collect())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn set_threads_overrides_and_clears() {
        let _guard = OVERRIDE_LOCK.lock();
        let saved = thread_override();
        set_threads(3);
        assert_eq!(threads(), 3);
        assert_eq!(thread_override(), 3);
        set_threads(0);
        assert!(threads() >= 1);
        set_threads(saved);
    }
}
