//! # hc-parallel — deterministic scoped worker pool
//!
//! Host-side multi-threading for the HC-SpMM reproduction. Every parallel
//! region in the workspace goes through this crate so that one knob (the
//! `--threads` CLI flag, the `HC_THREADS` environment variable, or
//! [`set_threads`]) controls them all.
//!
//! ## Determinism guarantee
//!
//! All entry points decompose work into *indexed slots* — output slot `i`
//! is computed by exactly one worker, from inputs that do not depend on
//! scheduling, with the same per-slot arithmetic order as the serial loop.
//! Worker threads only race for *which* slot they compute next, never for
//! the slot's contents, so results are bit-identical to the serial
//! execution at any thread count. Reductions (sums, argmins, …) are the
//! caller's job: collect per-slot partials with [`par_map_indexed`] and
//! fold them in index order on the calling thread.
//!
//! ## Pool shape
//!
//! The pool is *scoped*: each parallel region spawns up to [`threads`]
//! workers via [`sync::thread::scope`] (std scoped threads underneath),
//! which lets closures borrow the caller's data without `'static` bounds.
//! Work items are handed out in deterministic index batches from a
//! [`sync::Mutex`]-guarded queue, so a skewed item (a dense row
//! window among sparse ones) does not serialize the region the way static
//! chunking would. A panic in any worker is re-raised on the calling
//! thread once the region drains.
//!
//! All synchronization goes through the [`sync`] facade so the pool's
//! internals are explorable by `hc-check`'s model scheduler under
//! `--cfg hc_check` (and lintable by its `lint-sync` pass).
//!
//! ## Calibrated engagement (the serial fast path)
//!
//! Whether a region actually spawns workers is decided per call from the
//! caller's `work` hint (scalar operations, the same unit the simulated
//! cost model reports) and a one-time host [`calibration`]: the estimated
//! serial time saved by fanning out over `min(threads, physical cores)`
//! workers must repay the measured thread-spawn cost several times over,
//! and `work` must clear the [`MIN_PARALLEL_WORK`] floor. Regions that do
//! not qualify run inline on the calling thread and are counted as
//! *serial fallbacks* (see [`pool_stats`]) — on a single-core host every
//! region falls back, which is exactly the fast path: forced `--threads N`
//! parallelism there is pure overhead. Because the parallel and serial
//! executions are bit-identical, the engagement decision is a pure
//! scheduling choice and never changes results.

pub mod fsio;
pub mod sync;

use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::OnceLock;
use std::time::Instant;

use sync::{AtomicU64, AtomicU8, AtomicUsize, Mutex, Ordering};

/// Process-wide thread-count override set by [`set_threads`] (0 = unset).
/// Untracked: a quiescent configuration cell, not contended state.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new_untracked(0);

/// Scalar-operation threshold below which parallel regions always run
/// inline, regardless of calibration: at ~1 ns/op, 32 Ki ops is well under
/// the cost of standing up even two workers.
pub const MIN_PARALLEL_WORK: u64 = 1 << 15;

/// How many times the spawn cost must be repaid by the estimated parallel
/// saving before a region fans out. Spawning is only worth it when the
/// region is clearly — not marginally — large enough.
const SPAWN_REPAY_FACTOR: f64 = 4.0;

/// Target batch duration handed out per queue lock, in nanoseconds. Large
/// enough that queue locking stays cold, small enough that a skewed batch
/// can be absorbed by the other workers.
const TARGET_BATCH_NS: f64 = 20_000.0;

/// Set the process-wide worker count. `0` clears the override, restoring
/// the `HC_THREADS` / available-parallelism default. Wired to the CLI's
/// `--threads` flag.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The current [`set_threads`] override (`0` when unset). Lets callers
/// save/restore the configuration around a measurement at a forced count.
pub fn thread_override() -> usize {
    THREAD_OVERRIDE.load(Ordering::Relaxed)
}

/// Effective worker count for parallel regions, in priority order:
/// [`set_threads`] override, then the `HC_THREADS` environment variable,
/// then `std::thread::available_parallelism()`.
pub fn threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Some(n) = std::env::var("HC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    sync::thread::available_parallelism()
}

/// How parallel regions decide between fanning out and the serial fast
/// path. The default [`Auto`](ParallelMode::Auto) applies the calibrated
/// profitability model; the other two exist for tests and measurements
/// that must pin one side of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelMode {
    /// Calibrated decision (the default): fan out only when the estimated
    /// saving repays the spawn cost on this host.
    Auto,
    /// Always fan out when `threads() > 1` and there is more than one
    /// item, ignoring calibration. For exercising the pool itself.
    Force,
    /// Never fan out. Equivalent to `threads() == 1` for every region.
    Never,
}

static PARALLEL_MODE: AtomicU8 = AtomicU8::new_untracked(0);

/// Override the engagement policy process-wide (see [`ParallelMode`]).
/// Results are bit-identical in every mode; only scheduling changes.
pub fn set_parallel_mode(mode: ParallelMode) {
    let v = match mode {
        ParallelMode::Auto => 0,
        ParallelMode::Force => 1,
        ParallelMode::Never => 2,
    };
    PARALLEL_MODE.store(v, Ordering::Relaxed);
}

/// The current engagement policy.
pub fn parallel_mode() -> ParallelMode {
    match PARALLEL_MODE.load(Ordering::Relaxed) {
        1 => ParallelMode::Force,
        2 => ParallelMode::Never,
        _ => ParallelMode::Auto,
    }
}

/// One-time host measurement that prices the parallel/serial decision.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Measured cost of standing up one scoped worker thread, ns.
    pub spawn_ns: f64,
    /// Measured host nanoseconds per scalar-op work unit.
    pub ns_per_unit: f64,
    /// Physical parallelism of the host (`available_parallelism`),
    /// independent of the configured [`threads`] count. Workers beyond
    /// this count cannot speed anything up.
    pub cores: usize,
}

static CALIBRATION: OnceLock<Calibration> = OnceLock::new();

fn measure_calibration() -> Calibration {
    let cores = sync::thread::available_parallelism();
    // ns per scalar work unit: time a simple dependent arithmetic loop
    // (the same flavour of work the kernels' hot loops do) and take the
    // best of a few reps so preemption only inflates discarded samples.
    const UNITS: u64 = 1 << 16;
    let mut ns_per_unit = f64::MAX;
    let mut sink = 0u64;
    for rep in 0..3u64 {
        let t = Instant::now();
        let mut acc = rep;
        for k in 0..UNITS {
            acc = acc.wrapping_mul(31).wrapping_add(k);
        }
        let dt = t.elapsed().as_nanos() as f64 / UNITS as f64;
        sink = sink.wrapping_add(acc);
        ns_per_unit = ns_per_unit.min(dt);
    }
    std::hint::black_box(sink);
    let ns_per_unit = ns_per_unit.clamp(0.05, 100.0);
    // Spawn cost: time an empty two-worker scoped region, best of a few.
    let mut spawn_ns = f64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let r = sync::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|_| {});
            }
        });
        debug_assert!(r.is_ok());
        spawn_ns = spawn_ns.min(t.elapsed().as_nanos() as f64 / 2.0);
    }
    let spawn_ns = spawn_ns.clamp(1_000.0, 50_000_000.0);
    Calibration {
        spawn_ns,
        ns_per_unit,
        cores,
    }
}

/// The lazily measured host [`Calibration`] (one measurement per process,
/// a few hundred microseconds on first use).
///
/// Measurements persist to `target/hc-calibration.json` keyed by core
/// count (override the location with `HC_CALIBRATION_PATH`, disable
/// persistence by setting it empty), so repeated bench runs skip the
/// re-measurement. An absent, unparsable or out-of-range entry falls
/// back to a fresh measurement. Under an active `hc-check` model run a
/// fixed synthetic calibration is returned instead, keeping the
/// engagement decision deterministic across explored interleavings.
pub fn calibration() -> Calibration {
    #[cfg(hc_check)]
    if sync::model::active_here() {
        return Calibration {
            spawn_ns: 20_000.0,
            ns_per_unit: 1.0,
            cores: 1,
        };
    }
    *CALIBRATION.get_or_init(|| {
        let cores = sync::thread::available_parallelism();
        let path = calibration_path();
        if let Some(p) = &path {
            if let Some(cal) = load_calibration(p, cores) {
                return cal;
            }
        }
        let cal = measure_calibration();
        if let Some(p) = &path {
            save_calibration(p, cal);
        }
        cal
    })
}

/// Where calibration entries persist: `HC_CALIBRATION_PATH` when set
/// (empty string disables persistence), else `hc-calibration.json` inside
/// the enclosing cargo `target` directory (found by walking up from the
/// running executable), else `target/hc-calibration.json` relative to the
/// working directory.
fn calibration_path() -> Option<std::path::PathBuf> {
    match std::env::var("HC_CALIBRATION_PATH") {
        Ok(v) if v.is_empty() => None,
        Ok(v) => Some(std::path::PathBuf::from(v)),
        Err(_) => {
            let from_exe = std::env::current_exe().ok().and_then(|exe| {
                exe.ancestors()
                    .find(|a| a.file_name().is_some_and(|n| n == "target"))
                    .map(|t| t.join("hc-calibration.json"))
            });
            Some(
                from_exe.unwrap_or_else(|| {
                    std::path::PathBuf::from("target").join("hc-calibration.json")
                }),
            )
        }
    }
}

/// Every numeric value following `"key":` occurrences in `text`, in order.
fn nums_after(text: &str, key: &str) -> Vec<f64> {
    let pat = format!("\"{key}\"");
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(idx) = text[pos..].find(&pat) {
        let after_key = pos + idx + pat.len();
        let Some(colon) = text[after_key..].find(':') else {
            break;
        };
        let num_start = after_key + colon + 1;
        let rest = text[num_start..].trim_start();
        let trimmed = text[num_start..].len() - rest.len();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse::<f64>() {
            out.push(v);
        }
        pos = num_start + trimmed + end;
    }
    out
}

/// Parse every valid calibration entry out of a persisted file. Entries
/// with out-of-range values (a stale or corrupt file) are dropped.
fn parse_calibration_entries(text: &str) -> Vec<Calibration> {
    if nums_after(text, "version").first().copied() != Some(1.0) {
        return Vec::new();
    }
    let cores = nums_after(text, "cores");
    let spawn = nums_after(text, "spawn_ns");
    let unit = nums_after(text, "ns_per_unit");
    cores
        .iter()
        .zip(spawn.iter())
        .zip(unit.iter())
        .filter_map(|((&c, &s), &u)| {
            let cores_ok = (1.0..=1_000_000.0).contains(&c) && c.fract() == 0.0;
            let spawn_ok = (1_000.0..=50_000_000.0).contains(&s);
            let unit_ok = (0.05..=100.0).contains(&u);
            (cores_ok && spawn_ok && unit_ok).then_some(Calibration {
                spawn_ns: s,
                ns_per_unit: u,
                cores: c as usize,
            })
        })
        .collect()
}

fn render_calibration_entries(entries: &[Calibration]) -> String {
    let body: Vec<String> = entries
        .iter()
        .map(|c| {
            format!(
                "{{\"cores\":{},\"spawn_ns\":{:.1},\"ns_per_unit\":{:.4}}}",
                c.cores, c.spawn_ns, c.ns_per_unit
            )
        })
        .collect();
    format!("{{\"version\":1,\"entries\":[{}]}}\n", body.join(","))
}

/// Load the persisted calibration for `cores`, if present and valid.
fn load_calibration(path: &std::path::Path, cores: usize) -> Option<Calibration> {
    let text = std::fs::read_to_string(path).ok()?;
    parse_calibration_entries(&text)
        .into_iter()
        .find(|c| c.cores == cores)
}

/// Merge `cal` into the persisted file (best-effort: IO errors simply
/// mean the next run re-measures).
fn save_calibration(path: &std::path::Path, cal: Calibration) {
    let mut entries: Vec<Calibration> = std::fs::read_to_string(path)
        .ok()
        .map(|t| parse_calibration_entries(&t))
        .unwrap_or_default();
    entries.retain(|c| c.cores != cal.cores);
    entries.push(cal);
    entries.sort_by_key(|c| c.cores);
    let _ = fsio::atomic_write(path, render_calibration_entries(&entries).as_bytes());
}

/// Regions that fanned out over worker threads since the last
/// [`reset_pool_stats`].
static PARALLEL_REGIONS: AtomicU64 = AtomicU64::new(0);
/// Regions that wanted parallelism (`threads() > 1`, non-empty) but took
/// the serial fast path because the work would not repay the spawn cost.
static SERIAL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the engagement counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Regions that spawned workers.
    pub parallel_regions: u64,
    /// Regions that took the serial fast path despite `threads() > 1`.
    pub serial_fallbacks: u64,
}

/// Read the engagement counters accumulated since the last reset.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        parallel_regions: PARALLEL_REGIONS.load(Ordering::Relaxed),
        serial_fallbacks: SERIAL_FALLBACKS.load(Ordering::Relaxed),
    }
}

/// Zero the engagement counters (e.g. before a measured region).
pub fn reset_pool_stats() {
    PARALLEL_REGIONS.store(0, Ordering::Relaxed);
    SERIAL_FALLBACKS.store(0, Ordering::Relaxed);
}

/// Whether a region of `work` scalar operations would fan out under the
/// current configuration, calibration and [`ParallelMode`].
pub fn should_parallelize(work: u64) -> bool {
    decide(work, threads())
}

/// The engagement decision: pure function of the work hint, the
/// configured thread count, the host calibration and the mode override.
fn decide(work: u64, nthreads: usize) -> bool {
    if nthreads <= 1 {
        return false;
    }
    match parallel_mode() {
        ParallelMode::Force => true,
        ParallelMode::Never => false,
        ParallelMode::Auto => {
            if work < MIN_PARALLEL_WORK {
                return false;
            }
            let cal = calibration();
            let t_eff = nthreads.min(cal.cores);
            if t_eff <= 1 {
                // More workers than cores cannot reduce wall time; forced
                // --threads N on a single-core host stays serial.
                return false;
            }
            let serial_ns = work as f64 * cal.ns_per_unit;
            let saved_ns = serial_ns * (1.0 - 1.0 / t_eff as f64);
            saved_ns > SPAWN_REPAY_FACTOR * cal.spawn_ns * nthreads as f64
        }
    }
}

/// Work-derived batch grain: aim for [`TARGET_BATCH_NS`] of estimated work
/// per queue lock, clamped so every worker still sees several batches (a
/// skewed batch can be absorbed) and at least one item moves per claim.
fn batch_grain(n: usize, work: u64, nthreads: usize) -> usize {
    let cal = calibration();
    let per_item_ns = (work as f64 / n as f64).max(1.0) * cal.ns_per_unit;
    let balance_cap = n.div_ceil(nthreads * 4).max(1);
    let by_cost = (TARGET_BATCH_NS / per_item_ns).floor() as usize;
    by_cost.clamp(1, balance_cap)
}

/// Run `f(i, item)` for every `(i, item)`, distributing items over the
/// pool. Items are claimed in deterministic index batches; `f` must not
/// rely on cross-item execution order (it cannot observe one anyway
/// without interior mutability).
fn run_indexed<I, F>(items: Vec<(usize, I)>, work: u64, f: &F)
where
    I: Send,
    F: Fn(usize, I) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let nthreads = threads().min(n);
    if !decide(work, nthreads) {
        if threads() > 1 && n > 1 {
            SERIAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        }
        for (i, item) in items {
            f(i, item);
        }
        return;
    }
    PARALLEL_REGIONS.fetch_add(1, Ordering::Relaxed);
    let grain = batch_grain(n, work, nthreads);
    let queue = Mutex::named("pool-queue", items.into_iter());
    let result = sync::thread::scope(|scope| {
        for _ in 0..nthreads {
            scope.spawn(|_| loop {
                let batch: Vec<(usize, I)> = {
                    let mut q = queue.lock();
                    q.by_ref().take(grain).collect()
                };
                if batch.is_empty() {
                    return;
                }
                for (i, item) in batch {
                    f(i, item);
                }
            });
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

/// Split `data` into `chunk_size`-sized chunks (the last may be shorter)
/// and run `f(chunk_index, chunk)` over the pool. Each chunk is visited
/// exactly once; chunk `i` always holds elements
/// `data[i*chunk_size .. (i+1)*chunk_size]`, so output placement is
/// independent of scheduling. `work` is the region's total scalar-op hint
/// (see [`MIN_PARALLEL_WORK`]).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, work: u64, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if data.is_empty() {
        return;
    }
    // Serial fast path without materializing the chunk list.
    let nthreads = threads().min(data.len().div_ceil(chunk_size));
    if !decide(work, nthreads) {
        if threads() > 1 && data.len() > chunk_size {
            SERIAL_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        }
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_size).enumerate().collect();
    run_indexed(chunks, work, &f);
}

/// Deterministic parallel map over an index range: returns
/// `(0..n).map(f).collect()`, computed on the pool. Slot `i` of the output
/// is `f(i)` regardless of thread count.
///
/// Results are written straight into the output allocation (no
/// `Option` round-trip, no second traversal). If `f` panics, the panic
/// propagates and already-initialized slots are leaked — never dropped
/// twice or read uninitialized.
pub fn par_map_indexed<R, F>(n: usize, work: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit<R>` requires no initialization, so extending
    // the length over freshly reserved capacity is sound.
    unsafe { out.set_len(n) };
    par_chunks_mut(&mut out, 1, work, |i, slot| {
        slot[0].write(f(i));
    });
    let mut out = ManuallyDrop::new(out);
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    // SAFETY: every slot `0..n` was written exactly once above
    // (`par_chunks_mut` visits each chunk exactly once and a write-only
    // panic would have propagated before reaching here), so the buffer is
    // fully initialized `R`s; `MaybeUninit<R>` has `R`'s layout, and
    // `ManuallyDrop` ensures exactly one owner of the allocation.
    unsafe { Vec::from_raw_parts(ptr.cast::<R>(), len, cap) }
}

/// Deterministic parallel map over a slice: `items.iter().map(f).collect()`
/// computed on the pool, with output order preserved.
pub fn par_map<T, R, F>(items: &[T], work: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), work, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Work hint that always clears the profitability model (when forced
    /// or on a multi-core host).
    const BIG: u64 = u64::MAX;

    /// Serializes tests that touch the process-wide thread/mode overrides.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::named("test-override", ());

    /// RAII guard: force the pool to engage so its machinery is exercised
    /// even on single-core CI hosts, restoring `Auto` on drop.
    struct ForcePool;
    impl ForcePool {
        fn new() -> Self {
            set_parallel_mode(ParallelMode::Force);
            ForcePool
        }
    }
    impl Drop for ForcePool {
        fn drop(&mut self) {
            set_parallel_mode(ParallelMode::Auto);
        }
    }

    #[test]
    fn zero_and_one_item_workloads() {
        let empty: Vec<i32> = par_map_indexed(0, BIG, |i| i as i32);
        assert!(empty.is_empty());
        let one = par_map_indexed(1, BIG, |i| i * 10);
        assert_eq!(one, vec![0]);
        let mut data: [u8; 0] = [];
        par_chunks_mut(&mut data, 4, BIG, |_, _| panic!("no chunks to visit"));
    }

    #[test]
    fn map_matches_serial_at_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock();
        let _force = ForcePool::new();
        let items: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = items.iter().map(|&v| v.wrapping_mul(v) ^ 0xabcd).collect();
        let saved = thread_override();
        for t in [1, 2, 3, 8, 64] {
            set_threads(t);
            let got = par_map(&items, BIG, |&v| v.wrapping_mul(v) ^ 0xabcd);
            assert_eq!(got, serial, "thread count {t}");
        }
        set_threads(saved);
    }

    #[test]
    fn chunks_are_disjoint_and_complete() {
        let _guard = OVERRIDE_LOCK.lock();
        let _force = ForcePool::new();
        let saved = thread_override();
        set_threads(7);
        let mut data = vec![0u32; 1000];
        par_chunks_mut(&mut data, 16, BIG, |i, chunk| {
            for (j, cell) in chunk.iter_mut().enumerate() {
                *cell = (i * 16 + j) as u32 + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        set_threads(saved);
    }

    #[test]
    fn skewed_workloads_still_deterministic() {
        let _guard = OVERRIDE_LOCK.lock();
        // One item 1000× heavier than the rest: dynamic batching means the
        // other workers absorb the remaining items, and output is unchanged.
        let _force = ForcePool::new();
        let saved = thread_override();
        set_threads(4);
        let costly = |i: usize| -> u64 {
            let iters = if i == 0 { 200_000 } else { 200 };
            (0..iters).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let par = par_map_indexed(64, BIG, costly);
        set_threads(1);
        let serial = par_map_indexed(64, BIG, costly);
        assert_eq!(par, serial);
        set_threads(saved);
    }

    #[test]
    fn worker_panic_propagates() {
        let _guard = OVERRIDE_LOCK.lock();
        let _force = ForcePool::new();
        let saved = thread_override();
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(256, BIG, |i| {
                if i == 97 {
                    panic!("worker 97 exploded");
                }
                i
            })
        });
        set_threads(saved);
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("worker 97 exploded"), "payload: {msg:?}");
    }

    #[test]
    fn small_work_runs_inline() {
        // Below MIN_PARALLEL_WORK the region must still produce the same
        // result (and not deadlock when nested inside another region).
        let got = par_map_indexed(8, 10, |i| {
            // a nested tiny region
            par_map_indexed(4, 10, move |j| i * 4 + j)
        });
        let want: Vec<Vec<usize>> = (0..8)
            .map(|i| (0..4).map(|j| i * 4 + j).collect())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn set_threads_overrides_and_clears() {
        let _guard = OVERRIDE_LOCK.lock();
        let saved = thread_override();
        set_threads(3);
        assert_eq!(threads(), 3);
        assert_eq!(thread_override(), 3);
        set_threads(0);
        assert!(threads() >= 1);
        set_threads(saved);
    }

    #[test]
    fn calibration_is_sane_and_cached() {
        let a = calibration();
        assert!(a.spawn_ns >= 1_000.0 && a.spawn_ns <= 50_000_000.0);
        assert!(a.ns_per_unit >= 0.05 && a.ns_per_unit <= 100.0);
        assert!(a.cores >= 1);
        let b = calibration();
        assert_eq!(a.spawn_ns.to_bits(), b.spawn_ns.to_bits(), "cached");
    }

    #[test]
    fn serial_fallback_and_parallel_regions_are_counted() {
        let _guard = OVERRIDE_LOCK.lock();
        let saved = thread_override();
        set_threads(4);

        // Never mode: a large region still runs serially and counts as a
        // fallback (the configuration wanted parallelism).
        set_parallel_mode(ParallelMode::Never);
        reset_pool_stats();
        let v = par_map_indexed(128, BIG, |i| i);
        assert_eq!(v.len(), 128);
        let s = pool_stats();
        assert_eq!(s.parallel_regions, 0);
        assert_eq!(s.serial_fallbacks, 1);

        // Force mode: the same region fans out.
        set_parallel_mode(ParallelMode::Force);
        reset_pool_stats();
        let v = par_map_indexed(128, BIG, |i| i);
        assert_eq!(v.len(), 128);
        let s = pool_stats();
        assert_eq!(s.parallel_regions, 1);
        assert_eq!(s.serial_fallbacks, 0);

        set_parallel_mode(ParallelMode::Auto);
        // Auto mode, trivial work: serial fast path.
        reset_pool_stats();
        let v = par_map_indexed(128, 16, |i| i);
        assert_eq!(v.len(), 128);
        assert_eq!(pool_stats().parallel_regions, 0);

        set_threads(saved);
    }

    #[test]
    fn engagement_decision_respects_cores_and_floor() {
        let _guard = OVERRIDE_LOCK.lock();
        let saved = thread_override();
        set_threads(8);
        set_parallel_mode(ParallelMode::Auto);
        // Below the floor: never parallel, whatever the host looks like.
        assert!(!should_parallelize(MIN_PARALLEL_WORK - 1));
        // Huge work: parallel exactly when the host has >1 core to use.
        let cal = calibration();
        assert_eq!(should_parallelize(u64::MAX / 2), cal.cores > 1);
        set_threads(saved);
    }

    #[test]
    fn par_map_indexed_drops_each_result_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new_untracked(0);
        struct Counted(#[allow(dead_code)] usize);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _guard = OVERRIDE_LOCK.lock();
        let _force = ForcePool::new();
        let saved = thread_override();
        set_threads(4);
        DROPS.store(0, Ordering::Relaxed);
        let v = par_map_indexed(512, BIG, Counted);
        assert_eq!(v.len(), 512);
        drop(v);
        assert_eq!(DROPS.load(Ordering::Relaxed), 512);
        set_threads(saved);
    }

    #[test]
    fn calibration_persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hc-cal-test-{}", std::process::id()));
        let path = dir.join("hc-calibration.json");
        let _ = std::fs::remove_file(&path);

        // Missing file: nothing to load.
        assert!(load_calibration(&path, 4).is_none());

        let cal = Calibration {
            spawn_ns: 123_456.0,
            ns_per_unit: 0.75,
            cores: 4,
        };
        save_calibration(&path, cal);
        let loaded = load_calibration(&path, 4).expect("entry for 4 cores");
        assert_eq!(loaded.cores, 4);
        assert!((loaded.spawn_ns - cal.spawn_ns).abs() < 1.0);
        assert!((loaded.ns_per_unit - cal.ns_per_unit).abs() < 1e-3);
        // Keyed by core count: a different host shape misses.
        assert!(load_calibration(&path, 8).is_none());

        // Merging keeps other core counts and replaces the same one.
        save_calibration(
            &path,
            Calibration {
                spawn_ns: 9_000.0,
                ns_per_unit: 0.10,
                cores: 8,
            },
        );
        save_calibration(
            &path,
            Calibration {
                spawn_ns: 200_000.0,
                ns_per_unit: 0.50,
                cores: 4,
            },
        );
        let four = load_calibration(&path, 4).expect("replaced entry");
        assert!((four.spawn_ns - 200_000.0).abs() < 1.0);
        let eight = load_calibration(&path, 8).expect("merged entry");
        assert!((eight.spawn_ns - 9_000.0).abs() < 1.0);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn calibration_persistence_rejects_stale_or_garbage() {
        // Unparsable text yields no entries.
        assert!(parse_calibration_entries("not json at all").is_empty());
        // Wrong version is treated as stale wholesale.
        assert!(parse_calibration_entries(
            "{\"version\":2,\"entries\":[{\"cores\":4,\"spawn_ns\":5000.0,\"ns_per_unit\":0.5}]}"
        )
        .is_empty());
        // Out-of-range values are dropped (clock glitch, corrupt write).
        assert!(parse_calibration_entries(
            "{\"version\":1,\"entries\":[{\"cores\":4,\"spawn_ns\":1.0,\"ns_per_unit\":0.5}]}"
        )
        .is_empty());
        assert!(parse_calibration_entries(
            "{\"version\":1,\"entries\":[{\"cores\":0,\"spawn_ns\":5000.0,\"ns_per_unit\":0.5}]}"
        )
        .is_empty());
        // A valid entry parses exactly.
        let good = parse_calibration_entries(
            "{\"version\":1,\"entries\":[{\"cores\":16,\"spawn_ns\":5000.0,\"ns_per_unit\":0.5}]}",
        );
        assert_eq!(good.len(), 1);
        assert_eq!(good[0].cores, 16);
    }

    #[test]
    fn batch_grain_is_bounded() {
        // Cheap items: grain capped by the load-balance bound.
        let g = batch_grain(1_000, 1_000, 4);
        assert!(g >= 1 && g <= 1_000_usize.div_ceil(16));
        // Expensive items: grain collapses to one item per claim.
        assert_eq!(batch_grain(64, u64::MAX, 4), 1);
    }
}
