//! `HC_THREADS` environment override, isolated in its own test binary:
//! the test mutates the process environment, which would race with any
//! concurrently running test that calls `hc_parallel::threads()`.

#[test]
fn env_override_and_cli_priority() {
    std::env::set_var("HC_THREADS", "5");
    assert_eq!(hc_parallel::threads(), 5, "HC_THREADS respected");

    // A set_threads() override (the CLI's --threads flag) beats the env.
    hc_parallel::set_threads(2);
    assert_eq!(hc_parallel::threads(), 2, "--threads beats HC_THREADS");
    hc_parallel::set_threads(0);
    assert_eq!(hc_parallel::threads(), 5, "clearing restores the env value");

    // Garbage and zero values fall through to available parallelism.
    for bad in ["bogus", "0", "-3", ""] {
        std::env::set_var("HC_THREADS", bad);
        assert!(hc_parallel::threads() >= 1, "HC_THREADS={bad:?}");
    }
    std::env::remove_var("HC_THREADS");
    assert!(hc_parallel::threads() >= 1);
}
