//! # gnn — GNN training pipeline on the simulated device (§V, §VI-C)
//!
//! Implements the training workloads of the paper's end-to-end evaluation:
//! two-layer GCN (Kipf & Welling) and GIN (Xu et al.) with full manual
//! forward/backward passes, where the Aggregation phase is delegated to a
//! pluggable SpMM kernel ([`Aggregator`]) — HC-SpMM with or without kernel
//! fusion, GE-SpMM, or TC-GNN — and every kernel charges simulated time.
//!
//! The numerics are real: gradients are validated against finite
//! differences, and training actually reduces the loss. Only the clock is
//! simulated.

#![warn(missing_docs)]

pub mod aggregator;
pub mod deep;
pub mod gcn;
pub mod gin;
pub mod memory;
pub mod ops;
pub mod optim;
pub mod train;

pub use aggregator::{Aggregator, HcAggregator, KernelAggregator};
pub use deep::DeepGcn;
pub use gcn::Gcn;
pub use gin::Gin;
pub use optim::{Adam, Optimizer, Sgd};
pub use train::{EpochTiming, Trainer};
