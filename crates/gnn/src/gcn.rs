//! Two-layer GCN (Kipf & Welling, ICLR'17) with manual backprop.
//!
//! Forward per layer: `H = ReLU(Ā (X W))` — the framework computes the
//! Update (`X·W`) first and then Aggregation, so forward is *not* fusable.
//! Backward per layer runs Aggregation first (`Ā·dH`) and then the Update
//! multiplies — exactly the pattern §V-A fuses.

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::{Csr, DenseMatrix};
use hc_core::fusion::gemm_run;

use crate::aggregator::Aggregator;
use crate::ops;

/// Two-layer GCN parameters.
#[derive(Debug, Clone)]
pub struct Gcn {
    /// Layer-1 weights (`in_dim × hidden`).
    pub w1: DenseMatrix,
    /// Layer-2 weights (`hidden × classes`).
    pub w2: DenseMatrix,
}

/// Forward activations cached for the backward pass.
#[derive(Debug, Clone)]
pub struct GcnCache {
    /// `X·W1`.
    pub xw1: DenseMatrix,
    /// `ReLU(Ā·X·W1)` — the layer-1 output.
    pub h1: DenseMatrix,
    /// `H1·W2`.
    pub h1w2: DenseMatrix,
    /// Pre-ReLU layer-1 aggregation (needed nowhere, ReLU mask uses h1).
    pub logits: DenseMatrix,
}

impl Gcn {
    /// Initialize with small deterministic weights.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let scale1 = (1.0 / in_dim as f32).sqrt();
        let scale2 = (1.0 / hidden as f32).sqrt();
        Gcn {
            w1: DenseMatrix::random_features(in_dim, hidden, seed).scale(scale1),
            w2: DenseMatrix::random_features(hidden, classes, seed ^ 0xff).scale(scale2),
        }
    }

    /// Forward pass. Returns logits, the cache, and the simulated run.
    pub fn forward(
        &self,
        a: &Csr,
        x: &DenseMatrix,
        agg: &dyn Aggregator,
        dev: &DeviceSpec,
    ) -> (GcnCache, KernelRun) {
        // Layer 1: Update (gemm) then Aggregation then ReLU.
        let mut run = gemm_run(x.rows, self.w1.cols, self.w1.rows, dev);
        let xw1 = x.matmul(&self.w1);
        let (z1, r) = agg.aggregate(a, &xw1, dev);
        run = run.then(&r);
        let (h1, r) = ops::relu(&z1, dev);
        run = run.then(&r);
        // Layer 2: Update then Aggregation (no activation on logits).
        let r2 = gemm_run(h1.rows, self.w2.cols, self.w2.rows, dev);
        run = run.then(&r2);
        let h1w2 = h1.matmul(&self.w2);
        let (logits, r) = agg.aggregate(a, &h1w2, dev);
        run = run.then(&r);
        (
            GcnCache {
                xw1,
                h1,
                h1w2,
                logits,
            },
            run,
        )
    }

    /// Backward pass from `dlogits`; applies SGD with learning rate `lr` and
    /// returns the simulated run. Gradient flow per layer: Aggregation
    /// (`Ā·dH`, symmetric Ā) then the two Update gemms — the first of which
    /// (`(Ā·dH)·Wᵀ`) is fused with the aggregation by HC-SpMM.
    #[allow(clippy::too_many_arguments)] // mirrors the training pipeline's data flow
    pub fn backward(
        &mut self,
        a: &Csr,
        x: &DenseMatrix,
        cache: &GcnCache,
        dlogits: &DenseMatrix,
        agg: &dyn Aggregator,
        lr: f32,
        dev: &DeviceSpec,
    ) -> KernelRun {
        // ---- Layer 2 ----
        // Fusable pair: dH1 = (Ā·dLogits)·W2ᵀ.
        let w2t = self.w2.transposed();
        let f2 = agg.agg_update(a, dlogits, &w2t, dev);
        let mut run = f2.run.clone();
        // dW2 = H1ᵀ·(Ā·dLogits).
        let r = gemm_run(self.w2.rows, self.w2.cols, cache.h1.rows, dev);
        run = run.then(&r);
        let dw2 = cache.h1.transposed().matmul(&f2.aggregated);
        let dh1 = f2.out;

        // ---- Layer 1 ----
        let (dz1, r) = ops::relu_backward(&dh1, &cache.h1, dev);
        run = run.then(&r);
        // Fusable pair: dX-side product (Ā·dZ1)·W1ᵀ (dX itself is unused for
        // input features, but frameworks compute it for generality).
        let w1t = self.w1.transposed();
        let f1 = agg.agg_update(a, &dz1, &w1t, dev);
        run = run.then(&f1.run);
        // dW1 = Xᵀ·(Ā·dZ1).
        let r = gemm_run(self.w1.rows, self.w1.cols, x.rows, dev);
        run = run.then(&r);
        let dw1 = x.transposed().matmul(&f1.aggregated);

        // ---- SGD ----
        let r = ops::sgd_step(&mut self.w2, &dw2, lr, dev);
        run = run.then(&r);
        let r = ops::sgd_step(&mut self.w1, &dw1, lr, dev);
        run.then(&r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::HcAggregator;
    use graph_sparse::gen;
    use hc_core::{HcSpmm, Selector};

    fn tiny_setup() -> (Csr, DenseMatrix, Vec<usize>) {
        let a = gen::erdos_renyi(24, 60, 1).gcn_normalize();
        let x = DenseMatrix::random_features(24, 6, 2);
        let labels: Vec<usize> = (0..24).map(|i| i % 3).collect();
        (a, x, labels)
    }

    /// Aggregator that forces every window onto CUDA cores, keeping the
    /// whole pipeline exact f32 — required for finite-difference checks.
    fn exact_aggregator(a: &Csr, dev: &DeviceSpec) -> HcAggregator {
        let hc = HcSpmm {
            selector: Selector {
                w1: 0.0,
                w2: 0.0,
                b: 1.0,
            },
            ..HcSpmm::default()
        };
        HcAggregator::with_kernel(hc, a, dev, true)
    }

    #[test]
    fn gradients_match_finite_differences() {
        let dev = DeviceSpec::rtx3090();
        let (a, x, labels) = tiny_setup();
        let agg = exact_aggregator(&a, &dev);
        let model = Gcn::new(6, 5, 3, 7);

        let loss_of = |m: &Gcn| -> f64 {
            let (c, _) = m.forward(&a, &x, &agg, &dev);
            let (l, _, _) = ops::softmax_cross_entropy(&c.logits, &labels, &dev);
            l
        };

        // Analytic gradients via one backward pass with lr folded out: run
        // backward with lr=1 on a clone and read off the weight delta.
        let mut probe = model.clone();
        let (cache, _) = probe.forward(&a, &x, &agg, &dev);
        let (_, dlogits, _) = ops::softmax_cross_entropy(&cache.logits, &labels, &dev);
        let before_w1 = probe.w1.clone();
        let before_w2 = probe.w2.clone();
        probe.backward(&a, &x, &cache, &dlogits, &agg, 1.0, &dev);
        let grad_w1 = DenseMatrix {
            rows: before_w1.rows,
            cols: before_w1.cols,
            data: before_w1
                .data
                .iter()
                .zip(&probe.w1.data)
                .map(|(b, a)| b - a)
                .collect(),
        };
        let grad_w2 = DenseMatrix {
            rows: before_w2.rows,
            cols: before_w2.cols,
            data: before_w2
                .data
                .iter()
                .zip(&probe.w2.data)
                .map(|(b, a)| b - a)
                .collect(),
        };

        let eps = 1e-2f32;
        let mut checked = 0;
        for (grad, pick) in [(&grad_w1, 1), (&grad_w2, 2)] {
            for idx in [0usize, grad.data.len() / 2, grad.data.len() - 1] {
                let mut mp = model.clone();
                let mut mm = model.clone();
                match pick {
                    1 => {
                        mp.w1.data[idx] += eps;
                        mm.w1.data[idx] -= eps;
                    }
                    _ => {
                        mp.w2.data[idx] += eps;
                        mm.w2.data[idx] -= eps;
                    }
                }
                let fd = ((loss_of(&mp) - loss_of(&mm)) / (2.0 * eps as f64)) as f32;
                let an = grad.data[idx];
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                    "w{pick}[{idx}]: fd {fd} vs analytic {an}"
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 6);
    }

    #[test]
    fn training_reduces_loss() {
        let dev = DeviceSpec::rtx3090();
        let (a, x, labels) = tiny_setup();
        let agg = exact_aggregator(&a, &dev);
        let mut model = Gcn::new(6, 8, 3, 11);
        let mut losses = Vec::new();
        for _ in 0..30 {
            let (cache, _) = model.forward(&a, &x, &agg, &dev);
            let (loss, dlogits, _) = ops::softmax_cross_entropy(&cache.logits, &labels, &dev);
            losses.push(loss);
            model.backward(&a, &x, &cache, &dlogits, &agg, 0.5, &dev);
        }
        // Modular labels on a random graph are nearly unlearnable through
        // two smoothing layers, so the drop is small — but it must be a
        // *drop*, strictly monotone (gradient direction is separately
        // verified against finite differences).
        for w in losses.windows(2) {
            assert!(w[1] < w[0], "loss increased: {losses:?}");
        }
    }

    #[test]
    fn forward_and_backward_report_time() {
        let dev = DeviceSpec::rtx3090();
        let (a, x, labels) = tiny_setup();
        let agg = exact_aggregator(&a, &dev);
        let mut model = Gcn::new(6, 8, 3, 11);
        let (cache, fwd) = model.forward(&a, &x, &agg, &dev);
        let (_, dlogits, _) = ops::softmax_cross_entropy(&cache.logits, &labels, &dev);
        let bwd = model.backward(&a, &x, &cache, &dlogits, &agg, 0.1, &dev);
        assert!(fwd.time_ms > 0.0);
        assert!(bwd.time_ms > 0.0);
        // Forward: 2 gemms + 2 aggs + 1 relu = 5 launches.
        assert_eq!(fwd.profile.launches, 5);
    }
}
