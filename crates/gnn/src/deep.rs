//! K-layer GCN — the "deeper models" the paper's Fig. 16 discussion points
//! at ("larger datasets and deeper models that require more epochs").
//!
//! Same algebra as [`crate::Gcn`], generalized to any depth, with a
//! pluggable [`Optimizer`]. ReLU between layers, raw logits at the end;
//! each backward layer runs Aggregation first, so HC-SpMM's kernel fusion
//! applies at every layer.

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::{Csr, DenseMatrix};
use hc_core::fusion::gemm_run;

use crate::aggregator::Aggregator;
use crate::ops;
use crate::optim::Optimizer;

/// Multi-layer GCN parameters.
#[derive(Debug, Clone)]
pub struct DeepGcn {
    /// Per-layer weights: `dims[i] × dims[i+1]`.
    pub weights: Vec<DenseMatrix>,
}

/// Forward activations cached per layer.
#[derive(Debug, Clone)]
pub struct DeepCache {
    /// Input to each layer (`h[0]` = X, `h[i]` = layer i's activated
    /// output; `h.len() == layers + 1`; the last is the logits).
    pub h: Vec<DenseMatrix>,
}

impl DeepGcn {
    /// Build with the layer widths `dims` (input, hidden…, classes).
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let weights = dims
            .windows(2)
            .enumerate()
            .map(|(i, d)| {
                let scale = (1.0 / d[0] as f32).sqrt();
                DenseMatrix::random_features(d[0], d[1], seed.wrapping_add(i as u64 * 7919))
                    .scale(scale)
            })
            .collect();
        DeepGcn { weights }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// Forward pass: per layer `H ← act(Ā·(H·W))`, ReLU on all but the last.
    pub fn forward(
        &self,
        a: &Csr,
        x: &DenseMatrix,
        agg: &dyn Aggregator,
        dev: &DeviceSpec,
    ) -> (DeepCache, KernelRun) {
        let mut run = KernelRun::default();
        let mut h = vec![x.clone()];
        for (i, w) in self.weights.iter().enumerate() {
            let cur = h.last().expect("non-empty");
            let r = gemm_run(cur.rows, w.cols, w.rows, dev);
            run = run.then(&r);
            let hw = cur.matmul(w);
            let (z, r) = agg.aggregate(a, &hw, dev);
            run = run.then(&r);
            let out = if i + 1 < self.weights.len() {
                let (act, r) = ops::relu(&z, dev);
                run = run.then(&r);
                act
            } else {
                z
            };
            h.push(out);
        }
        (DeepCache { h }, run)
    }

    /// Backward pass from `dlogits`, applying `opt` layer by layer.
    pub fn backward(
        &mut self,
        a: &Csr,
        cache: &DeepCache,
        dlogits: &DenseMatrix,
        agg: &dyn Aggregator,
        opt: &mut dyn Optimizer,
        dev: &DeviceSpec,
    ) -> KernelRun {
        let mut run = KernelRun::default();
        let mut grad = dlogits.clone();
        let mut grads: Vec<DenseMatrix> = Vec::with_capacity(self.depth());
        for i in (0..self.depth()).rev() {
            // ReLU mask (all layers except the last output).
            if i + 1 < self.depth() {
                let (g, r) = ops::relu_backward(&grad, &cache.h[i + 1], dev);
                run = run.then(&r);
                grad = g;
            }
            // Fusable pair: dHW-side product (Ā·grad)·Wᵀ.
            let wt = self.weights[i].transposed();
            let f = agg.agg_update(a, &grad, &wt, dev);
            run = run.then(&f.run);
            // dW_i = (H_i)ᵀ·(Ā·grad) — H_i is the layer's input.
            let r = gemm_run(
                self.weights[i].rows,
                self.weights[i].cols,
                cache.h[i].rows,
                dev,
            );
            run = run.then(&r);
            let dw = cache.h[i].transposed().matmul(&f.aggregated);
            grads.push(dw);
            grad = f.out;
        }
        grads.reverse();
        for (i, dw) in grads.iter().enumerate() {
            let r = opt.step(i, &mut self.weights[i], dw, dev);
            run = run.then(&r);
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::HcAggregator;
    use crate::optim::{Adam, Sgd};
    use graph_sparse::gen;
    use hc_core::{HcSpmm, Selector};

    fn exact_agg(a: &Csr, dev: &DeviceSpec) -> HcAggregator {
        let hc = HcSpmm {
            selector: Selector {
                w1: 0.0,
                w2: 0.0,
                b: 1.0,
            },
            ..HcSpmm::default()
        };
        HcAggregator::with_kernel(hc, a, dev, true)
    }

    #[test]
    fn two_layer_deep_matches_gcn() {
        // DeepGcn with 2 layers must produce the same forward as Gcn given
        // the same weights.
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(64, 200, 1).gcn_normalize();
        let x = DenseMatrix::random_features(64, 8, 2);
        let agg = exact_agg(&a, &dev);
        let deep = DeepGcn::new(&[8, 6, 3], 5);
        let shallow = crate::Gcn {
            w1: deep.weights[0].clone(),
            w2: deep.weights[1].clone(),
        };
        let (dc, _) = deep.forward(&a, &x, &agg, &dev);
        let (sc, _) = shallow.forward(&a, &x, &agg, &dev);
        assert_eq!(dc.h.last().unwrap(), &sc.logits);
    }

    #[test]
    fn deep_gradients_match_finite_differences() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(20, 60, 3).gcn_normalize();
        let x = DenseMatrix::random_features(20, 4, 4);
        let labels: Vec<usize> = (0..20).map(|i| i % 3).collect();
        let agg = exact_agg(&a, &dev);
        let model = DeepGcn::new(&[4, 5, 4, 3], 7); // three layers

        let loss_of = |m: &DeepGcn| {
            let (c, _) = m.forward(&a, &x, &agg, &dev);
            ops::softmax_cross_entropy(c.h.last().unwrap(), &labels, &dev).0
        };
        let mut probe = model.clone();
        let (cache, _) = probe.forward(&a, &x, &agg, &dev);
        let (_, dl, _) = ops::softmax_cross_entropy(cache.h.last().unwrap(), &labels, &dev);
        let before: Vec<DenseMatrix> = probe.weights.clone();
        let mut sgd = Sgd { lr: 1.0 };
        probe.backward(&a, &cache, &dl, &agg, &mut sgd, &dev);

        let eps = 1e-2f32;
        #[allow(clippy::needless_range_loop)] // probing two indices per layer
        for layer in 0..3 {
            for idx in [0usize, before[layer].data.len() - 1] {
                let analytic = before[layer].data[idx] - probe.weights[layer].data[idx];
                let mut mp = model.clone();
                let mut mm = model.clone();
                mp.weights[layer].data[idx] += eps;
                mm.weights[layer].data[idx] -= eps;
                let fd = ((loss_of(&mp) - loss_of(&mm)) / (2.0 * eps as f64)) as f32;
                assert!(
                    (fd - analytic).abs() < 2e-2 * (1.0 + fd.abs().max(analytic.abs())),
                    "layer {layer} idx {idx}: fd {fd} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn adam_trains_deep_model_monotonically_at_first() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(96, 500, 6, 0.9, 6).gcn_normalize();
        let x = DenseMatrix::random_features(96, 8, 7);
        let labels: Vec<usize> = (0..96).map(|i| i / 16 % 4).collect();
        let agg = exact_agg(&a, &dev);
        let mut model = DeepGcn::new(&[8, 12, 8, 4], 9);
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::new();
        for _ in 0..20 {
            let (cache, _) = model.forward(&a, &x, &agg, &dev);
            let (loss, dl, _) = ops::softmax_cross_entropy(cache.h.last().unwrap(), &labels, &dev);
            losses.push(loss);
            model.backward(&a, &cache, &dl, &agg, &mut opt, &dev);
        }
        assert!(
            losses.last().unwrap() < &losses[0],
            "Adam should reduce the loss: {losses:?}"
        );
    }

    #[test]
    fn deeper_models_cost_proportionally_more() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(512, 3_000, 16, 0.9, 8).gcn_normalize();
        let x = DenseMatrix::random_features(512, 16, 9);
        let agg = exact_agg(&a, &dev);
        let d2 = DeepGcn::new(&[16, 16, 4], 1);
        let d4 = DeepGcn::new(&[16, 16, 16, 16, 4], 1);
        let (_, r2) = d2.forward(&a, &x, &agg, &dev);
        let (_, r4) = d4.forward(&a, &x, &agg, &dev);
        assert!(r4.time_ms > 1.5 * r2.time_ms);
    }
}
