//! Two-layer GIN (Xu et al., ICLR'19) with manual backprop.
//!
//! Forward per layer: `H = ReLU(((1+ε)·I + A)·X·W)` computed as Aggregation
//! *first* (`S·X` with `S = A + (1+ε)I`), then the Update — the §V-A fusable
//! order, which is why the paper fuses GIN's forward pass. Backward runs
//! Update first, then Aggregation: not fusable.

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::{Coo, Csr, DenseMatrix};
use hc_core::fusion::gemm_run;

use crate::aggregator::Aggregator;
use crate::ops;

/// Two-layer GIN parameters.
#[derive(Debug, Clone)]
pub struct Gin {
    /// Layer-1 weights.
    pub w1: DenseMatrix,
    /// Layer-2 weights.
    pub w2: DenseMatrix,
    /// The ε of `(1+ε)·I + A` (fixed, not learned, as in the paper's
    /// benchmark setup).
    pub eps: f32,
}

/// Build GIN's propagation matrix `S = A + (1+ε)·I`.
pub fn gin_propagation(a: &Csr, eps: f32) -> Csr {
    assert_eq!(a.nrows, a.ncols);
    let mut coo = a.to_coo();
    for i in 0..a.nrows {
        coo.push(i as u32, i as u32, 1.0 + eps);
    }
    let mut c: Coo = coo;
    c.deduplicate();
    c.to_csr()
}

/// Forward cache for the backward pass.
#[derive(Debug, Clone)]
pub struct GinCache {
    /// `S·X` (layer-1 aggregation).
    pub sx: DenseMatrix,
    /// `ReLU((S·X)·W1)`.
    pub h1: DenseMatrix,
    /// `S·H1`.
    pub sh1: DenseMatrix,
    /// Logits `(S·H1)·W2`.
    pub logits: DenseMatrix,
}

impl Gin {
    /// Initialize with small deterministic weights.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let s1 = (1.0 / in_dim as f32).sqrt();
        let s2 = (1.0 / hidden as f32).sqrt();
        Gin {
            w1: DenseMatrix::random_features(in_dim, hidden, seed).scale(s1),
            w2: DenseMatrix::random_features(hidden, classes, seed ^ 0xabc).scale(s2),
            eps: 0.1,
        }
    }

    /// Forward pass over the propagation matrix `s` (from
    /// [`gin_propagation`]). Aggregation→Update per layer: HC-SpMM fuses it.
    pub fn forward(
        &self,
        s: &Csr,
        x: &DenseMatrix,
        agg: &dyn Aggregator,
        dev: &DeviceSpec,
    ) -> (GinCache, KernelRun) {
        // Layer 1 (fused agg+update where supported) + ReLU.
        let f1 = agg.agg_update(s, x, &self.w1, dev);
        let mut run = f1.run.clone();
        let (h1, r) = ops::relu(&f1.out, dev);
        run = run.then(&r);
        // Layer 2.
        let f2 = agg.agg_update(s, &h1, &self.w2, dev);
        run = run.then(&f2.run);
        (
            GinCache {
                sx: f1.aggregated,
                h1,
                sh1: f2.aggregated,
                logits: f2.out,
            },
            run,
        )
    }

    /// Backward pass: per layer, Update gemms first, then Aggregation —
    /// unfusable, so every framework pays the same kernel count here.
    #[allow(clippy::too_many_arguments)] // mirrors the training pipeline's data flow
    pub fn backward(
        &mut self,
        s: &Csr,
        _x: &DenseMatrix,
        cache: &GinCache,
        dlogits: &DenseMatrix,
        agg: &dyn Aggregator,
        lr: f32,
        dev: &DeviceSpec,
    ) -> KernelRun {
        // ---- Layer 2 ----
        // dW2 = (S·H1)ᵀ·dLogits.
        let mut run = gemm_run(self.w2.rows, self.w2.cols, cache.sh1.rows, dev);
        let dw2 = cache.sh1.transposed().matmul(dlogits);
        // d(S·H1) = dLogits·W2ᵀ (Update), then dH1 = Sᵀ·… = S·… (Agg).
        let r = gemm_run(dlogits.rows, self.w2.rows, self.w2.cols, dev);
        run = run.then(&r);
        let dsh1 = dlogits.matmul(&self.w2.transposed());
        let (dh1, r) = agg.aggregate(s, &dsh1, dev);
        run = run.then(&r);

        // ---- Layer 1 ----
        let (dz1, r) = ops::relu_backward(&dh1, &cache.h1, dev);
        run = run.then(&r);
        // dW1 = (S·X)ᵀ·dZ1.
        let r = gemm_run(self.w1.rows, self.w1.cols, cache.sx.rows, dev);
        run = run.then(&r);
        let dw1 = cache.sx.transposed().matmul(&dz1);
        // dX path (computed for generality): S·(dZ1·W1ᵀ).
        let r = gemm_run(dz1.rows, self.w1.rows, self.w1.cols, dev);
        run = run.then(&r);
        let dsx = dz1.matmul(&self.w1.transposed());
        let (_dx, r) = agg.aggregate(s, &dsx, dev);
        run = run.then(&r);

        let r = ops::sgd_step(&mut self.w2, &dw2, lr, dev);
        run = run.then(&r);
        let r = ops::sgd_step(&mut self.w1, &dw1, lr, dev);
        run.then(&r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::HcAggregator;
    use graph_sparse::gen;
    use hc_core::{HcSpmm, Selector};

    fn exact_aggregator(s: &Csr, dev: &DeviceSpec) -> HcAggregator {
        let hc = HcSpmm {
            selector: Selector {
                w1: 0.0,
                w2: 0.0,
                b: 1.0,
            },
            ..HcSpmm::default()
        };
        HcAggregator::with_kernel(hc, s, dev, true)
    }

    #[test]
    fn propagation_matrix_adds_scaled_identity() {
        let a = gen::erdos_renyi(10, 20, 1);
        let s = gin_propagation(&a, 0.5);
        assert_eq!(s.nnz(), a.nnz() + 10);
        let d = s.to_dense();
        for i in 0..10 {
            assert!((d[(i, i)] - 1.5).abs() < 1e-6);
        }
    }

    #[test]
    fn gin_gradients_match_finite_differences() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(20, 50, 2);
        let s = gin_propagation(&a, 0.1);
        let x = DenseMatrix::random_features(20, 5, 3);
        let labels: Vec<usize> = (0..20).map(|i| i % 3).collect();
        let agg = exact_aggregator(&s, &dev);
        let model = Gin::new(5, 4, 3, 9);

        let loss_of = |m: &Gin| {
            let (c, _) = m.forward(&s, &x, &agg, &dev);
            ops::softmax_cross_entropy(&c.logits, &labels, &dev).0
        };
        let mut probe = model.clone();
        let (cache, _) = probe.forward(&s, &x, &agg, &dev);
        let (_, dlogits, _) = ops::softmax_cross_entropy(&cache.logits, &labels, &dev);
        let w1_before = probe.w1.clone();
        probe.backward(&s, &x, &cache, &dlogits, &agg, 1.0, &dev);

        let eps = 1e-2f32;
        for idx in [0usize, 7, 19] {
            let an = w1_before.data[idx] - probe.w1.data[idx];
            let mut mp = model.clone();
            let mut mm = model.clone();
            mp.w1.data[idx] += eps;
            mm.w1.data[idx] -= eps;
            let fd = ((loss_of(&mp) - loss_of(&mm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                "w1[{idx}]: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn gin_training_reduces_loss() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(48, 150, 3, 0.9, 4);
        let s = gin_propagation(&a, 0.1);
        let x = DenseMatrix::random_features(48, 6, 5);
        let labels: Vec<usize> = (0..48).map(|i| i % 4).collect();
        let agg = exact_aggregator(&s, &dev);
        let mut model = Gin::new(6, 8, 4, 6);
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..30 {
            let (cache, _) = model.forward(&s, &x, &agg, &dev);
            let (loss, dlogits, _) = ops::softmax_cross_entropy(&cache.logits, &labels, &dev);
            if e == 0 {
                first = loss;
            }
            last = loss;
            model.backward(&s, &x, &cache, &dlogits, &agg, 0.5, &dev);
        }
        assert!(last < first * 0.9, "GIN loss should fall: {first} → {last}");
    }

    #[test]
    fn gin_forward_fuses_fewer_launches_than_unfused() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(256, 1500, 8, 0.9, 7);
        let s = gin_propagation(&a, 0.1);
        let x = DenseMatrix::random_features(256, 16, 8);
        let fused = exact_aggregator(&s, &dev);
        let mut unfused = exact_aggregator(&s, &dev);
        unfused.fuse = false;
        let m = Gin::new(16, 8, 4, 9);
        let (_, rf) = m.forward(&s, &x, &fused, &dev);
        let (_, ru) = m.forward(&s, &x, &unfused, &dev);
        assert!(rf.profile.launches < ru.profile.launches);
        assert!(rf.time_ms < ru.time_ms);
    }
}
