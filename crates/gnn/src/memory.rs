//! GPU memory-usage model (Appendix G, Table XII).
//!
//! Each framework keeps the feature matrix, per-layer activations and
//! gradients, and weights — identical across frameworks — plus its own
//! sparse-format structures, which is where the up-to-2 %/6 % differences
//! of Table XII come from:
//!
//! * GE-SpMM: plain CSR.
//! * TC-GNN: the condensed (SGT) structure *instead of* full CSR values —
//!   the smallest footprint.
//! * HC-SpMM: CSR (for the CUDA path) + condensed indices (for the Tensor
//!   path) + the per-window classification bitmap — the largest.

use graph_sparse::{Csr, RowWindowPartition};

/// Framework whose footprint is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// GE-SpMM-integrated PyTorch.
    GeSpmm,
    /// TC-GNN-integrated PyTorch.
    TcGnn,
    /// HC-SpMM-integrated PyTorch.
    HcSpmm,
}

/// Modeled training memory in bytes for a two-layer GNN.
pub fn training_memory_bytes(
    fw: Framework,
    a: &Csr,
    dim: usize,
    hidden: usize,
    classes: usize,
) -> u64 {
    let v = a.nrows as u64;
    let nnz = a.nnz() as u64;
    let windows = a.nrows.div_ceil(graph_sparse::WINDOW_ROWS) as u64;

    // Dense state shared by every framework: features, two layers of
    // activations + intermediates + gradients (PyTorch keeps fwd caches),
    // weights and their gradients.
    let feats = v * dim as u64 * 4;
    let acts = v * (hidden as u64 * 3 + classes as u64 * 2) * 4;
    let grads = acts;
    let weights = ((dim * hidden + hidden * classes) as u64) * 4 * 2;
    let shared = feats + acts + grads + weights;

    let sparse = match fw {
        Framework::GeSpmm => csr_bytes(v, nnz),
        Framework::TcGnn => condensed_bytes(a),
        Framework::HcSpmm => csr_bytes(v, nnz) + condensed_index_bytes(a) + windows.div_ceil(8),
    };
    shared + sparse
}

fn csr_bytes(v: u64, nnz: u64) -> u64 {
    (v + 1) * 4 + nnz * 8
}

fn condensed_bytes(a: &Csr) -> u64 {
    let part = RowWindowPartition::build(a);
    // Window metadata + condensed column lists + packed per-entry tile
    // coordinates (2 bytes each).
    let cols: u64 = part.windows.iter().map(|w| w.nnz_cols() as u64).sum();
    part.len() as u64 * 8 + cols * 4 + a.nnz() as u64 * 2
}

fn condensed_index_bytes(a: &Csr) -> u64 {
    // HC-SpMM's extra structure over CSR: the per-entry condensed column
    // index used by the Tensor path.
    a.nnz() as u64 * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    #[test]
    fn ordering_matches_table_xii() {
        // TC-GNN < GE-SpMM < HC-SpMM, with HC within a few percent of GE.
        let a = gen::community(4096, 24_000, 128, 0.85, 1);
        let (dim, hidden, classes) = (74, 32, 22);
        let ge = training_memory_bytes(Framework::GeSpmm, &a, dim, hidden, classes);
        let tc = training_memory_bytes(Framework::TcGnn, &a, dim, hidden, classes);
        let hc = training_memory_bytes(Framework::HcSpmm, &a, dim, hidden, classes);
        assert!(tc < ge, "tc {tc} !< ge {ge}");
        assert!(ge < hc, "ge {ge} !< hc {hc}");
        let overhead = hc as f64 / ge as f64;
        assert!(
            overhead < 1.10,
            "HC overhead vs GE should be small: {overhead}"
        );
    }

    #[test]
    fn memory_scales_with_graph() {
        let small = gen::erdos_renyi(512, 2000, 2);
        let large = gen::erdos_renyi(4096, 30_000, 2);
        let ms = training_memory_bytes(Framework::HcSpmm, &small, 64, 32, 8);
        let ml = training_memory_bytes(Framework::HcSpmm, &large, 64, 32, 8);
        assert!(ml > ms);
    }
}
