//! Optimizers for the training pipeline: SGD and Adam.
//!
//! The evaluation's timing is optimizer-agnostic (the weight update streams
//! a few KB), but deeper models (the Fig. 16 discussion: "larger datasets
//! and deeper models ... require more epochs") conventionally train with
//! Adam, so both are provided, with their streaming costs modeled.

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::DenseMatrix;

use crate::ops::elementwise_run;

/// A parameter-update rule over indexed weight matrices.
pub trait Optimizer {
    /// Apply one update to parameter `idx`: `w ← update(w, dw)`. Returns
    /// the simulated kernel run.
    fn step(
        &mut self,
        idx: usize,
        w: &mut DenseMatrix,
        dw: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> KernelRun;
}

/// Plain SGD: `w ← w − lr · dw`.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Optimizer for Sgd {
    fn step(
        &mut self,
        _idx: usize,
        w: &mut DenseMatrix,
        dw: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> KernelRun {
        crate::ops::sgd_step(w, dw, self.lr, dev)
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Step counter per parameter.
    t: Vec<u32>,
    /// First moments per parameter.
    m: Vec<Vec<f32>>,
    /// Second moments per parameter.
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the conventional defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure(&mut self, idx: usize, len: usize) {
        while self.m.len() <= idx {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
            self.t.push(0);
        }
        if self.m[idx].len() != len {
            self.m[idx] = vec![0.0; len];
            self.v[idx] = vec![0.0; len];
            self.t[idx] = 0;
        }
    }
}

impl Optimizer for Adam {
    fn step(
        &mut self,
        idx: usize,
        w: &mut DenseMatrix,
        dw: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> KernelRun {
        assert_eq!(w.data.len(), dw.data.len());
        self.ensure(idx, w.data.len());
        self.t[idx] += 1;
        let t = self.t[idx] as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (m, v) = (&mut self.m[idx], &mut self.v[idx]);
        for ((wi, &g), (mi, vi)) in w
            .data
            .iter_mut()
            .zip(&dw.data)
            .zip(m.iter_mut().zip(v.iter_mut()))
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *wi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        // Streams w, dw, m, v once each (read+write for w/m/v).
        let n = w.data.len() as u64;
        elementwise_run(4 * n, 3 * n, dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::rtx3090()
    }

    #[test]
    fn sgd_matches_manual_update() {
        let mut w = DenseMatrix::from_rows(&[&[1.0, 2.0]]);
        let dw = DenseMatrix::from_rows(&[&[0.5, -1.0]]);
        Sgd { lr: 0.1 }.step(0, &mut w, &dw, &device());
        assert_eq!(w.row(0), &[0.95, 2.1]);
    }

    #[test]
    fn adam_first_step_is_signed_lr() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut w = DenseMatrix::from_rows(&[&[0.0, 0.0]]);
        let dw = DenseMatrix::from_rows(&[&[3.0, -0.002]]);
        Adam::new(0.1).step(0, &mut w, &dw, &device());
        assert!((w[(0, 0)] + 0.1).abs() < 1e-4, "{}", w[(0, 0)]);
        assert!((w[(0, 1)] - 0.1).abs() < 1e-3, "{}", w[(0, 1)]);
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // Minimize f(w) = (w - 3)², gradient 2(w - 3).
        let mut w = DenseMatrix::from_rows(&[&[0.0]]);
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            let g = 2.0 * (w[(0, 0)] - 3.0);
            let dw = DenseMatrix::from_rows(&[&[g]]);
            opt.step(0, &mut w, &dw, &device());
        }
        assert!((w[(0, 0)] - 3.0).abs() < 0.05, "{}", w[(0, 0)]);
    }

    #[test]
    fn adam_state_tracks_parameters_independently() {
        let mut w0 = DenseMatrix::from_rows(&[&[0.0]]);
        let mut w1 = DenseMatrix::from_rows(&[&[0.0, 0.0]]);
        let mut opt = Adam::new(0.1);
        let d0 = DenseMatrix::from_rows(&[&[1.0]]);
        let d1 = DenseMatrix::from_rows(&[&[1.0, -1.0]]);
        opt.step(0, &mut w0, &d0, &device());
        opt.step(1, &mut w1, &d1, &device());
        opt.step(0, &mut w0, &d0, &device());
        assert!(w0[(0, 0)] < -0.1); // two steps on param 0
        assert!(w1[(0, 0)] < 0.0 && w1[(0, 1)] > 0.0);
    }
}
