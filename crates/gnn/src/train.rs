//! End-to-end training driver: runs epochs, collects per-phase timings.
//!
//! The paper reports average per-epoch forward and backward times (Tables
//! VIII/IX, Figs. 11–13); this driver produces exactly those quantities for
//! any aggregation backend.

use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, DenseMatrix};

use crate::aggregator::Aggregator;
use crate::gcn::Gcn;
use crate::gin::Gin;
use crate::ops;

/// Per-epoch simulated timing.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochTiming {
    /// Forward-propagation time (ms), including loss computation.
    pub forward_ms: f64,
    /// Backward-propagation time (ms), including SGD updates.
    pub backward_ms: f64,
    /// Training loss at the start of the epoch.
    pub loss: f64,
}

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    /// SGD learning rate.
    pub lr: f32,
    /// Number of epochs.
    pub epochs: usize,
}

impl Default for Trainer {
    fn default() -> Self {
        Trainer {
            lr: 0.05,
            epochs: 3,
        }
    }
}

impl Trainer {
    /// Train a GCN; returns per-epoch timings.
    pub fn train_gcn(
        &self,
        model: &mut Gcn,
        a_norm: &Csr,
        x: &DenseMatrix,
        labels: &[usize],
        agg: &dyn Aggregator,
        dev: &DeviceSpec,
    ) -> Vec<EpochTiming> {
        let mut out = Vec::with_capacity(self.epochs);
        for _ in 0..self.epochs {
            let (cache, fwd) = model.forward(a_norm, x, agg, dev);
            let (loss, dlogits, lrun) = ops::softmax_cross_entropy(&cache.logits, labels, dev);
            let bwd = model.backward(a_norm, x, &cache, &dlogits, agg, self.lr, dev);
            out.push(EpochTiming {
                forward_ms: fwd.time_ms + lrun.time_ms,
                backward_ms: bwd.time_ms,
                loss,
            });
        }
        out
    }

    /// Train a GIN over its propagation matrix `s`.
    pub fn train_gin(
        &self,
        model: &mut Gin,
        s: &Csr,
        x: &DenseMatrix,
        labels: &[usize],
        agg: &dyn Aggregator,
        dev: &DeviceSpec,
    ) -> Vec<EpochTiming> {
        let mut out = Vec::with_capacity(self.epochs);
        for _ in 0..self.epochs {
            let (cache, fwd) = model.forward(s, x, agg, dev);
            let (loss, dlogits, lrun) = ops::softmax_cross_entropy(&cache.logits, labels, dev);
            let bwd = model.backward(s, x, &cache, &dlogits, agg, self.lr, dev);
            out.push(EpochTiming {
                forward_ms: fwd.time_ms + lrun.time_ms,
                backward_ms: bwd.time_ms,
                loss,
            });
        }
        out
    }
}

/// Mean forward/backward time over epochs (the papers' reported statistic).
pub fn mean_timing(epochs: &[EpochTiming]) -> EpochTiming {
    if epochs.is_empty() {
        return EpochTiming::default();
    }
    let n = epochs.len() as f64;
    EpochTiming {
        forward_ms: epochs.iter().map(|e| e.forward_ms).sum::<f64>() / n,
        backward_ms: epochs.iter().map(|e| e.backward_ms).sum::<f64>() / n,
        loss: epochs.last().map(|e| e.loss).unwrap_or(0.0),
    }
}

/// Deterministic synthetic node labels (`node mod classes`): the datasets'
/// real labels are unavailable and irrelevant to kernel timing, as every
/// framework trains the same algorithm on the same data (§VI-A: "the
/// training results of these frameworks are identical").
pub fn synthetic_labels(n: usize, classes: usize) -> Vec<usize> {
    (0..n).map(|i| i % classes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::{HcAggregator, KernelAggregator};
    use crate::gin::gin_propagation;
    use graph_sparse::gen;

    #[test]
    fn gcn_epoch_timings_are_positive_and_stable() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(512, 3000, 16, 0.9, 1).gcn_normalize();
        let x = DenseMatrix::random_features(512, 32, 2);
        let labels = synthetic_labels(512, 8);
        let agg = HcAggregator::new(&a, &dev);
        let mut model = Gcn::new(32, 16, 8, 3);
        let t = Trainer::default().train_gcn(&mut model, &a, &x, &labels, &agg, &dev);
        assert_eq!(t.len(), 3);
        for e in &t {
            assert!(e.forward_ms > 0.0 && e.backward_ms > 0.0);
        }
        // Timing is deterministic across epochs (same work every epoch).
        assert!((t[0].forward_ms - t[2].forward_ms).abs() / t[0].forward_ms < 1e-9);
    }

    #[test]
    fn hc_beats_unfused_backends_on_gcn_backward() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(2048, 16_000, 64, 0.9, 4).gcn_normalize();
        let x = DenseMatrix::random_features(2048, 32, 5);
        let labels = synthetic_labels(2048, 8);
        let tr = Trainer {
            lr: 0.01,
            epochs: 1,
        };

        let hc = HcAggregator::new(&a, &dev);
        let ge = KernelAggregator::new(baselines::GeSpmm);
        let tc = KernelAggregator::new(baselines::TcGnnSpmm::default());

        let t_hc =
            mean_timing(&tr.train_gcn(&mut Gcn::new(32, 16, 8, 6), &a, &x, &labels, &hc, &dev));
        let t_ge =
            mean_timing(&tr.train_gcn(&mut Gcn::new(32, 16, 8, 6), &a, &x, &labels, &ge, &dev));
        let t_tc =
            mean_timing(&tr.train_gcn(&mut Gcn::new(32, 16, 8, 6), &a, &x, &labels, &tc, &dev));
        assert!(
            t_hc.backward_ms < t_ge.backward_ms,
            "hc {} !< ge {}",
            t_hc.backward_ms,
            t_ge.backward_ms
        );
        assert!(
            t_hc.backward_ms < t_tc.backward_ms,
            "hc {} !< tc {}",
            t_hc.backward_ms,
            t_tc.backward_ms
        );
    }

    #[test]
    fn gin_trains_with_timings() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(256, 1500, 8, 0.9, 7);
        let s = gin_propagation(&a, 0.1);
        let x = DenseMatrix::random_features(256, 16, 8);
        let labels = synthetic_labels(256, 4);
        let agg = HcAggregator::new(&s, &dev);
        let mut model = Gin::new(16, 8, 4, 9);
        let t = Trainer { lr: 0.1, epochs: 4 }.train_gin(&mut model, &s, &x, &labels, &agg, &dev);
        assert!(t.iter().all(|e| e.forward_ms > 0.0));
        // Loss from epoch 0 to 3 should not increase much (training works).
        assert!(t[3].loss <= t[0].loss * 1.05);
    }

    #[test]
    fn mean_timing_averages() {
        let e = vec![
            EpochTiming {
                forward_ms: 1.0,
                backward_ms: 2.0,
                loss: 1.0,
            },
            EpochTiming {
                forward_ms: 3.0,
                backward_ms: 4.0,
                loss: 0.5,
            },
        ];
        let m = mean_timing(&e);
        assert_eq!(m.forward_ms, 2.0);
        assert_eq!(m.backward_ms, 3.0);
        assert_eq!(m.loss, 0.5);
    }
}
