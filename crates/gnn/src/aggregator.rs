//! Pluggable Aggregation backends for the GNN pipeline.
//!
//! The evaluation's three frameworks differ only in which kernel serves the
//! Aggregation phase (and whether it can fuse the following Update):
//! HC-SpMM (with or without §V-A fusion), GE-SpMM and TC-GNN. The trait
//! below is that seam.

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::{Csr, DenseMatrix};
use hc_core::fusion::{fused_agg_update, gemm_run, unfused_agg_update, AggUpdateResult};
use hc_core::preprocess::Preprocessed;
use hc_core::{HcSpmm, SpmmKernel};

/// An Aggregation backend: computes `Z = Ā·G` and, optionally fused, the
/// following Update `Z·W`.
pub trait Aggregator {
    /// Framework name as printed in Figs. 11–13.
    fn name(&self) -> &'static str;

    /// Aggregation alone.
    fn aggregate(&self, a: &Csr, g: &DenseMatrix, dev: &DeviceSpec) -> (DenseMatrix, KernelRun);

    /// Aggregation followed by Update. The default is the unfused two-launch
    /// pipeline every framework other than HC-SpMM uses.
    fn agg_update(
        &self,
        a: &Csr,
        g: &DenseMatrix,
        w: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> AggUpdateResult {
        let (z, run) = self.aggregate(a, g, dev);
        let gemm = gemm_run(a.nrows, w.cols, w.rows, dev);
        AggUpdateResult {
            out: z.matmul(w),
            aggregated: z,
            run: run.then(&gemm),
        }
    }
}

/// HC-SpMM aggregation: preprocessing (condense + classify) is performed
/// once at construction and reused every epoch, mirroring the deployment
/// model of §VI-B1.
pub struct HcAggregator {
    /// The hybrid kernel.
    pub hc: HcSpmm,
    /// Cached preprocessing artifacts for the training graph.
    pub pre: Preprocessed,
    /// Apply the §V-A kernel fusion where Update follows Aggregation.
    pub fuse: bool,
}

impl HcAggregator {
    /// Preprocess `a` and build the aggregator (fusion on — the deployed
    /// configuration).
    pub fn new(a: &Csr, dev: &DeviceSpec) -> Self {
        let hc = HcSpmm::default();
        let pre = hc.preprocess(a, dev);
        HcAggregator {
            hc,
            pre,
            fuse: true,
        }
    }

    /// Same, with fusion disabled (Table VI's ablation).
    pub fn new_unfused(a: &Csr, dev: &DeviceSpec) -> Self {
        HcAggregator {
            fuse: false,
            ..Self::new(a, dev)
        }
    }
}

impl Aggregator for HcAggregator {
    fn name(&self) -> &'static str {
        if self.fuse {
            "HC-SpMM"
        } else {
            "HC-SpMM (no fusion)"
        }
    }

    fn aggregate(&self, a: &Csr, g: &DenseMatrix, dev: &DeviceSpec) -> (DenseMatrix, KernelRun) {
        let r = self.hc.spmm_preprocessed(&self.pre, a, g, dev);
        (r.z, r.run)
    }

    fn agg_update(
        &self,
        a: &Csr,
        g: &DenseMatrix,
        w: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> AggUpdateResult {
        if self.fuse {
            fused_agg_update(&self.hc, &self.pre, a, g, w, dev)
        } else {
            unfused_agg_update(&self.hc, &self.pre, a, g, w, dev)
        }
    }
}

/// Adapter: any [`SpmmKernel`] (GE-SpMM, TC-GNN, …) as an unfused
/// aggregation backend.
pub struct KernelAggregator<K: SpmmKernel> {
    /// The wrapped kernel.
    pub kernel: K,
}

impl<K: SpmmKernel> KernelAggregator<K> {
    /// Wrap a kernel.
    pub fn new(kernel: K) -> Self {
        KernelAggregator { kernel }
    }
}

impl<K: SpmmKernel> Aggregator for KernelAggregator<K> {
    fn name(&self) -> &'static str {
        self.kernel.name()
    }

    fn aggregate(&self, a: &Csr, g: &DenseMatrix, dev: &DeviceSpec) -> (DenseMatrix, KernelRun) {
        let r = self.kernel.spmm(a, g, dev);
        (r.z, r.run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    #[test]
    fn hc_aggregator_reuses_preprocessing() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(512, 4000, 16, 0.9, 1).gcn_normalize();
        let agg = HcAggregator::new(&a, &dev);
        let g = DenseMatrix::random_features(a.nrows, 16, 2);
        let (z1, r1) = agg.aggregate(&a, &g, &dev);
        let (z2, _) = agg.aggregate(&a, &g, &dev);
        assert_eq!(z1, z2);
        assert_eq!(r1.profile.launches, 1);
    }

    #[test]
    fn fused_and_unfused_agree() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(256, 2000, 8, 0.9, 3).gcn_normalize();
        let g = DenseMatrix::random_features(a.nrows, 16, 4);
        let w = DenseMatrix::random_features(16, 8, 5);
        let fused = HcAggregator::new(&a, &dev);
        let unfused = HcAggregator::new_unfused(&a, &dev);
        let rf = fused.agg_update(&a, &g, &w, &dev);
        let ru = unfused.agg_update(&a, &g, &w, &dev);
        assert_eq!(rf.out, ru.out);
        assert!(rf.run.time_ms < ru.run.time_ms);
    }

    #[test]
    fn kernel_aggregator_is_exact_for_cuda_kernels() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(128, 500, 7).gcn_normalize();
        let g = DenseMatrix::random_features(128, 8, 8);
        let agg = KernelAggregator::new(baselines::GeSpmm);
        let (z, _) = agg.aggregate(&a, &g, &dev);
        assert_eq!(z, a.spmm_reference(&g));
    }
}
