//! Pluggable Aggregation backends for the GNN pipeline.
//!
//! The evaluation's three frameworks differ only in which kernel serves the
//! Aggregation phase (and whether it can fuse the following Update):
//! HC-SpMM (with or without §V-A fusion), GE-SpMM and TC-GNN. The trait
//! below is that seam.

use std::sync::Arc;

use gpu_sim::{DeviceSpec, KernelRun};
use graph_sparse::{Csr, DenseMatrix};
use hc_core::fusion::{fused_agg_update, gemm_run, unfused_agg_update, AggUpdateResult};
use hc_core::{HcError, HcSpmm, KernelFamily, Plan, PlanSpec, SpmmKernel};

/// An Aggregation backend: computes `Z = Ā·G` and, optionally fused, the
/// following Update `Z·W`.
pub trait Aggregator {
    /// Framework name as printed in Figs. 11–13.
    fn name(&self) -> &'static str;

    /// Aggregation alone.
    fn aggregate(&self, a: &Csr, g: &DenseMatrix, dev: &DeviceSpec) -> (DenseMatrix, KernelRun);

    /// Aggregation followed by Update. The default is the unfused two-launch
    /// pipeline every framework other than HC-SpMM uses.
    fn agg_update(
        &self,
        a: &Csr,
        g: &DenseMatrix,
        w: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> AggUpdateResult {
        let (z, run) = self.aggregate(a, g, dev);
        let gemm = gemm_run(a.nrows, w.cols, w.rows, dev);
        AggUpdateResult {
            out: z.matmul(w),
            aggregated: z,
            run: run.then(&gemm),
        }
    }
}

/// HC-SpMM aggregation: a prepared [`Plan`] (condense + classify) is built
/// once and reused every epoch, mirroring the deployment model of §VI-B1.
/// The plan is an `Arc` so a serving-side cache (`hc-serve`) and a training
/// loop can share the identical prepared artifacts.
pub struct HcAggregator {
    /// The prepared execution plan for the training graph (hybrid family,
    /// no LOA — see [`HcAggregator::from_plan`]).
    pub plan: Arc<Plan>,
    /// Apply the §V-A kernel fusion where Update follows Aggregation.
    pub fuse: bool,
}

impl HcAggregator {
    /// Preprocess `a` and build the aggregator (fusion on — the deployed
    /// configuration).
    pub fn new(a: &Csr, dev: &DeviceSpec) -> Self {
        Self::with_kernel(HcSpmm::default(), a, dev, true)
    }

    /// Same, with fusion disabled (Table VI's ablation).
    pub fn new_unfused(a: &Csr, dev: &DeviceSpec) -> Self {
        Self::with_kernel(HcSpmm::default(), a, dev, false)
    }

    /// Prepare a plan with a custom kernel configuration (e.g. a selector
    /// pinned to the CUDA path for exact-arithmetic tests).
    pub fn with_kernel(hc: HcSpmm, a: &Csr, dev: &DeviceSpec, fuse: bool) -> Self {
        let plan = Plan::prepare_with(hc, a, PlanSpec::hybrid(), dev);
        Self::from_plan(Arc::new(plan), fuse)
    }

    /// Wrap an already-prepared plan — typically one fetched from an
    /// `hc-serve` plan cache, so training reuses the cached artifacts
    /// instead of re-preprocessing. The plan must be a plain hybrid plan:
    /// the fused Update path consumes the preprocessing of the *original*
    /// graph, which an LOA plan does not carry.
    pub fn from_plan(plan: Arc<Plan>, fuse: bool) -> Self {
        Self::try_from_plan(plan, fuse).expect("plan incompatible with HcAggregator")
    }

    /// Non-panicking [`HcAggregator::from_plan`]: an unusable plan (wrong
    /// kernel family, or LOA-permuted) comes back as a typed
    /// [`HcError::IncompatiblePlan`] instead of aborting a training run.
    pub fn try_from_plan(plan: Arc<Plan>, fuse: bool) -> Result<Self, HcError> {
        if plan.spec.family != KernelFamily::Hybrid {
            return Err(HcError::IncompatiblePlan(
                "HcAggregator requires a hybrid-family plan",
            ));
        }
        if plan.loa.is_some() {
            return Err(HcError::IncompatiblePlan(
                "HcAggregator cannot run on an LOA-permuted plan",
            ));
        }
        Ok(HcAggregator { plan, fuse })
    }
}

impl Aggregator for HcAggregator {
    fn name(&self) -> &'static str {
        if self.fuse {
            "HC-SpMM"
        } else {
            "HC-SpMM (no fusion)"
        }
    }

    fn aggregate(&self, a: &Csr, g: &DenseMatrix, dev: &DeviceSpec) -> (DenseMatrix, KernelRun) {
        let r = self.plan.hc.spmm_preprocessed(&self.plan.pre, a, g, dev);
        (r.z, r.run)
    }

    fn agg_update(
        &self,
        a: &Csr,
        g: &DenseMatrix,
        w: &DenseMatrix,
        dev: &DeviceSpec,
    ) -> AggUpdateResult {
        if self.fuse {
            fused_agg_update(&self.plan.hc, &self.plan.pre, a, g, w, dev)
        } else {
            unfused_agg_update(&self.plan.hc, &self.plan.pre, a, g, w, dev)
        }
    }
}

/// Adapter: any [`SpmmKernel`] (GE-SpMM, TC-GNN, …) as an unfused
/// aggregation backend.
pub struct KernelAggregator<K: SpmmKernel> {
    /// The wrapped kernel.
    pub kernel: K,
}

impl<K: SpmmKernel> KernelAggregator<K> {
    /// Wrap a kernel.
    pub fn new(kernel: K) -> Self {
        KernelAggregator { kernel }
    }
}

impl<K: SpmmKernel> Aggregator for KernelAggregator<K> {
    fn name(&self) -> &'static str {
        self.kernel.name()
    }

    fn aggregate(&self, a: &Csr, g: &DenseMatrix, dev: &DeviceSpec) -> (DenseMatrix, KernelRun) {
        let r = self.kernel.spmm(a, g, dev);
        (r.z, r.run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_sparse::gen;

    #[test]
    fn hc_aggregator_reuses_preprocessing() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(512, 4000, 16, 0.9, 1).gcn_normalize();
        let agg = HcAggregator::new(&a, &dev);
        let g = DenseMatrix::random_features(a.nrows, 16, 2);
        let (z1, r1) = agg.aggregate(&a, &g, &dev);
        let (z2, _) = agg.aggregate(&a, &g, &dev);
        assert_eq!(z1, z2);
        assert_eq!(r1.profile.launches, 1);
    }

    #[test]
    fn cached_plan_drives_training_aggregation() {
        // The serving cache and a training loop share one prepared plan:
        // no re-preprocessing, identical output to a freshly built
        // aggregator.
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(512, 4000, 16, 0.9, 2).gcn_normalize();
        let g = DenseMatrix::random_features(a.nrows, 16, 3);

        let mut cache = hc_serve::PlanCache::new(u64::MAX, PlanSpec::hybrid());
        let (plan, _) = cache.get_or_prepare(&a, &dev);
        let agg = HcAggregator::from_plan(Arc::clone(&plan), true);
        assert!(
            Arc::ptr_eq(&agg.plan, &plan),
            "plan must be shared, not copied"
        );

        let fresh = HcAggregator::new(&a, &dev);
        assert_eq!(
            agg.aggregate(&a, &g, &dev).0,
            fresh.aggregate(&a, &g, &dev).0
        );
        // Epoch after epoch the cache keeps hitting the same plan.
        let (again, hit) = cache.get_or_prepare(&a, &dev);
        assert!(hit);
        assert!(Arc::ptr_eq(&again, &agg.plan));
    }

    #[test]
    fn incompatible_plans_are_rejected_with_typed_errors() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(128, 800, 8, 0.9, 9).gcn_normalize();
        let cuda_plan = Arc::new(Plan::prepare(
            &a,
            PlanSpec {
                family: KernelFamily::Cuda,
                use_loa: false,
            },
            &dev,
        ));
        assert!(matches!(
            HcAggregator::try_from_plan(cuda_plan, true),
            Err(HcError::IncompatiblePlan(_))
        ));
        let loa_plan = Arc::new(Plan::prepare(
            &a,
            PlanSpec {
                family: KernelFamily::Hybrid,
                use_loa: true,
            },
            &dev,
        ));
        assert!(matches!(
            HcAggregator::try_from_plan(loa_plan, true),
            Err(HcError::IncompatiblePlan(_))
        ));
        let good = Arc::new(Plan::prepare(&a, PlanSpec::hybrid(), &dev));
        assert!(HcAggregator::try_from_plan(good, true).is_ok());
    }

    #[test]
    fn fused_and_unfused_agree() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::community(256, 2000, 8, 0.9, 3).gcn_normalize();
        let g = DenseMatrix::random_features(a.nrows, 16, 4);
        let w = DenseMatrix::random_features(16, 8, 5);
        let fused = HcAggregator::new(&a, &dev);
        let unfused = HcAggregator::new_unfused(&a, &dev);
        let rf = fused.agg_update(&a, &g, &w, &dev);
        let ru = unfused.agg_update(&a, &g, &w, &dev);
        assert_eq!(rf.out, ru.out);
        assert!(rf.run.time_ms < ru.run.time_ms);
    }

    #[test]
    fn kernel_aggregator_is_exact_for_cuda_kernels() {
        let dev = DeviceSpec::rtx3090();
        let a = gen::erdos_renyi(128, 500, 7).gcn_normalize();
        let g = DenseMatrix::random_features(128, 8, 8);
        let agg = KernelAggregator::new(baselines::GeSpmm);
        let (z, _) = agg.aggregate(&a, &g, &dev);
        assert_eq!(z, a.spmm_reference(&g));
    }
}
