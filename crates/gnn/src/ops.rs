//! Elementwise / classification kernels and their cost models.
//!
//! These are the small kernels around Aggregation and Update: ReLU (and its
//! backward mask), softmax cross-entropy, and the SGD weight update. They
//! are bandwidth-bound streams; each costs one launch plus its memory
//! traffic.

use gpu_sim::{BlockCost, DeviceSpec, KernelRun};
use graph_sparse::DenseMatrix;

/// Simulate an elementwise kernel that reads `reads` f32 values and writes
/// `writes` f32 values.
pub fn elementwise_run(reads: u64, writes: u64, dev: &DeviceSpec) -> KernelRun {
    // Stream split across enough blocks to fill the device.
    let total_bytes = (reads + writes) * 4;
    let blocks_n = (total_bytes / (64 * 1024)).clamp(1, 4 * dev.num_sms as u64) as usize;
    let mut blocks = Vec::with_capacity(blocks_n);
    for _ in 0..blocks_n {
        let mut b = BlockCost {
            warps: 8,
            ..Default::default()
        };
        b.dram.bytes_loaded = reads * 4 / blocks_n as u64;
        b.dram.bytes_stored = writes * 4 / blocks_n as u64;
        b.dram.transactions =
            (b.dram.bytes_loaded + b.dram.bytes_stored) / dev.transaction_bytes as u64;
        b.cuda_fma_issues = (reads / blocks_n as u64) / 32;
        blocks.push(b);
    }
    dev.execute(&blocks)
}

/// ReLU forward: returns the activated matrix and the kernel run.
pub fn relu(x: &DenseMatrix, dev: &DeviceSpec) -> (DenseMatrix, KernelRun) {
    let out = x.map(|v| v.max(0.0));
    let n = x.data.len() as u64;
    (out, elementwise_run(n, n, dev))
}

/// ReLU backward: gradient masked by the forward activation's sign.
pub fn relu_backward(
    grad: &DenseMatrix,
    activated: &DenseMatrix,
    dev: &DeviceSpec,
) -> (DenseMatrix, KernelRun) {
    assert_eq!(grad.data.len(), activated.data.len());
    let data = grad
        .data
        .iter()
        .zip(&activated.data)
        .map(|(&g, &a)| if a > 0.0 { g } else { 0.0 })
        .collect();
    let out = DenseMatrix {
        rows: grad.rows,
        cols: grad.cols,
        data,
    };
    let n = grad.data.len() as u64;
    (out, elementwise_run(2 * n, n, dev))
}

/// Softmax cross-entropy over rows: returns `(mean loss, dLogits)` plus the
/// kernel run. `labels[i]` is row `i`'s class.
///
/// Rows are independent, so each is computed on the `hc-parallel` pool;
/// the per-row loss partials are then folded in row order on the calling
/// thread, keeping the total bit-identical to the serial loop.
pub fn softmax_cross_entropy(
    logits: &DenseMatrix,
    labels: &[usize],
    dev: &DeviceSpec,
) -> (f64, DenseMatrix, KernelRun) {
    assert_eq!(logits.rows, labels.len());
    let work = 8 * logits.data.len() as u64;
    let rows: Vec<(f64, Vec<f32>)> = hc_parallel::par_map_indexed(logits.rows, work, |r| {
        let y = labels[r];
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let sum: f64 = exps.iter().sum();
        debug_assert!(y < logits.cols);
        let loss = -(exps[y] / sum).max(1e-30).ln();
        let g: Vec<f32> = exps
            .iter()
            .enumerate()
            .map(|(c, &e)| {
                let p = e / sum;
                (p - if c == y { 1.0 } else { 0.0 }) as f32 / logits.rows as f32
            })
            .collect();
        (loss, g)
    });
    let mut grad = DenseMatrix::zeros(logits.rows, logits.cols);
    let mut loss = 0.0f64;
    for (r, (l, g)) in rows.into_iter().enumerate() {
        loss += l;
        grad.row_mut(r).copy_from_slice(&g);
    }
    let n = logits.data.len() as u64;
    let run = elementwise_run(2 * n, n, dev);
    (loss / logits.rows as f64, grad, run)
}

/// SGD step `w -= lr · dw`, in place, with its kernel cost.
pub fn sgd_step(w: &mut DenseMatrix, dw: &DenseMatrix, lr: f32, dev: &DeviceSpec) -> KernelRun {
    assert_eq!((w.rows, w.cols), (dw.rows, dw.cols));
    for (a, b) in w.data.iter_mut().zip(&dw.data) {
        *a -= lr * b;
    }
    let n = w.data.len() as u64;
    elementwise_run(2 * n, n, dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_and_masks() {
        let dev = DeviceSpec::rtx3090();
        let x = DenseMatrix::from_rows(&[&[-1.0, 2.0], &[0.5, -0.5]]);
        let (y, _) = relu(&x, &dev);
        assert_eq!(y.row(0), &[0.0, 2.0]);
        let g = DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let (gx, _) = relu_backward(&g, &y, &dev);
        assert_eq!(gx.row(0), &[0.0, 1.0]);
        assert_eq!(gx.row(1), &[1.0, 0.0]);
    }

    #[test]
    fn softmax_loss_of_perfect_logits_is_small() {
        let dev = DeviceSpec::rtx3090();
        let logits = DenseMatrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (loss, grad, _) = softmax_cross_entropy(&logits, &[0, 1], &dev);
        assert!(loss < 1e-6);
        assert!(grad.data.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn softmax_gradient_matches_finite_differences() {
        let dev = DeviceSpec::rtx3090();
        let mut logits = DenseMatrix::random_features(4, 3, 9);
        let labels = [0usize, 2, 1, 1];
        let (_, grad, _) = softmax_cross_entropy(&logits, &labels, &dev);
        let eps = 1e-3f32;
        for r in 0..4 {
            for c in 0..3 {
                let orig = logits[(r, c)];
                logits[(r, c)] = orig + eps;
                let (lp, _, _) = softmax_cross_entropy(&logits, &labels, &dev);
                logits[(r, c)] = orig - eps;
                let (lm, _, _) = softmax_cross_entropy(&logits, &labels, &dev);
                logits[(r, c)] = orig;
                let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (fd - grad[(r, c)]).abs() < 1e-3,
                    "grad mismatch at ({r},{c}): fd {fd} vs {}",
                    grad[(r, c)]
                );
            }
        }
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let dev = DeviceSpec::rtx3090();
        let mut w = DenseMatrix::from_rows(&[&[1.0, 1.0]]);
        let dw = DenseMatrix::from_rows(&[&[0.5, -0.5]]);
        sgd_step(&mut w, &dw, 0.1, &dev);
        assert_eq!(w.row(0), &[0.95, 1.05]);
    }

    #[test]
    fn elementwise_time_scales_with_volume() {
        let dev = DeviceSpec::rtx3090();
        let small = elementwise_run(1 << 10, 1 << 10, &dev);
        let big = elementwise_run(1 << 24, 1 << 24, &dev);
        assert!(big.time_ms > small.time_ms);
    }
}
