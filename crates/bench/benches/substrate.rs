//! Substrate microbenchmarks: window partitioning, format conversion,
//! generators — the building blocks every experiment leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use graph_sparse::{gen, RowWindowPartition};

fn bench_substrate(c: &mut Criterion) {
    let a = gen::barabasi_albert(32_768, 4, 1);
    c.bench_function("row_window_partition_32k", |b| {
        b.iter(|| RowWindowPartition::build(&a))
    });
    c.bench_function("csr_transpose_32k", |b| b.iter(|| a.transpose()));
    c.bench_function("gcn_normalize_32k", |b| b.iter(|| a.gcn_normalize()));
    c.bench_function("generate_community_8k", |b| {
        b.iter(|| gen::community(8_192, 49_152, 256, 0.9, 7))
    });
    c.bench_function("metcf_conversion_32k", |b| {
        b.iter(|| graph_sparse::MeTcf::from_csr(&a))
    });
    c.bench_function("generate_molecules_8k", |b| {
        b.iter(|| gen::molecules(8_192, 20_000, 7))
    });
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
