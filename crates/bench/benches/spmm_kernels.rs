//! Criterion microbenchmarks: wall-clock of the simulated kernels
//! themselves (numerics + cost accounting) on a mid-size graph.
//!
//! These measure *this implementation*, complementing the `src/bin`
//! harnesses that report *simulated device* time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::DeviceSpec;
use graph_sparse::{gen, DenseMatrix};
use hc_core::HcSpmm;

fn bench_kernels(c: &mut Criterion) {
    let a = gen::community(8_192, 49_152, 256, 0.9, 1);
    let x = DenseMatrix::random_features(a.nrows, 64, 2);
    let dev = DeviceSpec::rtx3090();
    let mut g = c.benchmark_group("spmm_kernels");
    for k in baselines::all_kernels() {
        g.bench_function(BenchmarkId::from_parameter(k.name()), |b| {
            b.iter(|| k.spmm(&a, &x, &dev))
        });
    }
    g.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let a = gen::community(16_384, 98_304, 512, 0.9, 3);
    let dev = DeviceSpec::rtx3090();
    let hc = HcSpmm::default();
    c.bench_function("hc_preprocess_16k", |b| b.iter(|| hc.preprocess(&a, &dev)));
}

criterion_group!(benches, bench_kernels, bench_preprocessing);
criterion_main!(benches);
