//! Algorithm 5 vs Algorithm 6: the paper's "Efficiency Optimization" claim
//! — the incremental `cns` counters remove the redundant set unions of the
//! brute-force layout reformat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_sparse::gen;
use hc_core::{Loa, LoaBrute};

fn bench_loa(c: &mut Criterion) {
    let mut g = c.benchmark_group("loa_alg5_vs_alg6");
    for n in [2_048usize, 8_192] {
        let a = gen::scatter_relabel(&gen::molecules(n, n * 3, 1), 2);
        g.bench_with_input(BenchmarkId::new("alg6_optimized", n), &a, |b, a| {
            b.iter(|| Loa::default().run(a))
        });
        g.bench_with_input(BenchmarkId::new("alg5_brute", n), &a, |b, a| {
            b.iter(|| LoaBrute::default().run(a))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_loa);
criterion_main!(benches);
