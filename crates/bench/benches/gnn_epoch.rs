//! Wall-clock of one simulated GCN training epoch per aggregation backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gnn::aggregator::{Aggregator, HcAggregator, KernelAggregator};
use gnn::train::{synthetic_labels, Trainer};
use gnn::Gcn;
use gpu_sim::DeviceSpec;
use graph_sparse::{gen, DenseMatrix};

fn bench_epoch(c: &mut Criterion) {
    let dev = DeviceSpec::rtx3090();
    let a = gen::community(4_096, 24_576, 128, 0.9, 1).gcn_normalize();
    let x = DenseMatrix::random_features(a.nrows, 64, 2);
    let labels = synthetic_labels(a.nrows, 8);
    let tr = Trainer {
        lr: 0.05,
        epochs: 1,
    };

    let mut g = c.benchmark_group("gcn_epoch");
    let hc = HcAggregator::new(&a, &dev);
    let ge = KernelAggregator::new(baselines::GeSpmm);
    let backends: Vec<(&str, &dyn Aggregator)> = vec![("hc_fused", &hc), ("ge_spmm", &ge)];
    for (name, agg) in backends {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut m = Gcn::new(64, 32, 8, 3);
                tr.train_gcn(&mut m, &a, &x, &labels, agg, &dev)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
