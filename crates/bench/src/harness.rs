//! Shared harness utilities: dataset loading, table formatting, statistics.

use std::collections::HashMap;

use graph_sparse::{Dataset, DatasetId};

/// Scale divisor for dataset analogues, configurable via the `HC_SCALE`
/// environment variable (default 64; smaller = bigger graphs = slower).
pub fn scale() -> usize {
    std::env::var("HC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(graph_sparse::datasets::DEFAULT_SCALE)
}

/// Load a set of datasets at the harness scale, caching within the process.
pub struct DatasetCache {
    scale: usize,
    loaded: HashMap<DatasetId, Dataset>,
}

impl DatasetCache {
    /// New cache at the harness scale.
    pub fn new() -> Self {
        Self::with_scale(scale())
    }

    /// New cache at an explicit scale divisor (tests use this to stay
    /// independent of the `HC_SCALE` environment variable).
    pub fn with_scale(scale: usize) -> Self {
        DatasetCache {
            scale,
            loaded: HashMap::new(),
        }
    }

    /// Fetch (generating on first use).
    pub fn get(&mut self, id: DatasetId) -> &Dataset {
        let scale = self.scale;
        self.loaded.entry(id).or_insert_with(|| {
            eprintln!("  [gen] {} at 1/{} scale…", id.code(), scale);
            id.load_scaled(scale)
        })
    }

    /// The configured scale divisor.
    pub fn scale(&self) -> usize {
        self.scale
    }
}

impl Default for DatasetCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-text aligned table, in the style of the paper's tables.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Horizontal ASCII bar chart: one row per (label, value), scaled to
/// `width` characters — the harness's stand-in for the paper's bar figures.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    if max <= 0.0 {
        return String::new();
    }
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_w$} | {}{} {}
",
            "█".repeat(n),
            " ".repeat(width - n),
            f3(*v)
        ));
    }
    out
}

/// Geometric mean of positive values.
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Format a float with a precision suited to its magnitude.
pub fn f3(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "val"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    fn geomean_of_uniform_is_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn cache_returns_same_graph() {
        let mut c = DatasetCache::new();
        let a = c.get(DatasetId::CR).adj.clone();
        let b = c.get(DatasetId::CR).adj.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let rows = vec![("a".to_string(), 2.0), ("bb".to_string(), 1.0)];
        let s = bar_chart(&rows, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('█').count(), 10);
        assert_eq!(lines[1].matches('█').count(), 5);
        assert!(bar_chart(&[], 10).is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(123.456), "123.5");
        assert_eq!(f3(1.234), "1.23");
        assert_eq!(f3(0.1234), "0.1234");
        assert_eq!(pct(0.1234), "12.34%");
    }
}
