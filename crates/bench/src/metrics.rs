//! Machine-readable bench metrics: the `BENCH.json` report emitted by
//! `run_all`, plus the perf-regression gate that compares a fresh report
//! against the committed baseline in CI.
//!
//! The container has no crates.io access (the `serde` shim has no
//! serializer backend), so the JSON here is hand-rolled: a small writer
//! with string escaping and a minimal recursive-descent parser covering
//! exactly the subset the report uses.
//!
//! ## `BENCH.json` schema (version 1)
//!
//! ```json
//! {
//!   "schema": 1,
//!   "scale": 1024,
//!   "threads": 8,
//!   "experiments": [
//!     {"name": "fig10_spmm", "wall_ms": 123.4, "cpu_ms": 119.7}
//!   ],
//!   "kernels": [
//!     {"family": "hybrid", "dataset": "CR", "serial_ms": 80.1,
//!      "parallel_ms": 11.9, "speedup": 6.73, "bit_identical": true,
//!      "serial_fallback": false}
//!   ],
//!   "plan_cache": {"requests": 48, "hits": 44, "misses": 4,
//!                  "evictions": 0, "hit_rate": 0.9167,
//!                  "cold_ms": 1.92, "amortized_ms": 0.31},
//!   "fault_recovery": {"requests": 32, "ok": 24, "degraded": 8,
//!                      "failed": 0, "retries": 5, "fallbacks": 3,
//!                      "quarantined": 1, "degraded_rate": 0.25,
//!                      "wasted_sim_ms": 0.42},
//!   "hot_path": {"requests": 64, "cost_builds": 1, "cost_reuses": 63,
//!                "scratch_allocs": 1, "scratch_reuses": 63,
//!                "allocs_per_request": 0.031, "parallel_regions": 0,
//!                "serial_fallbacks": 128, "warm_ms": 0.4, "cold_ms": 2.1},
//!   "serving_load": {"submitted": 96, "admitted": 84, "rejected_queue": 8,
//!                    "rejected_quota": 4, "served": 84, "cohorts": 24,
//!                    "cohort_rate": 0.86, "p50_sim_ms": 1.2,
//!                    "p99_sim_ms": 4.7, "amortized_sim_ms": 0.9,
//!                    "uncohorted_sim_ms": 2.8, "tenants": [
//!      {"tenant": 0, "submitted": 24, "admitted": 20, "rejected": 4,
//!       "slo_violations": 1, "p99_sim_ms": 4.7}
//!   ]},
//!   "dynamic_graphs": {"max_patch_ratio": 0.11, "sublinear": true,
//!                      "mutations": 4, "patched_plans": 4,
//!                      "stale_served": 6, "swaps": 4,
//!                      "amortized_churn_sim_ms": 0.52,
//!                      "amortized_steady_sim_ms": 0.49,
//!                      "churn_overhead_ratio": 1.06, "scale_points": [
//!      {"nrows": 4096, "nnz": 32768, "windows": 256,
//!       "full_prepare_sim_ms": 0.8, "patch_sim_ms": 0.09,
//!       "patch_ratio": 0.11}
//!   ]},
//!   "recovery": {"crash_points": 14, "resume_epoch": 3, "total_epochs": 8,
//!                "replayed_deltas": 2, "skipped_duplicates": 0,
//!                "double_applied": 0, "rolled_back_records": 0,
//!                "restored_plans": 2, "full_prepares": 1,
//!                "patch_replays": 1, "warm_recovery_sim_ms": 0.9,
//!                "cold_replay_sim_ms": 4.1, "recovery_ratio": 0.22,
//!                "equivalent": true},
//!   "tile_compress": {"windows": 1792, "meta_bytes_compressed": 180000,
//!                     "meta_bytes_uncompressed": 1400000,
//!                     "bytes_ratio": 0.13, "plan_bytes_compressed": 310000,
//!                     "plan_bytes_uncompressed": 1500000,
//!                     "plan_bytes_ratio": 0.21,
//!                     "prepare_sim_ms_compressed": 0.8,
//!                     "prepare_sim_ms_uncompressed": 1.1,
//!                     "prepare_cost_ratio": 0.73,
//!                     "tensor_cycles_pipelined": 1.1e6,
//!                     "tensor_cycles_unpipelined": 1.5e6,
//!                     "tensor_cycle_ratio": 0.74}
//! }
//! ```
//!
//! `plan_cache` (the `ext_plan_cache_amortization` experiment's counters),
//! `fault_recovery` (the `ext_fault_recovery` chaos-serving counters),
//! `hot_path` (the `ext_hot_path` workspace/pool counters),
//! `serving_load` (the `ext_serving_load` front-end counters),
//! `dynamic_graphs` (the `ext_churn` incremental re-planning counters) and
//! `recovery` (the `ext_recovery` crash-recovery counters) are
//! all optional: reports written before those subsystems existed —
//! including the committed baseline — parse unchanged. The same goes for
//! the per-kernel `serial_fallback` flag.
//!
//! `experiments` records wall-clock and process CPU time per experiment;
//! `kernels` records per-kernel-family SpMM timings against a forced
//! single-thread run of the same kernel, with a bit-identity check of the
//! two outputs. The CI gate compares `cpu_ms` when both reports carry it
//! (CPU time is immune to scheduler preemption and hypervisor steal, which
//! dominate wall-clock variance on shared runners) and falls back to
//! `wall_ms` otherwise; `cpu_ms` is 0 when the platform cannot measure it.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use gpu_sim::DeviceSpec;
use graph_sparse::{DatasetId, DenseMatrix};
use hc_core::{CudaSpmm, HcSpmm, SpmmKernel, StraightforwardHybrid, TensorSpmm};

use crate::harness::DatasetCache;

/// Report schema version written to (and required from) `BENCH.json`.
pub const SCHEMA_VERSION: u64 = 1;

/// Timing of one experiment in a `run_all` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTiming {
    /// Experiment name (stable across runs; the gate joins on it).
    pub name: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Process CPU milliseconds (user + system, all threads); 0 when the
    /// platform cannot measure it.
    pub cpu_ms: f64,
}

/// One kernel family timed at the configured thread count and serially.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpeedup {
    /// Kernel family (`straightforward` / `cuda` / `tensor` / `hybrid`).
    pub family: String,
    /// Dataset code the measurement ran on.
    pub dataset: String,
    /// Wall-clock of the forced single-thread run, ms.
    pub serial_ms: f64,
    /// Wall-clock at the configured thread count, ms.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`, pinned to 1.0 when the pool never
    /// engaged (see [`serial_fallback`](KernelSpeedup::serial_fallback)).
    pub speedup: f64,
    /// Whether the two runs produced bit-identical output matrices.
    pub bit_identical: bool,
    /// True when the calibrated serial fast path handled every region of
    /// the "parallel" run (sub-threshold work or a single-core host). Both
    /// sides then execute identical code, the measured ratio is pure
    /// scheduler noise, and `speedup` is pinned to 1.0.
    pub serial_fallback: bool,
}

/// Plan-cache serving counters from the `ext_plan_cache_amortization`
/// experiment: how much of a repeated-graph request mix the structure-keyed
/// cache absorbed, and what that did to the per-request cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCacheMetrics {
    /// Requests served.
    pub requests: u64,
    /// Requests that reused a cached plan.
    pub hits: u64,
    /// Requests that prepared a plan.
    pub misses: u64,
    /// Plans evicted by the byte budget.
    pub evictions: u64,
    /// `hits / requests`.
    pub hit_rate: f64,
    /// Mean simulated per-request cost if every request re-prepared, ms.
    pub cold_ms: f64,
    /// Mean simulated per-request cost through the cache, ms.
    pub amortized_ms: f64,
}

/// Chaos-serving counters from the `ext_fault_recovery` experiment: how a
/// deterministic fault schedule degraded a batched request mix, and what
/// the recovery (retries + fallbacks) cost in discarded simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecoveryMetrics {
    /// Requests served under the fault schedule.
    pub requests: u64,
    /// Clean primary-family successes.
    pub ok: u64,
    /// Requests served after retry and/or fallback.
    pub degraded: u64,
    /// Requests that could not be served (typed errors).
    pub failed: u64,
    /// Total retries across all requests.
    pub retries: u64,
    /// Requests whose surviving result came from a non-primary step.
    pub fallbacks: u64,
    /// Plan structures quarantined by fault implication.
    pub quarantined: u64,
    /// `degraded / requests`.
    pub degraded_rate: f64,
    /// Total simulated milliseconds of discarded (faulted) attempts.
    pub wasted_sim_ms: f64,
}

/// Hot-path counters from the `ext_hot_path` experiment: how much
/// per-request work the plan workspace amortized away on a repeated
/// serving mix, and how often the calibrated pool declined to fan out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotPathMetrics {
    /// Requests served through the warm plan.
    pub requests: u64,
    /// Block-cost vectors built (workspace cost-cache misses).
    pub cost_builds: u64,
    /// Requests served from the cached block-cost vector.
    pub cost_reuses: u64,
    /// LOA scratch checkouts that allocated fresh buffers.
    pub scratch_allocs: u64,
    /// LOA scratch checkouts served by recycled buffers.
    pub scratch_reuses: u64,
    /// `(cost_builds + scratch_allocs) / requests` — the per-request
    /// allocation rate the workspace is driving toward zero.
    pub allocs_per_request: f64,
    /// Pool regions that fanned out during the serving loop.
    pub parallel_regions: u64,
    /// Pool regions the calibrated serial fast path absorbed.
    pub serial_fallbacks: u64,
    /// Mean host milliseconds per request through the warm plan.
    pub warm_ms: f64,
    /// Mean host milliseconds per request on a cold workspace (a fresh
    /// plan per request, re-deriving costs and re-allocating staging).
    pub cold_ms: f64,
}

/// One tenant's admission/SLO row inside [`ServingLoadMetrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSlo {
    /// Tenant identifier.
    pub tenant: u64,
    /// Trace entries this tenant submitted.
    pub submitted: u64,
    /// Entries that passed admission.
    pub admitted: u64,
    /// Entries shed at admission (queue or quota).
    pub rejected: u64,
    /// Served entries whose simulated latency exceeded the SLO.
    pub slo_violations: u64,
    /// 99th-percentile simulated latency over this tenant's served
    /// entries, ms.
    pub p99_sim_ms: f64,
}

/// Serving-load counters from the `ext_serving_load` experiment: what the
/// cohorting front-end did to a multi-tenant request mix — admission
/// shedding, cohort formation, latency percentiles, and the amortized
/// per-request simulated cost vs. the uncohorted in-order driver.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingLoadMetrics {
    /// Trace entries ingested.
    pub submitted: u64,
    /// Entries that passed admission.
    pub admitted: u64,
    /// Shed: ingestion queue full.
    pub rejected_queue: u64,
    /// Shed: tenant epoch quota exhausted.
    pub rejected_quota: u64,
    /// Entries served (ok or degraded).
    pub served: u64,
    /// Cohorts dispatched.
    pub cohorts: u64,
    /// Fraction of admitted entries that executed in a cohort of ≥ 2.
    pub cohort_rate: f64,
    /// Median simulated latency over served entries, ms.
    pub p50_sim_ms: f64,
    /// 99th-percentile simulated latency over served entries, ms.
    pub p99_sim_ms: f64,
    /// Mean simulated cost (prepare + exec + wasted) per admitted entry
    /// through the cohorting front, ms.
    pub amortized_sim_ms: f64,
    /// The same mix through the uncohorted in-order `BatchDriver`, ms
    /// per request — the control the front must beat.
    pub uncohorted_sim_ms: f64,
    /// Per-tenant admission and SLO accounting, ordered by tenant id.
    pub tenants: Vec<TenantSlo>,
}

/// One graph size in the patch-cost scaling sweep inside
/// [`DynamicGraphsMetrics`]. All times are simulated (deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnScalePoint {
    /// Graph rows.
    pub nrows: u64,
    /// Graph non-zeros.
    pub nnz: u64,
    /// 16-row windows (what full preprocessing scales with).
    pub windows: u64,
    /// Simulated cost of preparing a plan from scratch, ms.
    pub full_prepare_sim_ms: f64,
    /// Simulated cost of patching the plan for a small delta (dirty
    /// windows only), ms.
    pub patch_sim_ms: f64,
    /// `patch_sim_ms / full_prepare_sim_ms` — the gated ratio.
    pub patch_ratio: f64,
}

/// Dynamic-graph churn counters from the `ext_churn` experiment: the
/// patch-cost scaling sweep (incremental re-planning must stay sublinear
/// in graph size for small deltas) and the serving-under-churn comparison
/// (amortized per-request cost must stay flat when mutations interleave
/// with requests). All times are simulated, so every field is
/// deterministic and exactly gateable.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicGraphsMetrics {
    /// Patch-vs-full cost at increasing graph sizes, smallest first.
    pub scale_points: Vec<ChurnScalePoint>,
    /// Largest `patch_ratio` across the sweep (gated by
    /// `bench_gate --max-patch-cost-ratio`).
    pub max_patch_ratio: f64,
    /// Whether the patch ratio *shrinks* as the graph grows — the
    /// sublinearity evidence (a fixed small delta dirties a fixed number
    /// of windows while full preprocessing scales with all of them).
    pub sublinear: bool,
    /// Mutations ingested by the churn serving trace.
    pub mutations: u64,
    /// Mutations resolved by incremental patching (vs. re-prepare).
    pub patched_plans: u64,
    /// Requests served by the stale plan while its patch was in flight.
    pub stale_served: u64,
    /// Patched plans swapped into the cache.
    pub swaps: u64,
    /// Mean simulated cost per admitted request, churn trace, ms.
    pub amortized_churn_sim_ms: f64,
    /// Mean simulated cost per admitted request, identical trace with the
    /// mutations removed, ms.
    pub amortized_steady_sim_ms: f64,
    /// `amortized_churn_sim_ms / amortized_steady_sim_ms` — how much
    /// churn inflates the serving cost (flat ⇒ close to 1).
    pub churn_overhead_ratio: f64,
}

/// Crash-recovery counters from the `ext_recovery` experiment: a churn
/// serving trace is crashed mid-flight, recovered from (snapshot, WAL)
/// and resumed. Warm recovery rebuilds plans deterministically
/// (`prepare` at a materialized root plus `patch` replay) instead of
/// re-running the completed prefix, so its simulated cost must come in
/// well under the cold-replay cost — gated by
/// `bench_gate --max-recovery-ratio` — and the merged report must be
/// bit-identical to the uncrashed control with zero double-applied
/// deltas. All times are simulated, so every field is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryMetrics {
    /// Crash points the uncrashed schedule exposes (the sweep horizon).
    pub crash_points: u64,
    /// First epoch the resumed run executed (`last marker + 1`).
    pub resume_epoch: u64,
    /// Scheduling epochs in the full trace.
    pub total_epochs: u64,
    /// Durable WAL delta records re-applied at recovery.
    pub replayed_deltas: u64,
    /// Durable records skipped because their post-apply graph was
    /// already materialized (idempotent replay).
    pub skipped_duplicates: u64,
    /// Deltas applied more than once — must be zero, gated.
    pub double_applied: u64,
    /// Intact-but-unmarked records rolled back past the last fsync
    /// marker.
    pub rolled_back_records: u64,
    /// Plans restored into the cache by recovery, total.
    pub restored_plans: u64,
    /// Rebuild steps served by a full `Plan::prepare`.
    pub full_prepares: u64,
    /// Rebuild steps served by `Plan::patch` replay.
    pub patch_replays: u64,
    /// Simulated cost of the warm rebuild (prepares + patch replays).
    pub warm_recovery_sim_ms: f64,
    /// Simulated cost of re-running the completed prefix cold (prepare +
    /// exec + wasted time of every delivered pre-crash request, plus the
    /// pre-crash patch work) — what a restart without durability pays.
    pub cold_replay_sim_ms: f64,
    /// `warm_recovery_sim_ms / cold_replay_sim_ms` — the gated ratio.
    pub recovery_ratio: f64,
    /// Whether the recovered, merged report was bit-identical to the
    /// uncrashed control (responses, counters, mutation outcomes,
    /// latency, tenants, cache statistics) — gated.
    pub equivalent: bool,
}

/// Tile-metadata compression counters from the `ext_tile_compress`
/// experiment: what the occupancy-bitmap + delta-varint window metadata
/// (the condense step's canonical output) and the double-buffered tensor
/// schedule buy on dense-community graphs, against the pre-compression
/// dense form and the synchronous schedule. Bytes are exact and cycles
/// simulated, so every field is deterministic and exactly gateable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileCompressMetrics {
    /// Non-empty row windows across the sweep.
    pub windows: u64,
    /// Total encoded tile-metadata heap bytes (column streams + bitmaps).
    pub meta_bytes_compressed: u64,
    /// The same windows under the legacy dense form: a u32 condensed
    /// index per entry plus a u32 per unique column.
    pub meta_bytes_uncompressed: u64,
    /// `meta_bytes_compressed / meta_bytes_uncompressed`.
    pub bytes_ratio: f64,
    /// `Plan::approx_bytes` of the prepared plans (compressed metadata).
    pub plan_bytes_compressed: u64,
    /// The same plans with every window billed at the legacy dense
    /// metadata size (gated by `bench_gate --max-plan-bytes-ratio`).
    pub plan_bytes_uncompressed: u64,
    /// `plan_bytes_compressed / plan_bytes_uncompressed`.
    pub plan_bytes_ratio: f64,
    /// Simulated preprocessing cost with the compressed write-back, ms.
    pub prepare_sim_ms_compressed: f64,
    /// Simulated preprocessing cost of the pre-compression kernel that
    /// wrote per-entry condensed indices, ms (gated by
    /// `bench_gate --max-prepare-cost-ratio`).
    pub prepare_sim_ms_uncompressed: f64,
    /// `prepare_sim_ms_compressed / prepare_sim_ms_uncompressed`.
    pub prepare_cost_ratio: f64,
    /// Summed per-window cycles of the pipelined + compressed tensor
    /// kernel over the sweep's windows.
    pub tensor_cycles_pipelined: f64,
    /// The same windows under the synchronous uncompressed schedule.
    pub tensor_cycles_unpipelined: f64,
    /// `tensor_cycles_pipelined / tensor_cycles_unpipelined` — must stay
    /// below 1 for the pipelining to be worth shipping.
    pub tensor_cycle_ratio: f64,
}

/// The full machine-readable report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Dataset scale divisor the run used (`HC_SCALE`).
    pub scale: usize,
    /// Worker-thread count the run used.
    pub threads: usize,
    /// Per-experiment wall clocks, in run order.
    pub experiments: Vec<ExperimentTiming>,
    /// Kernel-family speedup measurements.
    pub kernels: Vec<KernelSpeedup>,
    /// Plan-cache amortization counters (absent in pre-serving reports).
    pub plan_cache: Option<PlanCacheMetrics>,
    /// Chaos-serving recovery counters (absent in pre-resilience reports).
    pub fault_recovery: Option<FaultRecoveryMetrics>,
    /// Workspace / adaptive-pool hot-path counters (absent in reports
    /// written before the workspace existed).
    pub hot_path: Option<HotPathMetrics>,
    /// Multi-tenant serving-load counters (absent in reports written
    /// before the front-end existed).
    pub serving_load: Option<ServingLoadMetrics>,
    /// Dynamic-graph churn counters (absent in reports written before
    /// incremental re-planning existed).
    pub dynamic_graphs: Option<DynamicGraphsMetrics>,
    /// Crash-recovery counters (absent in reports written before the
    /// durability layer existed).
    pub recovery: Option<RecoveryMetrics>,
    /// Tile-metadata compression counters (absent in reports written
    /// before the compressed condense form existed).
    pub tile_compress: Option<TileCompressMetrics>,
}

impl BenchReport {
    /// Empty report for a run at the given configuration.
    pub fn new(scale: usize, threads: usize) -> Self {
        BenchReport {
            scale,
            threads,
            experiments: Vec::new(),
            kernels: Vec::new(),
            plan_cache: None,
            fault_recovery: None,
            hot_path: None,
            serving_load: None,
            dynamic_graphs: None,
            recovery: None,
            tile_compress: None,
        }
    }

    /// Record one experiment's timings.
    pub fn push_experiment(&mut self, name: &str, wall_ms: f64, cpu_ms: f64) {
        self.experiments.push(ExperimentTiming {
            name: name.to_string(),
            wall_ms,
            cpu_ms,
        });
    }

    /// Serialize to pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"scale\": {},", self.scale);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "    {{\"name\": {}, \"wall_ms\": {}, \"cpu_ms\": {}}}{comma}",
                esc(&e.name),
                num(e.wall_ms),
                num(e.cpu_ms)
            );
        }
        s.push_str("  ],\n  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let comma = if i + 1 < self.kernels.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"family\": {}, \"dataset\": {}, \"serial_ms\": {}, \
                 \"parallel_ms\": {}, \"speedup\": {}, \"bit_identical\": {}, \
                 \"serial_fallback\": {}}}{comma}",
                esc(&k.family),
                esc(&k.dataset),
                num(k.serial_ms),
                num(k.parallel_ms),
                num(k.speedup),
                k.bit_identical,
                k.serial_fallback
            );
        }
        s.push_str("  ]");
        if let Some(pc) = &self.plan_cache {
            let _ = write!(
                s,
                ",\n  \"plan_cache\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}, \
                 \"evictions\": {}, \"hit_rate\": {}, \"cold_ms\": {}, \"amortized_ms\": {}}}",
                pc.requests,
                pc.hits,
                pc.misses,
                pc.evictions,
                num(pc.hit_rate),
                num(pc.cold_ms),
                num(pc.amortized_ms)
            );
        }
        if let Some(fr) = &self.fault_recovery {
            let _ = write!(
                s,
                ",\n  \"fault_recovery\": {{\"requests\": {}, \"ok\": {}, \"degraded\": {}, \
                 \"failed\": {}, \"retries\": {}, \"fallbacks\": {}, \"quarantined\": {}, \
                 \"degraded_rate\": {}, \"wasted_sim_ms\": {}}}",
                fr.requests,
                fr.ok,
                fr.degraded,
                fr.failed,
                fr.retries,
                fr.fallbacks,
                fr.quarantined,
                num(fr.degraded_rate),
                num(fr.wasted_sim_ms)
            );
        }
        if let Some(hp) = &self.hot_path {
            let _ = write!(
                s,
                ",\n  \"hot_path\": {{\"requests\": {}, \"cost_builds\": {}, \
                 \"cost_reuses\": {}, \"scratch_allocs\": {}, \"scratch_reuses\": {}, \
                 \"allocs_per_request\": {}, \"parallel_regions\": {}, \
                 \"serial_fallbacks\": {}, \"warm_ms\": {}, \"cold_ms\": {}}}",
                hp.requests,
                hp.cost_builds,
                hp.cost_reuses,
                hp.scratch_allocs,
                hp.scratch_reuses,
                num(hp.allocs_per_request),
                hp.parallel_regions,
                hp.serial_fallbacks,
                num(hp.warm_ms),
                num(hp.cold_ms)
            );
        }
        if let Some(sl) = &self.serving_load {
            let _ = write!(
                s,
                ",\n  \"serving_load\": {{\"submitted\": {}, \"admitted\": {}, \
                 \"rejected_queue\": {}, \"rejected_quota\": {}, \"served\": {}, \
                 \"cohorts\": {}, \"cohort_rate\": {}, \"p50_sim_ms\": {}, \
                 \"p99_sim_ms\": {}, \"amortized_sim_ms\": {}, \
                 \"uncohorted_sim_ms\": {}, \"tenants\": [",
                sl.submitted,
                sl.admitted,
                sl.rejected_queue,
                sl.rejected_quota,
                sl.served,
                sl.cohorts,
                num(sl.cohort_rate),
                num(sl.p50_sim_ms),
                num(sl.p99_sim_ms),
                num(sl.amortized_sim_ms),
                num(sl.uncohorted_sim_ms)
            );
            for (i, t) in sl.tenants.iter().enumerate() {
                let comma = if i + 1 < sl.tenants.len() { "," } else { "" };
                let _ = write!(
                    s,
                    "\n    {{\"tenant\": {}, \"submitted\": {}, \"admitted\": {}, \
                     \"rejected\": {}, \"slo_violations\": {}, \"p99_sim_ms\": {}}}{comma}",
                    t.tenant,
                    t.submitted,
                    t.admitted,
                    t.rejected,
                    t.slo_violations,
                    num(t.p99_sim_ms)
                );
            }
            if sl.tenants.is_empty() {
                s.push_str("]}");
            } else {
                s.push_str("\n  ]}");
            }
        }
        if let Some(dg) = &self.dynamic_graphs {
            let _ = write!(
                s,
                ",\n  \"dynamic_graphs\": {{\"max_patch_ratio\": {}, \"sublinear\": {}, \
                 \"mutations\": {}, \"patched_plans\": {}, \"stale_served\": {}, \
                 \"swaps\": {}, \"amortized_churn_sim_ms\": {}, \
                 \"amortized_steady_sim_ms\": {}, \"churn_overhead_ratio\": {}, \
                 \"scale_points\": [",
                num(dg.max_patch_ratio),
                dg.sublinear,
                dg.mutations,
                dg.patched_plans,
                dg.stale_served,
                dg.swaps,
                num(dg.amortized_churn_sim_ms),
                num(dg.amortized_steady_sim_ms),
                num(dg.churn_overhead_ratio)
            );
            for (i, p) in dg.scale_points.iter().enumerate() {
                let comma = if i + 1 < dg.scale_points.len() {
                    ","
                } else {
                    ""
                };
                let _ = write!(
                    s,
                    "\n    {{\"nrows\": {}, \"nnz\": {}, \"windows\": {}, \
                     \"full_prepare_sim_ms\": {}, \"patch_sim_ms\": {}, \
                     \"patch_ratio\": {}}}{comma}",
                    p.nrows,
                    p.nnz,
                    p.windows,
                    num(p.full_prepare_sim_ms),
                    num(p.patch_sim_ms),
                    num(p.patch_ratio)
                );
            }
            if dg.scale_points.is_empty() {
                s.push_str("]}");
            } else {
                s.push_str("\n  ]}");
            }
        }
        if let Some(rc) = &self.recovery {
            let _ = write!(
                s,
                ",\n  \"recovery\": {{\"crash_points\": {}, \"resume_epoch\": {}, \
                 \"total_epochs\": {}, \"replayed_deltas\": {}, \
                 \"skipped_duplicates\": {}, \"double_applied\": {}, \
                 \"rolled_back_records\": {}, \"restored_plans\": {}, \
                 \"full_prepares\": {}, \"patch_replays\": {}, \
                 \"warm_recovery_sim_ms\": {}, \"cold_replay_sim_ms\": {}, \
                 \"recovery_ratio\": {}, \"equivalent\": {}}}",
                rc.crash_points,
                rc.resume_epoch,
                rc.total_epochs,
                rc.replayed_deltas,
                rc.skipped_duplicates,
                rc.double_applied,
                rc.rolled_back_records,
                rc.restored_plans,
                rc.full_prepares,
                rc.patch_replays,
                num(rc.warm_recovery_sim_ms),
                num(rc.cold_replay_sim_ms),
                num(rc.recovery_ratio),
                rc.equivalent
            );
        }
        if let Some(tc) = &self.tile_compress {
            let _ = write!(
                s,
                ",\n  \"tile_compress\": {{\"windows\": {}, \
                 \"meta_bytes_compressed\": {}, \"meta_bytes_uncompressed\": {}, \
                 \"bytes_ratio\": {}, \"plan_bytes_compressed\": {}, \
                 \"plan_bytes_uncompressed\": {}, \"plan_bytes_ratio\": {}, \
                 \"prepare_sim_ms_compressed\": {}, \
                 \"prepare_sim_ms_uncompressed\": {}, \"prepare_cost_ratio\": {}, \
                 \"tensor_cycles_pipelined\": {}, \
                 \"tensor_cycles_unpipelined\": {}, \"tensor_cycle_ratio\": {}}}",
                tc.windows,
                tc.meta_bytes_compressed,
                tc.meta_bytes_uncompressed,
                num(tc.bytes_ratio),
                tc.plan_bytes_compressed,
                tc.plan_bytes_uncompressed,
                num(tc.plan_bytes_ratio),
                num(tc.prepare_sim_ms_compressed),
                num(tc.prepare_sim_ms_uncompressed),
                num(tc.prepare_cost_ratio),
                num(tc.tensor_cycles_pipelined),
                num(tc.tensor_cycles_unpipelined),
                num(tc.tensor_cycle_ratio)
            );
        }
        s.push_str("\n}\n");
        s
    }

    /// Parse a report back from JSON, checking the schema version.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = Json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_f64)
            .ok_or("missing \"schema\"")? as u64;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {schema} (expected {SCHEMA_VERSION})"
            ));
        }
        let field = |key: &str| v.get(key).ok_or(format!("missing {key:?}"));
        let mut report = BenchReport::new(
            field("scale")?.as_f64().ok_or("scale not a number")? as usize,
            field("threads")?.as_f64().ok_or("threads not a number")? as usize,
        );
        for e in field("experiments")?
            .as_arr()
            .ok_or("experiments not an array")?
        {
            report.experiments.push(ExperimentTiming {
                name: e
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("experiment missing name")?
                    .to_string(),
                wall_ms: e
                    .get("wall_ms")
                    .and_then(Json::as_f64)
                    .ok_or("experiment missing wall_ms")?,
                // Absent in reports from platforms without CPU accounting.
                cpu_ms: e.get("cpu_ms").and_then(Json::as_f64).unwrap_or(0.0),
            });
        }
        for k in field("kernels")?.as_arr().ok_or("kernels not an array")? {
            let f = |key: &str| k.get(key).and_then(Json::as_f64);
            report.kernels.push(KernelSpeedup {
                family: k
                    .get("family")
                    .and_then(Json::as_str)
                    .ok_or("kernel missing family")?
                    .to_string(),
                dataset: k
                    .get("dataset")
                    .and_then(Json::as_str)
                    .ok_or("kernel missing dataset")?
                    .to_string(),
                serial_ms: f("serial_ms").ok_or("kernel missing serial_ms")?,
                parallel_ms: f("parallel_ms").ok_or("kernel missing parallel_ms")?,
                speedup: f("speedup").ok_or("kernel missing speedup")?,
                bit_identical: k
                    .get("bit_identical")
                    .and_then(Json::as_bool)
                    .ok_or("kernel missing bit_identical")?,
                // Absent in reports written before the serial fast path.
                serial_fallback: k
                    .get("serial_fallback")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            });
        }
        if let Some(pc) = v.get("plan_cache") {
            let f = |key: &str| {
                pc.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("plan_cache missing {key}"))
            };
            report.plan_cache = Some(PlanCacheMetrics {
                requests: f("requests")? as u64,
                hits: f("hits")? as u64,
                misses: f("misses")? as u64,
                evictions: f("evictions")? as u64,
                hit_rate: f("hit_rate")?,
                cold_ms: f("cold_ms")?,
                amortized_ms: f("amortized_ms")?,
            });
        }
        if let Some(fr) = v.get("fault_recovery") {
            let f = |key: &str| {
                fr.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("fault_recovery missing {key}"))
            };
            report.fault_recovery = Some(FaultRecoveryMetrics {
                requests: f("requests")? as u64,
                ok: f("ok")? as u64,
                degraded: f("degraded")? as u64,
                failed: f("failed")? as u64,
                retries: f("retries")? as u64,
                fallbacks: f("fallbacks")? as u64,
                quarantined: f("quarantined")? as u64,
                degraded_rate: f("degraded_rate")?,
                wasted_sim_ms: f("wasted_sim_ms")?,
            });
        }
        if let Some(hp) = v.get("hot_path") {
            let f = |key: &str| {
                hp.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("hot_path missing {key}"))
            };
            report.hot_path = Some(HotPathMetrics {
                requests: f("requests")? as u64,
                cost_builds: f("cost_builds")? as u64,
                cost_reuses: f("cost_reuses")? as u64,
                scratch_allocs: f("scratch_allocs")? as u64,
                scratch_reuses: f("scratch_reuses")? as u64,
                allocs_per_request: f("allocs_per_request")?,
                parallel_regions: f("parallel_regions")? as u64,
                serial_fallbacks: f("serial_fallbacks")? as u64,
                warm_ms: f("warm_ms")?,
                cold_ms: f("cold_ms")?,
            });
        }
        if let Some(sl) = v.get("serving_load") {
            let f = |key: &str| {
                sl.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("serving_load missing {key}"))
            };
            let mut tenants = Vec::new();
            for t in sl
                .get("tenants")
                .and_then(Json::as_arr)
                .ok_or("serving_load missing tenants array")?
            {
                let tf = |key: &str| {
                    t.get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("serving_load tenant missing {key}"))
                };
                tenants.push(TenantSlo {
                    tenant: tf("tenant")? as u64,
                    submitted: tf("submitted")? as u64,
                    admitted: tf("admitted")? as u64,
                    rejected: tf("rejected")? as u64,
                    slo_violations: tf("slo_violations")? as u64,
                    p99_sim_ms: tf("p99_sim_ms")?,
                });
            }
            report.serving_load = Some(ServingLoadMetrics {
                submitted: f("submitted")? as u64,
                admitted: f("admitted")? as u64,
                rejected_queue: f("rejected_queue")? as u64,
                rejected_quota: f("rejected_quota")? as u64,
                served: f("served")? as u64,
                cohorts: f("cohorts")? as u64,
                cohort_rate: f("cohort_rate")?,
                p50_sim_ms: f("p50_sim_ms")?,
                p99_sim_ms: f("p99_sim_ms")?,
                amortized_sim_ms: f("amortized_sim_ms")?,
                uncohorted_sim_ms: f("uncohorted_sim_ms")?,
                tenants,
            });
        }
        if let Some(dg) = v.get("dynamic_graphs") {
            let f = |key: &str| {
                dg.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("dynamic_graphs missing {key}"))
            };
            let mut scale_points = Vec::new();
            for p in dg
                .get("scale_points")
                .and_then(Json::as_arr)
                .ok_or("dynamic_graphs missing scale_points array")?
            {
                let pf = |key: &str| {
                    p.get(key)
                        .and_then(Json::as_f64)
                        .ok_or(format!("dynamic_graphs scale point missing {key}"))
                };
                scale_points.push(ChurnScalePoint {
                    nrows: pf("nrows")? as u64,
                    nnz: pf("nnz")? as u64,
                    windows: pf("windows")? as u64,
                    full_prepare_sim_ms: pf("full_prepare_sim_ms")?,
                    patch_sim_ms: pf("patch_sim_ms")?,
                    patch_ratio: pf("patch_ratio")?,
                });
            }
            report.dynamic_graphs = Some(DynamicGraphsMetrics {
                scale_points,
                max_patch_ratio: f("max_patch_ratio")?,
                sublinear: dg
                    .get("sublinear")
                    .and_then(Json::as_bool)
                    .ok_or("dynamic_graphs missing sublinear")?,
                mutations: f("mutations")? as u64,
                patched_plans: f("patched_plans")? as u64,
                stale_served: f("stale_served")? as u64,
                swaps: f("swaps")? as u64,
                amortized_churn_sim_ms: f("amortized_churn_sim_ms")?,
                amortized_steady_sim_ms: f("amortized_steady_sim_ms")?,
                churn_overhead_ratio: f("churn_overhead_ratio")?,
            });
        }
        if let Some(rc) = v.get("recovery") {
            let f = |key: &str| {
                rc.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("recovery missing {key}"))
            };
            report.recovery = Some(RecoveryMetrics {
                crash_points: f("crash_points")? as u64,
                resume_epoch: f("resume_epoch")? as u64,
                total_epochs: f("total_epochs")? as u64,
                replayed_deltas: f("replayed_deltas")? as u64,
                skipped_duplicates: f("skipped_duplicates")? as u64,
                double_applied: f("double_applied")? as u64,
                rolled_back_records: f("rolled_back_records")? as u64,
                restored_plans: f("restored_plans")? as u64,
                full_prepares: f("full_prepares")? as u64,
                patch_replays: f("patch_replays")? as u64,
                warm_recovery_sim_ms: f("warm_recovery_sim_ms")?,
                cold_replay_sim_ms: f("cold_replay_sim_ms")?,
                recovery_ratio: f("recovery_ratio")?,
                equivalent: rc
                    .get("equivalent")
                    .and_then(Json::as_bool)
                    .ok_or("recovery missing equivalent")?,
            });
        }
        if let Some(tc) = v.get("tile_compress") {
            let f = |key: &str| {
                tc.get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("tile_compress missing {key}"))
            };
            report.tile_compress = Some(TileCompressMetrics {
                windows: f("windows")? as u64,
                meta_bytes_compressed: f("meta_bytes_compressed")? as u64,
                meta_bytes_uncompressed: f("meta_bytes_uncompressed")? as u64,
                bytes_ratio: f("bytes_ratio")?,
                plan_bytes_compressed: f("plan_bytes_compressed")? as u64,
                plan_bytes_uncompressed: f("plan_bytes_uncompressed")? as u64,
                plan_bytes_ratio: f("plan_bytes_ratio")?,
                prepare_sim_ms_compressed: f("prepare_sim_ms_compressed")?,
                prepare_sim_ms_uncompressed: f("prepare_sim_ms_uncompressed")?,
                prepare_cost_ratio: f("prepare_cost_ratio")?,
                tensor_cycles_pipelined: f("tensor_cycles_pipelined")?,
                tensor_cycles_unpipelined: f("tensor_cycles_unpipelined")?,
                tensor_cycle_ratio: f("tensor_cycle_ratio")?,
            });
        }
        Ok(report)
    }
}

/// Cumulative process CPU time in milliseconds (user + system, across all
/// threads, including exited-and-joined workers), or `None` when the
/// platform cannot measure it. CPU time is the gate's preferred metric: it
/// does not advance while the process is preempted or the VM is stolen
/// from, so it stays stable on oversubscribed CI runners where wall clock
/// swings by 2x between identical runs.
///
/// Measured with `clock_gettime(CLOCK_PROCESS_CPUTIME_ID)` — nanosecond
/// resolution, so sub-10 ms experiments report real CPU time instead of
/// the zeros the old `/proc/self/stat` USER_HZ tick produced (which made
/// the gate silently skip them). Falls back to `/proc` parsing if the
/// syscall is unavailable.
pub fn cpu_time_ms() -> Option<f64> {
    #[cfg(unix)]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
        }
        // POSIX: the CPU-time clock of the calling process.
        const CLOCK_PROCESS_CPUTIME_ID: i32 = 2;
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid writable timespec and the clock id is a
        // POSIX constant; the call writes `ts` and returns a status.
        if unsafe { clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut ts) } == 0 {
            return Some(ts.tv_sec as f64 * 1e3 + ts.tv_nsec as f64 * 1e-6);
        }
    }
    cpu_time_ms_proc()
}

/// USER_HZ-resolution fallback: utime+stime from `/proc/self/stat`
/// (10 ms ticks).
fn cpu_time_ms_proc() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // comm (field 2) may contain spaces or parens; real fields resume
    // after the last ')'. utime/stime are fields 14/15 of the line, i.e.
    // the 12th/13th after comm.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    // /proc clock ticks are USER_HZ, fixed at 100 on Linux: 10 ms each.
    Some((utime + stime) * 10.0)
}

/// Output path for the report: `HC_BENCH_JSON` or `BENCH.json`.
pub fn default_path() -> PathBuf {
    std::env::var_os("HC_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH.json"))
}

/// Time the four kernel families at the configured thread count and at a
/// forced single thread, on two structurally different datasets. The
/// single-thread rerun also serves as the determinism check: both outputs
/// must be bit-identical.
///
/// Each side is best-of-3 — the minimum is the least-preempted run, which
/// is what a speedup ratio should compare. When the calibrated serial
/// fast path handled every region of the "parallel" run (sub-threshold
/// work, or a single-core host), both sides executed identical code; the
/// measurement is flagged `serial_fallback` and the speedup pinned to 1.0
/// instead of reporting scheduler noise as a parallel regression.
pub fn measure_kernel_speedups(cache: &mut DatasetCache, dev: &DeviceSpec) -> Vec<KernelSpeedup> {
    let kernels: Vec<(&str, Box<dyn SpmmKernel>)> = vec![
        (
            "straightforward",
            Box::new(StraightforwardHybrid::default()),
        ),
        ("cuda", Box::new(CudaSpmm::optimized())),
        ("tensor", Box::new(TensorSpmm::optimized())),
        ("hybrid", Box::new(HcSpmm::default())),
    ];
    const REPEAT: usize = 3;
    let saved = hc_parallel::thread_override();
    let mut out = Vec::new();
    for id in [DatasetId::CR, DatasetId::PM] {
        let a = cache.get(id).adj.clone();
        let dim = cache.get(id).spec.dim.min(512);
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        for (family, kern) in &kernels {
            hc_parallel::reset_pool_stats();
            let mut parallel_ms = f64::INFINITY;
            let mut z_par = DenseMatrix::zeros(0, 0);
            for _ in 0..REPEAT {
                let t0 = Instant::now();
                z_par = kern.spmm(&a, &x, dev).z;
                parallel_ms = parallel_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            let engaged = hc_parallel::pool_stats().parallel_regions > 0;

            hc_parallel::set_threads(1);
            let mut serial_ms = f64::INFINITY;
            let mut z_ser = DenseMatrix::zeros(0, 0);
            for _ in 0..REPEAT {
                let t0 = Instant::now();
                z_ser = kern.spmm(&a, &x, dev).z;
                serial_ms = serial_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            hc_parallel::set_threads(saved);

            out.push(KernelSpeedup {
                family: family.to_string(),
                dataset: id.code().to_string(),
                serial_ms,
                parallel_ms,
                speedup: if engaged {
                    serial_ms / parallel_ms.max(1e-9)
                } else {
                    1.0
                },
                bit_identical: z_par == z_ser,
                serial_fallback: !engaged,
            });
        }
    }
    out
}

/// One experiment the gate flags as regressed.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment name.
    pub name: String,
    /// Baseline time, ms (in the compared metric).
    pub base_ms: f64,
    /// Current time, ms (in the compared metric).
    pub cur_ms: f64,
    /// `cur_ms / base_ms`.
    pub ratio: f64,
    /// Which metric was compared: `"cpu"` or `"wall"`.
    pub metric: &'static str,
}

/// Result of gating a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Experiments present in both reports and above the noise floor.
    pub compared: usize,
    /// Experiments slower than `baseline · (1 + threshold)`.
    pub regressions: Vec<Regression>,
    /// Baseline experiments absent from the current report.
    pub missing: Vec<String>,
}

impl GateOutcome {
    /// True when the gate should fail the build.
    pub fn failed(&self) -> bool {
        !self.regressions.is_empty() || !self.missing.is_empty()
    }
}

/// Compare per-experiment timings. For each experiment the gate uses CPU
/// time when both reports measured it (scheduler- and steal-immune) and
/// wall clock otherwise. An experiment regresses when its current time
/// exceeds the baseline by more than `threshold` (0.25 = +25 %) AND by
/// more than `min_ms` absolute — the relative test catches slowdowns, the
/// absolute test absorbs the 10 ms CPU-tick quantization on small
/// experiments. Experiments where both sides sit under `min_ms` are
/// skipped entirely: sub-floor timings measure the scheduler, not the
/// code.
pub fn gate(base: &BenchReport, cur: &BenchReport, threshold: f64, min_ms: f64) -> GateOutcome {
    let mut outcome = GateOutcome {
        compared: 0,
        regressions: Vec::new(),
        missing: Vec::new(),
    };
    for b in &base.experiments {
        let Some(c) = cur.experiments.iter().find(|c| c.name == b.name) else {
            outcome.missing.push(b.name.clone());
            continue;
        };
        let (base_ms, cur_ms, metric) = if b.cpu_ms > 0.0 && c.cpu_ms > 0.0 {
            (b.cpu_ms, c.cpu_ms, "cpu")
        } else {
            (b.wall_ms, c.wall_ms, "wall")
        };
        if base_ms.max(cur_ms) < min_ms {
            continue;
        }
        outcome.compared += 1;
        if cur_ms > base_ms * (1.0 + threshold) && cur_ms - base_ms > min_ms {
            outcome.regressions.push(Regression {
                name: b.name.clone(),
                base_ms,
                cur_ms,
                ratio: cur_ms / base_ms.max(1e-9),
                metric,
            });
        }
    }
    outcome
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float so it round-trips as JSON (always with a decimal point
/// or exponent so the reader can tell it is a number).
fn num(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; clamp to a sentinel the gate treats as
        // "huge" rather than producing an unparseable document.
        return "1e308".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Minimal JSON value for the report parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String (escape sequences decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace only).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.b[self.i..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|e| e.to_string())?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    out.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.i += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new(1024, 8);
        r.push_experiment("fig10_spmm", 123.456, 120.0);
        r.push_experiment("table01", 4.2, 4.0);
        r.kernels.push(KernelSpeedup {
            family: "hybrid".into(),
            dataset: "CR".into(),
            serial_ms: 80.0,
            parallel_ms: 10.0,
            speedup: 8.0,
            bit_identical: true,
            serial_fallback: false,
        });
        r
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = sample();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn plan_cache_block_roundtrips_and_stays_optional() {
        // Without the block: absent from the JSON, parses back as None —
        // pre-serving reports (the committed baseline) stay readable.
        let bare = sample();
        assert!(!bare.to_json().contains("plan_cache"));
        assert_eq!(BenchReport::from_json(&bare.to_json()).unwrap(), bare);

        let mut r = sample();
        r.plan_cache = Some(PlanCacheMetrics {
            requests: 48,
            hits: 44,
            misses: 4,
            evictions: 0,
            hit_rate: 44.0 / 48.0,
            cold_ms: 1.92,
            amortized_ms: 0.31,
        });
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn fault_recovery_block_roundtrips_and_stays_optional() {
        let bare = sample();
        assert!(!bare.to_json().contains("fault_recovery"));
        assert_eq!(BenchReport::from_json(&bare.to_json()).unwrap(), bare);

        let mut r = sample();
        r.fault_recovery = Some(FaultRecoveryMetrics {
            requests: 32,
            ok: 24,
            degraded: 8,
            failed: 0,
            retries: 5,
            fallbacks: 3,
            quarantined: 1,
            degraded_rate: 0.25,
            wasted_sim_ms: 0.42,
        });
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn hot_path_block_roundtrips_and_stays_optional() {
        let bare = sample();
        assert!(!bare.to_json().contains("hot_path"));
        assert_eq!(BenchReport::from_json(&bare.to_json()).unwrap(), bare);

        let mut r = sample();
        r.hot_path = Some(HotPathMetrics {
            requests: 64,
            cost_builds: 1,
            cost_reuses: 63,
            scratch_allocs: 1,
            scratch_reuses: 63,
            allocs_per_request: 2.0 / 64.0,
            parallel_regions: 0,
            serial_fallbacks: 128,
            warm_ms: 0.4,
            cold_ms: 2.1,
        });
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn serving_load_block_roundtrips_and_stays_optional() {
        let bare = sample();
        assert!(!bare.to_json().contains("serving_load"));
        assert_eq!(BenchReport::from_json(&bare.to_json()).unwrap(), bare);

        let mut r = sample();
        r.serving_load = Some(ServingLoadMetrics {
            submitted: 96,
            admitted: 84,
            rejected_queue: 8,
            rejected_quota: 4,
            served: 84,
            cohorts: 24,
            cohort_rate: 0.86,
            p50_sim_ms: 1.2,
            p99_sim_ms: 4.7,
            amortized_sim_ms: 0.9,
            uncohorted_sim_ms: 2.8,
            tenants: vec![
                TenantSlo {
                    tenant: 0,
                    submitted: 24,
                    admitted: 20,
                    rejected: 4,
                    slo_violations: 1,
                    p99_sim_ms: 4.7,
                },
                TenantSlo {
                    tenant: 3,
                    submitted: 12,
                    admitted: 12,
                    rejected: 0,
                    slo_violations: 0,
                    p99_sim_ms: 2.2,
                },
            ],
        });
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);

        // An empty tenant list still roundtrips.
        let mut r = sample();
        r.serving_load = Some(ServingLoadMetrics {
            submitted: 0,
            admitted: 0,
            rejected_queue: 0,
            rejected_quota: 0,
            served: 0,
            cohorts: 0,
            cohort_rate: 0.0,
            p50_sim_ms: 0.0,
            p99_sim_ms: 0.0,
            amortized_sim_ms: 0.0,
            uncohorted_sim_ms: 0.0,
            tenants: Vec::new(),
        });
        assert_eq!(BenchReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn dynamic_graphs_block_roundtrips_and_stays_optional() {
        let bare = sample();
        assert!(!bare.to_json().contains("dynamic_graphs"));
        assert_eq!(BenchReport::from_json(&bare.to_json()).unwrap(), bare);

        let mut r = sample();
        r.dynamic_graphs = Some(DynamicGraphsMetrics {
            scale_points: vec![
                ChurnScalePoint {
                    nrows: 4096,
                    nnz: 32768,
                    windows: 256,
                    full_prepare_sim_ms: 0.8,
                    patch_sim_ms: 0.09,
                    patch_ratio: 0.1125,
                },
                ChurnScalePoint {
                    nrows: 16384,
                    nnz: 131072,
                    windows: 1024,
                    full_prepare_sim_ms: 3.1,
                    patch_sim_ms: 0.1,
                    patch_ratio: 0.0323,
                },
            ],
            max_patch_ratio: 0.1125,
            sublinear: true,
            mutations: 4,
            patched_plans: 4,
            stale_served: 6,
            swaps: 4,
            amortized_churn_sim_ms: 0.52,
            amortized_steady_sim_ms: 0.49,
            churn_overhead_ratio: 1.0612,
        });
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);

        // An empty sweep still roundtrips.
        let mut r = sample();
        r.dynamic_graphs = Some(DynamicGraphsMetrics {
            scale_points: Vec::new(),
            max_patch_ratio: 0.0,
            sublinear: false,
            mutations: 0,
            patched_plans: 0,
            stale_served: 0,
            swaps: 0,
            amortized_churn_sim_ms: 0.0,
            amortized_steady_sim_ms: 0.0,
            churn_overhead_ratio: 0.0,
        });
        assert_eq!(BenchReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn recovery_block_roundtrips_and_stays_optional() {
        let bare = sample();
        assert!(!bare.to_json().contains("\"recovery\""));
        assert_eq!(BenchReport::from_json(&bare.to_json()).unwrap(), bare);

        let mut r = sample();
        r.recovery = Some(RecoveryMetrics {
            crash_points: 14,
            resume_epoch: 3,
            total_epochs: 8,
            replayed_deltas: 2,
            skipped_duplicates: 1,
            double_applied: 0,
            rolled_back_records: 1,
            restored_plans: 2,
            full_prepares: 1,
            patch_replays: 1,
            warm_recovery_sim_ms: 0.9,
            cold_replay_sim_ms: 4.1,
            recovery_ratio: 0.2195,
            equivalent: true,
        });
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);

        // `equivalent: false` survives the trip too (the gate must see it).
        let mut r = sample();
        r.recovery = Some(RecoveryMetrics {
            crash_points: 0,
            resume_epoch: 0,
            total_epochs: 0,
            replayed_deltas: 0,
            skipped_duplicates: 0,
            double_applied: 2,
            rolled_back_records: 0,
            restored_plans: 0,
            full_prepares: 0,
            patch_replays: 0,
            warm_recovery_sim_ms: 0.0,
            cold_replay_sim_ms: 0.0,
            recovery_ratio: 0.0,
            equivalent: false,
        });
        assert_eq!(BenchReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn tile_compress_block_roundtrips_and_stays_optional() {
        let bare = sample();
        assert!(!bare.to_json().contains("tile_compress"));
        assert_eq!(BenchReport::from_json(&bare.to_json()).unwrap(), bare);

        let mut r = sample();
        r.tile_compress = Some(TileCompressMetrics {
            windows: 1792,
            meta_bytes_compressed: 180_000,
            meta_bytes_uncompressed: 1_400_000,
            bytes_ratio: 180.0 / 1400.0,
            plan_bytes_compressed: 310_000,
            plan_bytes_uncompressed: 1_500_000,
            plan_bytes_ratio: 31.0 / 150.0,
            prepare_sim_ms_compressed: 0.8,
            prepare_sim_ms_uncompressed: 1.1,
            prepare_cost_ratio: 0.8 / 1.1,
            tensor_cycles_pipelined: 1.1e6,
            tensor_cycles_unpipelined: 1.5e6,
            tensor_cycle_ratio: 1.1 / 1.5,
        });
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn kernel_serial_fallback_flag_defaults_to_false_in_old_reports() {
        // A baseline written before the flag existed must parse with the
        // flag off rather than erroring.
        let old = "{\"schema\": 1, \"scale\": 1, \"threads\": 1, \
                    \"experiments\": [], \"kernels\": [\
                    {\"family\": \"cuda\", \"dataset\": \"CR\", \
                     \"serial_ms\": 2.0, \"parallel_ms\": 1.0, \
                     \"speedup\": 2.0, \"bit_identical\": true}]}";
        let r = BenchReport::from_json(old).unwrap();
        assert!(!r.kernels[0].serial_fallback);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2",
            "{\"a\": 1} trailing",
            "{\"schema\": 99}",
        ] {
            assert!(BenchReport::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut r = BenchReport::new(1, 1);
        r.push_experiment("weird \"name\"\\with\nescapes\tand unicode µ", 50.0, 50.0);
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.experiments[0].name, r.experiments[0].name);
    }

    #[test]
    fn gate_flags_slowdowns_over_threshold() {
        let base = sample();
        let mut cur = sample();
        cur.experiments[0].wall_ms = 123.456 * 1.5; // +50 %
        cur.experiments[0].cpu_ms = 120.0 * 1.5;
        let out = gate(&base, &cur, 0.25, 1.0);
        assert!(out.failed());
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].name, "fig10_spmm");
        assert_eq!(out.regressions[0].metric, "cpu");
        assert!((out.regressions[0].ratio - 1.5).abs() < 1e-9);
    }

    #[test]
    fn gate_passes_within_threshold_and_under_noise_floor() {
        let base = sample();
        let mut cur = sample();
        cur.experiments[0].wall_ms *= 1.2; // +20 % < 25 %
        cur.experiments[0].cpu_ms *= 1.2;
        cur.experiments[1].wall_ms *= 10.0; // huge ratio but under the floor
        cur.experiments[1].cpu_ms *= 10.0;
        let out = gate(&base, &cur, 0.25, 100.0);
        assert!(!out.failed(), "{:?}", out.regressions);
        assert_eq!(out.compared, 1); // table01 skipped by the floor
    }

    #[test]
    fn gate_prefers_cpu_time_over_noisy_wall_clock() {
        // Wall clock doubled (preempted run) but CPU time is unchanged:
        // the code did the same work, so the gate must pass.
        let base = sample();
        let mut cur = sample();
        cur.experiments[0].wall_ms *= 2.0;
        let out = gate(&base, &cur, 0.25, 1.0);
        assert!(!out.failed(), "{:?}", out.regressions);
    }

    #[test]
    fn gate_falls_back_to_wall_when_cpu_unmeasured() {
        let mut base = sample();
        let mut cur = sample();
        base.experiments[0].cpu_ms = 0.0;
        cur.experiments[0].cpu_ms = 0.0;
        cur.experiments[0].wall_ms *= 2.0;
        let out = gate(&base, &cur, 0.25, 1.0);
        assert!(out.failed());
        assert_eq!(out.regressions[0].metric, "wall");
    }

    #[test]
    fn gate_requires_absolute_delta_past_min_ms() {
        // One CPU tick of quantization (10 -> 20 ms) is a 2x ratio but
        // only a 10 ms delta; with min_ms = 10 it must not flag.
        let mut base = sample();
        let mut cur = sample();
        base.experiments[0].cpu_ms = 10.0;
        cur.experiments[0].cpu_ms = 20.0;
        let out = gate(&base, &cur, 0.25, 10.0);
        assert!(!out.failed(), "{:?}", out.regressions);
    }

    #[test]
    fn gate_flags_missing_experiments() {
        let base = sample();
        let mut cur = sample();
        cur.experiments.remove(1);
        let out = gate(&base, &cur, 0.25, 1.0);
        assert!(out.failed());
        assert_eq!(out.missing, vec!["table01".to_string()]);
    }
}
