//! Regenerates Table III: generalization ablation.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::ablations::table03(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
