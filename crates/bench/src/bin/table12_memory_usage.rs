//! Regenerates Table XII: memory usage (Appendix G).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!("{}", bench::experiments::training::table12(&mut c));
}
