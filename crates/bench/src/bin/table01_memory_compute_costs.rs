//! Regenerates Table I: memory vs compute cost per core type.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::characterization::table01(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
