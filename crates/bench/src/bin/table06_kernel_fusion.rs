//! Regenerates Table VI: kernel-fusion ablation.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::training::table06(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
