//! Extension: crash recovery — warm restart from (snapshot, WAL) vs
//! replaying the completed prefix cold.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    let (text, _) =
        bench::experiments::extensions::recovery(&mut c, &gpu_sim::DeviceSpec::rtx3090());
    println!("{text}");
}
