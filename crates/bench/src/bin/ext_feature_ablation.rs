//! Extension: selector feature-subset ablation (§IV-B / footnote 7).
fn main() {
    println!(
        "{}",
        bench::experiments::extensions::feature_ablation(&gpu_sim::DeviceSpec::rtx3090())
    );
}
