//! Regenerates Figs. 11/12 + Table VIII: GCN training comparison.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::training::fig11_12_gcn(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
