//! Regenerates Fig. 8: row-window feature scatter + LR boundary.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::characterization::fig08(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
