//! Regenerates Tables XIII–XV: utilization & throughput (Appendix H).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    let dev = gpu_sim::DeviceSpec::rtx3090();
    println!("{}", bench::experiments::utilization::table13(&mut c, &dev));
    println!("{}", bench::experiments::utilization::table14(&mut c, &dev));
    println!("{}", bench::experiments::utilization::table15(&mut c, &dev));
}
