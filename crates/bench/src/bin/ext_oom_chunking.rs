//! Extension: memory-budgeted chunked SpMM (the DP OOM scenario).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::extensions::oom_chunking(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
