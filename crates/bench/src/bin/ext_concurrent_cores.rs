//! Extension: concurrent CUDA+Tensor streams (Appendix H future work).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::extensions::concurrent_cores(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
