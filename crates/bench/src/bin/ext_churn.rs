//! Extension: dynamic-graph churn — incremental re-plan scaling and
//! serving under mutation vs a churn-free control.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    let (text, _) = bench::experiments::extensions::churn(&mut c, &gpu_sim::DeviceSpec::rtx3090());
    println!("{text}");
}
