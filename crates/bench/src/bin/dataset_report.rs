//! Structural report of the 14 dataset analogues: verifies each carries the
//! properties its real counterpart is credited with (degree skew,
//! clustering, locality) — the evidence behind DESIGN.md's substitution
//! table.

use bench::harness::{f3, DatasetCache, Table};
use graph_sparse::{metrics, DatasetId};

fn main() {
    let mut cache = DatasetCache::new();
    let mut t = Table::new(&[
        "code",
        "V",
        "nnz",
        "deg",
        "skew",
        "clustering",
        "locality",
        "far-gather",
        "win sparsity",
        "win cols",
        "intensity",
    ]);
    for id in DatasetId::ALL {
        let ds = cache.get(id);
        let a = &ds.adj;
        let d = metrics::degree_stats(a);
        let w = metrics::window_stats(a);
        t.row(vec![
            id.code().into(),
            a.nrows.to_string(),
            a.nnz().to_string(),
            f3(d.mean),
            f3(d.skew),
            f3(metrics::clustering_coefficient(a)),
            f3(metrics::locality_spread(a)),
            f3(metrics::far_gather_fraction(a, 64)),
            f3(w.mean_sparsity),
            f3(w.mean_nnz_cols),
            f3(w.mean_intensity),
        ]);
    }
    println!("Dataset analogue structure (1/{} scale)", cache.scale());
    t.print();
}
