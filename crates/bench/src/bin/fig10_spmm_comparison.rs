//! Regenerates Fig. 10: overall SpMM kernel comparison.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::spmm::fig10(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
