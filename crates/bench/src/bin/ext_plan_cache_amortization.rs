//! Extension: plan-cache amortization over a repeated-graph request mix.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    let (text, _) = bench::experiments::extensions::plan_cache_amortization(
        &mut c,
        &gpu_sim::DeviceSpec::rtx3090(),
    );
    println!("{text}");
}
