//! Extension: compressed tile metadata + pipelined tensor path — footprint,
//! preprocessing cost and tensor cycles vs the pre-compression forms.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    let (text, _) =
        bench::experiments::extensions::tile_compress(&mut c, &gpu_sim::DeviceSpec::rtx3090());
    println!("{text}");
}
