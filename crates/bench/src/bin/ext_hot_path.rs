//! Extension: hot-path workspace reuse — warm vs cold serving cost.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    let (text, _) =
        bench::experiments::extensions::hot_path(&mut c, &gpu_sim::DeviceSpec::rtx3090());
    println!("{text}");
}
