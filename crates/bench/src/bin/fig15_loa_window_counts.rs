//! Regenerates Fig. 15: windows per core type before/after LOA.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::loa_exp::fig15(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
