//! Extension: chaos serving — retry/fallback overhead and degraded-request
//! rate under a deterministic injected-fault schedule.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    let (text, _) =
        bench::experiments::extensions::fault_recovery(&mut c, &gpu_sim::DeviceSpec::rtx3090());
    println!("{text}");
}
