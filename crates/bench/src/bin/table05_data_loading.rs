//! Regenerates Table V: Tensor data-loading ablation.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::ablations::table05(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
