//! Regenerates Fig. 1: CUDA vs Tensor core time by sparsity / nnz columns.
fn main() {
    println!(
        "{}",
        bench::experiments::characterization::fig01(&gpu_sim::DeviceSpec::rtx3090())
    );
}
