//! Extension: multi-tenant serving load — cohorted front vs uncohorted driver.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    let (text, _) =
        bench::experiments::extensions::serving_load(&mut c, &gpu_sim::DeviceSpec::rtx3090());
    println!("{text}");
}
