//! Regenerates Fig. 13 + Table IX: GIN training comparison.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::training::fig13_gin(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
