//! Regenerates Table VII: FP-type comparison (Appendix B).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::spmm::table07(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
