//! Regenerates Table X: synthetic sparsity sweep (Appendix D).
fn main() {
    println!(
        "{}",
        bench::experiments::spmm::table10(&gpu_sim::DeviceSpec::rtx3090())
    );
}
