//! Regenerates the §IV-A combination-strategy comparison (footnote 4).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::combination::run(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
