//! Extension: LR selector vs per-window cost oracle.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::extensions::selector_vs_oracle(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
