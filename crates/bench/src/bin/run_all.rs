//! Regenerates every table and figure in one run (the EXPERIMENTS.md input),
//! timing each experiment and writing the machine-readable report to
//! `BENCH.json` (path overridable via `HC_BENCH_JSON`).
//!
//! `--threads N` forces the worker count for every parallel region (same
//! effect as `HC_THREADS=N`; the flag wins). Output matrices are
//! bit-identical at any thread count — the report's `bit_identical` flags
//! double-check that on every run.
//!
//! `--repeat N` runs each experiment N times and records the *minimum*
//! wall clock (best-of-N is the standard way to damp scheduler noise on
//! shared runners; repeats also exclude first-touch dataset generation).
//! Tables are printed once, from the first iteration.

use bench::harness::{f3, Table};
use bench::metrics::{self, BenchReport};

fn usage() -> ! {
    eprintln!("usage: run_all [--threads N] [--repeat N]");
    std::process::exit(2);
}

fn main() {
    let mut repeat = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut positive = |flag: &str| match args.next().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} requires a positive integer");
                usage();
            }
        };
        match arg.as_str() {
            "--threads" => {
                let n = positive("--threads");
                hc_parallel::set_threads(n);
            }
            "--repeat" => repeat = positive("--repeat"),
            _ => usage(),
        }
    }

    use bench::experiments as e;
    let dev = gpu_sim::DeviceSpec::rtx3090();
    let mut c = bench::harness::DatasetCache::new();
    let scale = c.scale();
    let threads = hc_parallel::threads();
    let mut report = BenchReport::new(scale, threads);
    println!(
        "== HC-SpMM reproduction: all experiments \
         (datasets at 1/{scale} scale, {threads} threads) ==\n"
    );

    // Runs one experiment `repeat` times, prints its table once, records
    // the best wall clock and best CPU time (independently — each is a
    // lower envelope over the repeats).
    macro_rules! exp {
        ($name:literal, $body:expr) => {{
            let mut best = f64::INFINITY;
            let mut best_cpu = f64::INFINITY;
            for iter in 0..repeat {
                let cpu0 = metrics::cpu_time_ms();
                let t0 = std::time::Instant::now();
                let out = $body;
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                if let (Some(c0), Some(c1)) = (cpu0, metrics::cpu_time_ms()) {
                    best_cpu = best_cpu.min(c1 - c0);
                }
                if iter == 0 {
                    println!("{}", out);
                }
            }
            let cpu = if best_cpu.is_finite() { best_cpu } else { 0.0 };
            report.push_experiment($name, best, cpu);
        }};
    }

    exp!("fig01_characterization", e::characterization::fig01(&dev));
    exp!("table01_costs", e::characterization::table01(&mut c, &dev));
    exp!(
        "fig08_window_scatter",
        e::characterization::fig08(&mut c, &dev)
    );
    exp!("selector_training", e::selector_exp::run());
    exp!("fig10_spmm", e::spmm::fig10(&mut c, &dev));
    exp!(
        "table03_generalization",
        e::ablations::table03(&mut c, &dev)
    );
    exp!("table04_shared_memory", e::ablations::table04(&mut c, &dev));
    exp!("table05_data_loading", e::ablations::table05(&mut c, &dev));
    exp!("combination_strategies", e::combination::run(&mut c, &dev));
    exp!(
        "fig11_12_gcn_training",
        e::training::fig11_12_gcn(&mut c, &dev)
    );
    exp!("fig13_gin_training", e::training::fig13_gin(&mut c, &dev));
    exp!("table06_kernel_fusion", e::training::table06(&mut c, &dev));
    exp!("fig14_loa_improvement", e::loa_exp::fig14(&mut c, &dev));
    exp!("fig15_loa_window_counts", e::loa_exp::fig15(&mut c, &dev));
    exp!("fig16_loa_overhead", e::loa_exp::fig16(&mut c, &dev));
    exp!("table07_fp_types", e::spmm::table07(&mut c, &dev));
    exp!("table10_sparsity_sweep", e::spmm::table10(&dev));
    exp!("table11_preprocessing", e::spmm::table11(&mut c, &dev));
    exp!("table12_memory_usage", e::training::table12(&mut c));
    exp!("table13_utilization", e::utilization::table13(&mut c, &dev));
    exp!(
        "table14_per_core_time",
        e::utilization::table14(&mut c, &dev)
    );
    exp!("table15_occupancy", e::utilization::table15(&mut c, &dev));
    exp!("table16_architectures", e::spmm::table16(&mut c));
    exp!("fig17_sensitivity", e::sensitivity::fig17(&mut c, &dev));
    exp!(
        "ext_dynamic_graphs",
        e::extensions::dynamic_graphs(&mut c, &dev)
    );
    exp!(
        "ext_vw_sensitivity",
        e::extensions::vw_sensitivity(&mut c, &dev)
    );
    exp!(
        "ext_concurrent_cores",
        e::extensions::concurrent_cores(&mut c, &dev)
    );
    exp!(
        "ext_oom_chunking",
        e::extensions::oom_chunking(&mut c, &dev)
    );
    exp!(
        "ext_selector_oracle",
        e::extensions::selector_vs_oracle(&mut c, &dev)
    );
    exp!(
        "ext_feature_ablation",
        e::extensions::feature_ablation(&dev)
    );
    exp!(
        "ext_aggregation_share",
        e::extensions::aggregation_share(&mut c, &dev)
    );
    exp!("ext_deep_models", e::extensions::deep_models(&mut c, &dev));
    let mut plan_cache_metrics = None;
    exp!("ext_plan_cache_amortization", {
        let (text, m) = e::extensions::plan_cache_amortization(&mut c, &dev);
        plan_cache_metrics = Some(m);
        text
    });
    report.plan_cache = plan_cache_metrics;
    let mut fault_recovery_metrics = None;
    exp!("ext_fault_recovery", {
        let (text, m) = e::extensions::fault_recovery(&mut c, &dev);
        fault_recovery_metrics = Some(m);
        text
    });
    report.fault_recovery = fault_recovery_metrics;
    let mut hot_path_metrics = None;
    exp!("ext_hot_path", {
        let (text, m) = e::extensions::hot_path(&mut c, &dev);
        hot_path_metrics = Some(m);
        text
    });
    report.hot_path = hot_path_metrics;
    let mut serving_load_metrics = None;
    exp!("ext_serving_load", {
        let (text, m) = e::extensions::serving_load(&mut c, &dev);
        serving_load_metrics = Some(m);
        text
    });
    report.serving_load = serving_load_metrics;
    let mut dynamic_graphs_metrics = None;
    exp!("ext_churn", {
        let (text, m) = e::extensions::churn(&mut c, &dev);
        dynamic_graphs_metrics = Some(m);
        text
    });
    report.dynamic_graphs = dynamic_graphs_metrics;
    let mut recovery_metrics = None;
    exp!("ext_recovery", {
        let (text, m) = e::extensions::recovery(&mut c, &dev);
        recovery_metrics = Some(m);
        text
    });
    report.recovery = recovery_metrics;
    let mut tile_compress_metrics = None;
    exp!("ext_tile_compress", {
        let (text, m) = e::extensions::tile_compress(&mut c, &dev);
        tile_compress_metrics = Some(m);
        text
    });
    report.tile_compress = tile_compress_metrics;

    // Kernel-family speedup vs a forced single-thread run (also the
    // determinism spot check).
    report.kernels = metrics::measure_kernel_speedups(&mut c, &dev);
    let mut t = Table::new(&[
        "Family",
        "Dataset",
        "Serial(ms)",
        "Parallel(ms)",
        "Speedup",
        "BitIdentical",
    ]);
    for k in &report.kernels {
        t.row(vec![
            k.family.clone(),
            k.dataset.clone(),
            f3(k.serial_ms),
            f3(k.parallel_ms),
            format!("{:.2}x", k.speedup),
            k.bit_identical.to_string(),
        ]);
    }
    println!("== Host parallelism: kernel-family wall clock at {threads} threads ==");
    println!("{}", t.render());
    if report.kernels.iter().any(|k| !k.bit_identical) {
        eprintln!("ERROR: parallel output diverged from single-thread output");
        std::process::exit(1);
    }

    // Written atomically (temp sibling + rename): a crash or a concurrent
    // reader never sees a half-written report — same helper the
    // durability layer uses for snapshots.
    let path = metrics::default_path();
    match hc_parallel::fsio::atomic_write(&path, report.to_json().as_bytes()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("ERROR: could not write {}: {err}", path.display());
            std::process::exit(1);
        }
    }
}
