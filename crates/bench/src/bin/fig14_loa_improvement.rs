//! Regenerates Fig. 14: LOA end-to-end improvement.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::loa_exp::fig14(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
