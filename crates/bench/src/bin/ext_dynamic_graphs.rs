//! Extension: dynamic-graph break-even (Appendix F's amortization claim).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::extensions::dynamic_graphs(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
