//! Extension: aggregation share of GNN epoch time (§I's >80 % claim).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::extensions::aggregation_share(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
