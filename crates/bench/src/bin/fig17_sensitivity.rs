//! Regenerates Fig. 17: LR-parameter sensitivity (Appendix E).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::sensitivity::fig17(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
