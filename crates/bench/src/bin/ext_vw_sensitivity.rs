//! Extension: LOA vertices-window (VW) sweep.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::extensions::vw_sensitivity(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
