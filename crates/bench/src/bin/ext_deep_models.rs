//! Extension: K-layer GCN depth scaling and LOA amortization.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::extensions::deep_models(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
