//! Regenerates Fig. 16: LOA overhead vs training time.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::loa_exp::fig16(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
