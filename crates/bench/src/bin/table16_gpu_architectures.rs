//! Regenerates Table XVI: SpMM across GPU architectures (Appendix A).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!("{}", bench::experiments::spmm::table16(&mut c));
}
