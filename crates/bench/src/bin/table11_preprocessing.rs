//! Regenerates Table XI: preprocessing overhead (Appendix F).
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::spmm::table11(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
