//! Reruns the §IV-C selector-training pipeline on every GPU preset.
fn main() {
    println!("{}", bench::experiments::selector_exp::run());
}
