//! CI perf-regression gate: compares a fresh `BENCH.json` against the
//! committed baseline and exits non-zero when any experiment slowed down by
//! more than the threshold (or disappeared from the run).
//!
//! ```text
//! bench_gate --baseline BENCH_baseline.json --current BENCH.json \
//!            [--threshold 0.25] [--min-ms 10]
//! ```
//!
//! Each experiment is compared on process CPU time when both reports
//! measured it (CPU time does not advance while the process is preempted,
//! so it is stable on oversubscribed runners where wall clock swings 2x
//! between identical runs), falling back to wall clock otherwise.
//!
//! `--threshold` is the allowed fractional slowdown (0.25 = +25 %);
//! `--min-ms` is the noise floor — experiments where both sides run under
//! it are skipped, and a regression must also exceed it as an absolute
//! delta (absorbs the 10 ms CPU-tick quantization). In CI, applying the
//! `perf-override` label to a PR skips this gate for intentional
//! slowdowns (see the workflow).

use bench::metrics::{gate, BenchReport};

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline <path> --current <path> \
         [--threshold 0.25] [--min-ms 10]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("ERROR: cannot read {path}: {err}");
        std::process::exit(2);
    });
    BenchReport::from_json(&text).unwrap_or_else(|err| {
        eprintln!("ERROR: cannot parse {path}: {err}");
        std::process::exit(2);
    })
}

fn main() {
    let mut baseline = None;
    let mut current = None;
    let mut threshold = 0.25f64;
    let mut min_ms = 10.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--baseline" => baseline = Some(value()),
            "--current" => current = Some(value()),
            "--threshold" => threshold = value().parse().unwrap_or_else(|_| usage()),
            "--min-ms" => min_ms = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        usage();
    };

    let base = load(&baseline);
    let cur = load(&current);
    if base.scale != cur.scale {
        eprintln!(
            "WARNING: scale mismatch (baseline 1/{}, current 1/{}) — \
             timings are not comparable across scales",
            base.scale, cur.scale
        );
    }

    let out = gate(&base, &cur, threshold, min_ms);
    println!(
        "perf gate: {} experiments compared (threshold +{:.0}%, noise floor {min_ms} ms)",
        out.compared,
        threshold * 100.0
    );
    for m in &out.missing {
        println!("  MISSING    {m}: in baseline but absent from current run");
    }
    for r in &out.regressions {
        println!(
            "  REGRESSED  {}: {:.1} ms -> {:.1} ms ({:.2}x, {} time)",
            r.name, r.base_ms, r.cur_ms, r.ratio, r.metric
        );
    }
    if out.failed() {
        println!(
            "FAIL: perf gate found {} regression(s), {} missing experiment(s)",
            out.regressions.len(),
            out.missing.len()
        );
        println!("(intentional? apply the `perf-override` PR label to skip this gate)");
        std::process::exit(1);
    }
    println!("PASS: no experiment regressed past the threshold");
}
