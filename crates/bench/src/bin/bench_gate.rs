//! CI perf-regression gate: compares a fresh `BENCH.json` against the
//! committed baseline and exits non-zero when any experiment slowed down by
//! more than the threshold (or disappeared from the run).
//!
//! ```text
//! bench_gate --baseline BENCH_baseline.json --current BENCH.json \
//!            [--threshold 0.25] [--min-ms 10]
//! ```
//!
//! Each experiment is compared on process CPU time when both reports
//! measured it (CPU time does not advance while the process is preempted,
//! so it is stable on oversubscribed runners where wall clock swings 2x
//! between identical runs), falling back to wall clock otherwise.
//!
//! `--threshold` is the allowed fractional slowdown (0.25 = +25 %);
//! `--min-ms` is the noise floor — experiments where both sides run under
//! it are skipped, and a regression must also exceed it as an absolute
//! delta (absorbs the 10 ms CPU-tick quantization). In CI, applying the
//! `perf-override` label to a PR skips this gate for intentional
//! slowdowns (see the workflow).
//!
//! `--min-plan-cache-hit-rate R` additionally requires the *current*
//! report to carry plan-cache counters with a hit rate of at least `R`
//! and an amortized per-request cost strictly below the cold cost. These
//! are simulated-time functional assertions, not noisy host timings, so
//! they are exact and have no override.
//!
//! `--max-degraded-rate R` requires the current report's `fault_recovery`
//! block to show a degraded-request rate of at most `R` and zero failed
//! requests: the resilience layer must recover every request the chaos
//! schedule hits. Like the cache assertions, these counters are
//! deterministic and have no override.
//!
//! `--max-p99-ms MS` requires the current report's `serving_load` block
//! to show a 99th-percentile *simulated* serving latency of at most `MS`
//! ms, and an amortized cohorted cost strictly below the uncohorted
//! control cost. `--min-cohort-rate R` requires the same block to show a
//! cohort rate (admitted requests executed in a cohort of ≥ 2) of at
//! least `R`. Simulated time is deterministic, so both are exact and
//! have no override.
//!
//! `--max-patch-cost-ratio R` requires the current report's
//! `dynamic_graphs` block to show, at every churn sweep size, an
//! incremental re-plan (patch) cost of at most `R` times the
//! from-scratch preprocessing cost — and the ratio must shrink
//! monotonically with graph size (`sublinear`): a one-edge delta dirties
//! a bounded window set, so its relative cost must fall as the window
//! count grows. Simulated-time, deterministic, no override.
//!
//! `--max-recovery-ratio R` requires the current report's `recovery`
//! block to show a warm-recovery cost of at most `R` times the
//! cold-prefix-replay cost, a recovered report bit-identical to the
//! uncrashed control (`equivalent`), and zero double-applied deltas.
//! Simulated-time, deterministic, no override.
//!
//! `--max-plan-bytes-ratio R` requires the current report's
//! `tile_compress` block to show a compressed-plan footprint of at most
//! `R` times the dense-metadata footprint. `--max-prepare-cost-ratio R`
//! requires the same block to show a compressed-write-back preprocessing
//! cost of at most `R` times the pre-compression kernel's, and a
//! pipelined tensor-cycle total strictly below the synchronous one.
//! Exact bytes and simulated cycles, deterministic, no override.
//!
//! `--min-kernel-speedup-floor F` fails when any kernel family in the
//! current report times slower multithreaded than serial (`speedup < F`)
//! without its `serial_fallback` flag set — i.e. the pool actually fanned
//! out and made things worse. Launches the calibrated serial fast path
//! absorbed are exempt (both sides ran identical code, so their ratio is
//! scheduler noise). This is a host timing, so the `perf-override` label
//! escape applies.
//!
//! Exit codes: `0` pass, `1` regression or assertion failure, `2` bad
//! invocation or unreadable/unparsable *current* report, `3` missing or
//! unparsable *baseline* (printed as a one-line `NO BASELINE:` reason) —
//! so a fresh branch with no committed baseline is distinguishable from
//! a real failure.

use bench::metrics::{gate, BenchReport};

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline <path> --current <path> \
         [--threshold 0.25] [--min-ms 10] [--min-plan-cache-hit-rate R] \
         [--max-degraded-rate R] [--max-p99-ms MS] [--min-cohort-rate R] \
         [--max-patch-cost-ratio R] [--max-recovery-ratio R] \
         [--max-plan-bytes-ratio R] [--max-prepare-cost-ratio R] \
         [--min-kernel-speedup-floor F]"
    );
    std::process::exit(2);
}

/// Exit code for a missing or unparsable *baseline*: distinct from both
/// "regression found" (1) and "bad invocation / bad current report" (2),
/// so CI can tell "no baseline to compare against" apart from a genuine
/// failure and surface it as its own step instead of a false red.
const EXIT_NO_BASELINE: i32 = 3;

fn load_baseline(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("NO BASELINE: cannot read baseline {path}: {err}");
        std::process::exit(EXIT_NO_BASELINE);
    });
    BenchReport::from_json(&text).unwrap_or_else(|err| {
        eprintln!("NO BASELINE: cannot parse baseline {path}: {err}");
        std::process::exit(EXIT_NO_BASELINE);
    })
}

fn load_current(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("ERROR: cannot read {path}: {err}");
        std::process::exit(2);
    });
    BenchReport::from_json(&text).unwrap_or_else(|err| {
        eprintln!("ERROR: cannot parse {path}: {err}");
        std::process::exit(2);
    })
}

fn main() {
    let mut baseline = None;
    let mut current = None;
    let mut threshold = 0.25f64;
    let mut min_ms = 10.0f64;
    let mut min_hit_rate: Option<f64> = None;
    let mut max_degraded_rate: Option<f64> = None;
    let mut max_p99_ms: Option<f64> = None;
    let mut min_cohort_rate: Option<f64> = None;
    let mut max_patch_ratio: Option<f64> = None;
    let mut max_recovery_ratio: Option<f64> = None;
    let mut max_plan_bytes_ratio: Option<f64> = None;
    let mut max_prepare_cost_ratio: Option<f64> = None;
    let mut speedup_floor: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--baseline" => baseline = Some(value()),
            "--current" => current = Some(value()),
            "--threshold" => threshold = value().parse().unwrap_or_else(|_| usage()),
            "--min-ms" => min_ms = value().parse().unwrap_or_else(|_| usage()),
            "--min-plan-cache-hit-rate" => {
                min_hit_rate = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--max-degraded-rate" => {
                max_degraded_rate = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--max-p99-ms" => max_p99_ms = Some(value().parse().unwrap_or_else(|_| usage())),
            "--min-cohort-rate" => {
                min_cohort_rate = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--max-patch-cost-ratio" => {
                max_patch_ratio = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--max-recovery-ratio" => {
                max_recovery_ratio = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--max-plan-bytes-ratio" => {
                max_plan_bytes_ratio = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--max-prepare-cost-ratio" => {
                max_prepare_cost_ratio = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--min-kernel-speedup-floor" => {
                speedup_floor = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        usage();
    };

    let base = load_baseline(&baseline);
    let cur = load_current(&current);
    if base.scale != cur.scale {
        eprintln!(
            "WARNING: scale mismatch (baseline 1/{}, current 1/{}) — \
             timings are not comparable across scales",
            base.scale, cur.scale
        );
    }

    if let Some(min_rate) = min_hit_rate {
        let Some(pc) = &cur.plan_cache else {
            eprintln!(
                "FAIL: --min-plan-cache-hit-rate given but the current report \
                 has no \"plan_cache\" block (did ext_plan_cache_amortization run?)"
            );
            std::process::exit(1);
        };
        println!(
            "plan cache: {} requests, hit rate {:.1}% (min {:.1}%), \
             amortized {:.4} vs cold {:.4} ms/request",
            pc.requests,
            pc.hit_rate * 100.0,
            min_rate * 100.0,
            pc.amortized_ms,
            pc.cold_ms
        );
        if pc.hit_rate < min_rate {
            eprintln!(
                "FAIL: plan-cache hit rate {:.4} below required {min_rate}",
                pc.hit_rate
            );
            std::process::exit(1);
        }
        if pc.amortized_ms >= pc.cold_ms {
            eprintln!(
                "FAIL: amortized per-request cost {:.4} ms is not below the \
                 cold cost {:.4} ms — the cache is not paying for itself",
                pc.amortized_ms, pc.cold_ms
            );
            std::process::exit(1);
        }
    }

    if let Some(max_rate) = max_degraded_rate {
        let Some(fr) = &cur.fault_recovery else {
            eprintln!(
                "FAIL: --max-degraded-rate given but the current report has \
                 no \"fault_recovery\" block (did ext_fault_recovery run?)"
            );
            std::process::exit(1);
        };
        println!(
            "fault recovery: {} requests under faults, {} ok / {} degraded / {} failed \
             (rate {:.1}%, max {:.1}%), {} retries, {} fallbacks, {} quarantined, \
             {:.4} ms wasted (sim)",
            fr.requests,
            fr.ok,
            fr.degraded,
            fr.failed,
            fr.degraded_rate * 100.0,
            max_rate * 100.0,
            fr.retries,
            fr.fallbacks,
            fr.quarantined,
            fr.wasted_sim_ms
        );
        if fr.failed > 0 {
            eprintln!(
                "FAIL: {} request(s) failed under the chaos schedule — the \
                 fallback chain must serve every request",
                fr.failed
            );
            std::process::exit(1);
        }
        if fr.degraded_rate > max_rate {
            eprintln!(
                "FAIL: degraded-request rate {:.4} above allowed {max_rate}",
                fr.degraded_rate
            );
            std::process::exit(1);
        }
    }

    if max_p99_ms.is_some() || min_cohort_rate.is_some() {
        let Some(sl) = &cur.serving_load else {
            eprintln!(
                "FAIL: --max-p99-ms/--min-cohort-rate given but the current \
                 report has no \"serving_load\" block (did ext_serving_load run?)"
            );
            std::process::exit(1);
        };
        println!(
            "serving load: {} submitted / {} admitted ({} queue-shed, {} quota-shed), \
             {} cohorts at rate {:.3}, p50 {:.4} / p99 {:.4} ms (sim), \
             amortized {:.4} vs uncohorted {:.4} ms/request",
            sl.submitted,
            sl.admitted,
            sl.rejected_queue,
            sl.rejected_quota,
            sl.cohorts,
            sl.cohort_rate,
            sl.p50_sim_ms,
            sl.p99_sim_ms,
            sl.amortized_sim_ms,
            sl.uncohorted_sim_ms
        );
        if let Some(max_p99) = max_p99_ms {
            if sl.p99_sim_ms > max_p99 {
                eprintln!(
                    "FAIL: serving p99 {:.4} ms (sim) above allowed {max_p99} ms",
                    sl.p99_sim_ms
                );
                std::process::exit(1);
            }
            if sl.amortized_sim_ms >= sl.uncohorted_sim_ms {
                eprintln!(
                    "FAIL: amortized cohorted cost {:.4} ms is not below the \
                     uncohorted control {:.4} ms — cohorting is not paying for itself",
                    sl.amortized_sim_ms, sl.uncohorted_sim_ms
                );
                std::process::exit(1);
            }
        }
        if let Some(min_rate) = min_cohort_rate {
            if sl.cohort_rate < min_rate {
                eprintln!(
                    "FAIL: cohort rate {:.4} below required {min_rate}",
                    sl.cohort_rate
                );
                std::process::exit(1);
            }
        }
    }

    if let Some(max_ratio) = max_patch_ratio {
        let Some(dg) = &cur.dynamic_graphs else {
            eprintln!(
                "FAIL: --max-patch-cost-ratio given but the current report \
                 has no \"dynamic_graphs\" block (did ext_churn run?)"
            );
            std::process::exit(1);
        };
        println!(
            "dynamic graphs: {} mutations, {} patched plans, {} swaps, \
             {} stale-served, max patch/full ratio {:.4} (max {:.4}), \
             sublinear {}, amortized churn {:.4} vs steady {:.4} ms/request",
            dg.mutations,
            dg.patched_plans,
            dg.swaps,
            dg.stale_served,
            dg.max_patch_ratio,
            max_ratio,
            dg.sublinear,
            dg.amortized_churn_sim_ms,
            dg.amortized_steady_sim_ms
        );
        for p in &dg.scale_points {
            println!(
                "  churn sweep: {:>6} rows / {:>7} nnz / {:>4} windows: \
                 full {:.4} ms, patch {:.4} ms (ratio {:.4})",
                p.nrows, p.nnz, p.windows, p.full_prepare_sim_ms, p.patch_sim_ms, p.patch_ratio
            );
        }
        if dg.max_patch_ratio > max_ratio {
            eprintln!(
                "FAIL: incremental re-plan cost ratio {:.4} above allowed \
                 {max_ratio} — patching is not meaningfully cheaper than \
                 preprocessing from scratch",
                dg.max_patch_ratio
            );
            std::process::exit(1);
        }
        if !dg.sublinear {
            eprintln!(
                "FAIL: patch/full cost ratio did not shrink with graph size — \
                 the dirty-window re-plan is scaling with the whole graph"
            );
            std::process::exit(1);
        }
    }

    if let Some(max_ratio) = max_recovery_ratio {
        let Some(rc) = &cur.recovery else {
            eprintln!(
                "FAIL: --max-recovery-ratio given but the current report \
                 has no \"recovery\" block (did ext_recovery run?)"
            );
            std::process::exit(1);
        };
        println!(
            "recovery: crashed at point {} of {}, resumed at epoch {}/{}; \
             {} plans restored ({} prepares + {} patch replays), {} deltas \
             replayed ({} duplicates skipped), warm {:.4} vs cold {:.4} ms \
             (sim) — ratio {:.4} (max {:.4}), equivalent {}",
            rc.crash_points.saturating_sub(1),
            rc.crash_points,
            rc.resume_epoch,
            rc.total_epochs,
            rc.restored_plans,
            rc.full_prepares,
            rc.patch_replays,
            rc.replayed_deltas,
            rc.skipped_duplicates,
            rc.warm_recovery_sim_ms,
            rc.cold_replay_sim_ms,
            rc.recovery_ratio,
            max_ratio,
            rc.equivalent
        );
        if !rc.equivalent {
            eprintln!(
                "FAIL: the recovered report was not bit-identical to the \
                 uncrashed control — restart equivalence is broken"
            );
            std::process::exit(1);
        }
        if rc.double_applied > 0 {
            eprintln!(
                "FAIL: {} delta(s) were double-applied during WAL replay — \
                 recovery is not idempotent",
                rc.double_applied
            );
            std::process::exit(1);
        }
        if rc.recovery_ratio > max_ratio {
            eprintln!(
                "FAIL: warm recovery cost ratio {:.4} above allowed \
                 {max_ratio} — recovery is not meaningfully cheaper than \
                 replaying the prefix cold",
                rc.recovery_ratio
            );
            std::process::exit(1);
        }
    }

    if max_plan_bytes_ratio.is_some() || max_prepare_cost_ratio.is_some() {
        let Some(tc) = &cur.tile_compress else {
            eprintln!(
                "FAIL: --max-plan-bytes-ratio/--max-prepare-cost-ratio given \
                 but the current report has no \"tile_compress\" block (did \
                 ext_tile_compress run?)"
            );
            std::process::exit(1);
        };
        println!(
            "tile compress: {} windows, metadata {} B vs {} B dense \
             (ratio {:.4}), plan {} B vs {} B (ratio {:.4}), preprocessing \
             {:.4} vs {:.4} ms (ratio {:.4}), tensor cycles ratio {:.4}",
            tc.windows,
            tc.meta_bytes_compressed,
            tc.meta_bytes_uncompressed,
            tc.bytes_ratio,
            tc.plan_bytes_compressed,
            tc.plan_bytes_uncompressed,
            tc.plan_bytes_ratio,
            tc.prepare_sim_ms_compressed,
            tc.prepare_sim_ms_uncompressed,
            tc.prepare_cost_ratio,
            tc.tensor_cycle_ratio
        );
        if let Some(max_ratio) = max_plan_bytes_ratio {
            if tc.plan_bytes_ratio > max_ratio {
                eprintln!(
                    "FAIL: compressed-plan footprint ratio {:.4} above allowed \
                     {max_ratio} — the tile metadata is not earning its keep",
                    tc.plan_bytes_ratio
                );
                std::process::exit(1);
            }
        }
        if let Some(max_ratio) = max_prepare_cost_ratio {
            if tc.prepare_cost_ratio > max_ratio {
                eprintln!(
                    "FAIL: compressed preprocessing cost ratio {:.4} above \
                     allowed {max_ratio} — emitting the compact form costs \
                     more than the dense write-back it replaces",
                    tc.prepare_cost_ratio
                );
                std::process::exit(1);
            }
            if tc.tensor_cycles_pipelined >= tc.tensor_cycles_unpipelined {
                eprintln!(
                    "FAIL: pipelined tensor schedule ({:.0} cycles) is not \
                     below the synchronous one ({:.0}) — double buffering \
                     stopped paying for itself",
                    tc.tensor_cycles_pipelined, tc.tensor_cycles_unpipelined
                );
                std::process::exit(1);
            }
        }
    }

    if let Some(floor) = speedup_floor {
        let mut below = 0usize;
        for k in &cur.kernels {
            let status = if k.serial_fallback {
                "serial fast path"
            } else if k.speedup < floor {
                below += 1;
                "BELOW FLOOR"
            } else {
                "ok"
            };
            println!(
                "kernel speedup: {:>15} on {}: {:.2}x (floor {floor}) — {status}",
                k.family, k.dataset, k.speedup
            );
        }
        if below > 0 {
            eprintln!(
                "FAIL: {below} kernel familie(s) ran slower multithreaded than \
                 serial with the pool engaged — parallel overhead is eating the win"
            );
            eprintln!("(intentional? apply the `perf-override` PR label to skip this gate)");
            std::process::exit(1);
        }
    }

    let out = gate(&base, &cur, threshold, min_ms);
    println!(
        "perf gate: {} experiments compared (threshold +{:.0}%, noise floor {min_ms} ms)",
        out.compared,
        threshold * 100.0
    );
    for m in &out.missing {
        println!("  MISSING    {m}: in baseline but absent from current run");
    }
    for r in &out.regressions {
        println!(
            "  REGRESSED  {}: {:.1} ms -> {:.1} ms ({:.2}x, {} time)",
            r.name, r.base_ms, r.cur_ms, r.ratio, r.metric
        );
    }
    if out.failed() {
        println!(
            "FAIL: perf gate found {} regression(s), {} missing experiment(s)",
            out.regressions.len(),
            out.missing.len()
        );
        println!("(intentional? apply the `perf-override` PR label to skip this gate)");
        std::process::exit(1);
    }
    println!("PASS: no experiment regressed past the threshold");
}
