//! Regenerates Table IV: shared-memory staging ablation.
fn main() {
    let mut c = bench::harness::DatasetCache::new();
    println!(
        "{}",
        bench::experiments::ablations::table04(&mut c, &gpu_sim::DeviceSpec::rtx3090())
    );
}
