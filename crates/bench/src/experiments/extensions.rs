//! Extension experiments beyond the paper's numbered tables, each grounded
//! in a specific in-paper claim.
//!
//! * **Dynamic graphs** — Appendix F: "For scenarios where sparse matrices
//!   are constantly changing, SpMM methods optimized for CUDA cores such as
//!   Sputnik are more suitable." We quantify the break-even: how many SpMM
//!   executions per graph mutation amortize HC-SpMM's preprocessing?
//! * **VW sensitivity** — §V-B introduces the vertices window `VW` without
//!   reporting a value; we sweep it and report the quality/overhead trade.

use std::sync::Arc;

use baselines::SputnikSpmm;
use gpu_sim::{DeviceSpec, FaultConfig};
use graph_sparse::{DatasetId, DenseMatrix, RowWindowPartition};
use hc_core::{HcSpmm, KernelFamily, Loa, PlanSpec, ResiliencePolicy, SpmmKernel};
use hc_serve::{BatchDriver, BatchSummary, Outcome, Request};

use crate::harness::{f3, DatasetCache, Table};
use crate::metrics::{
    ChurnScalePoint, DynamicGraphsMetrics, FaultRecoveryMetrics, HotPathMetrics, PlanCacheMetrics,
    RecoveryMetrics, ServingLoadMetrics, TenantSlo, TileCompressMetrics,
};

/// Dynamic-graph break-even: executions per mutation at which HC-SpMM
/// (preprocess once, run fast) overtakes Sputnik (no preprocessing). The
/// patched column re-plans the same structure after a one-edge churn
/// delta through [`hc_core::Plan::patch`] (dirty windows only) — the
/// incremental path that replaces "preprocess from scratch on every
/// mutation" and moves the break-even accordingly.
pub fn dynamic_graphs(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    use hc_core::Plan;
    let mut t = Table::new(&[
        "Dataset",
        "HC pre (ms)",
        "HC patch (ms)",
        "HC SpMM (ms)",
        "Sputnik SpMM (ms)",
        "break-even execs",
    ]);
    for id in DatasetId::ABLATION_SET {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = ds.adj.clone();
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let hc = HcSpmm::default();
        let pre = hc.preprocess(&a, dev);
        let t_hc = hc.spmm_preprocessed(&pre, &a, &x, dev).run.time_ms;
        let t_sp = SputnikSpmm.spmm(&a, &x, dev).run.time_ms;
        let plan = Plan::prepare(&a, PlanSpec::hybrid(), dev);
        let t_patch = one_edge_churn(&a)
            .and_then(|delta| plan.patch(&a, &delta, dev).ok())
            .map_or_else(|| "-".to_string(), |p| f3(p.sim_prepare_ms()));
        let breakeven = if t_sp > t_hc {
            format!("{:.1}", pre.run.time_ms / (t_sp - t_hc))
        } else {
            "never".to_string()
        };
        t.row(vec![
            id.code().into(),
            f3(pre.run.time_ms),
            t_patch,
            f3(t_hc),
            f3(t_sp),
            breakeven,
        ]);
    }
    format!(
        "Dynamic-graph break-even (Appendix F): executions per mutation needed to amortize preprocessing\n\
         (HC patch = incremental re-plan after a one-edge delta, dirty windows only)\n{}",
        t.render()
    )
}

/// A minimal valid churn delta against `a`: its first edge deleted and
/// one absent cell inserted. `None` for graphs with no edges or no free
/// cell in the probed rows.
fn one_edge_churn(a: &graph_sparse::Csr) -> Option<graph_sparse::DeltaCsr> {
    let (dr, dc) = (0..a.nrows).find_map(|r| a.row_cols(r).first().map(|&c| (r as u32, c)))?;
    let insert = (0..a.nrows as u32)
        .flat_map(|r| (0..a.ncols.min(64) as u32).map(move |c| (r, c)))
        .find(|&(r, c)| (r, c) != (dr, dc) && !a.row_cols(r as usize).contains(&c))?;
    graph_sparse::DeltaCsr::new(
        a.nrows,
        a.ncols,
        vec![(insert.0, insert.1, 1.0)],
        vec![(dr, dc)],
    )
    .ok()
}

/// Plan-cache amortization: serve a repeated-graph request mix through the
/// structure-keyed cache and compare the amortized per-request cost
/// against re-preparing on every request. Appendix F puts preprocessing
/// near 13x one SpMM — a serving workload only wins it back by reusing the
/// plan, and these counters feed the CI hit-rate/amortization assertion.
pub fn plan_cache_amortization(
    cache: &mut DatasetCache,
    dev: &DeviceSpec,
) -> (String, PlanCacheMetrics) {
    const ROUNDS: usize = 12;
    let ids = [DatasetId::CR, DatasetId::PM, DatasetId::PT, DatasetId::AZ];
    let graphs: Vec<Arc<graph_sparse::Csr>> = ids
        .iter()
        .map(|&id| Arc::new(cache.get(id).adj.clone()))
        .collect();

    // Round-robin mix: every graph repeats ROUNDS times, so with a budget
    // that holds all plans the expected hit rate is (ROUNDS-1)/ROUNDS per
    // graph — 44/48 ≈ 0.917 here.
    let requests: Vec<Request> = (0..ROUNDS)
        .flat_map(|round| {
            graphs.iter().enumerate().map(move |(i, g)| Request {
                graph: Arc::clone(g),
                features: DenseMatrix::random_features(g.ncols, 32, (round * ids.len() + i) as u64),
            })
        })
        .collect();
    let mut driver = BatchDriver::new(1 << 30, PlanSpec::hybrid());
    let responses = driver.run(&requests, dev);

    // Per-graph preparation cost, read off each graph's miss response.
    let mut prepare_ms = vec![0.0f64; ids.len()];
    let mut exec_ms = vec![0.0f64; ids.len()];
    for (i, r) in responses.iter().enumerate() {
        let g = i % ids.len();
        exec_ms[g] += r.exec_sim_ms;
        if !r.hit {
            prepare_ms[g] = r.prepare_sim_ms;
        }
    }

    let mut t = Table::new(&[
        "Dataset",
        "requests",
        "prepare (ms)",
        "mean SpMM (ms)",
        "cold (ms/req)",
        "amortized (ms/req)",
    ]);
    let n = responses.len() as f64;
    let mut cold_total = 0.0;
    let mut amortized_total = 0.0;
    for (g, &id) in ids.iter().enumerate() {
        let reqs = ROUNDS as f64;
        let mean_exec = exec_ms[g] / reqs;
        let cold = mean_exec + prepare_ms[g];
        let amortized = mean_exec + prepare_ms[g] / reqs;
        cold_total += cold * reqs;
        amortized_total += amortized * reqs;
        t.row(vec![
            id.code().into(),
            ROUNDS.to_string(),
            f3(prepare_ms[g]),
            f3(mean_exec),
            f3(cold),
            f3(amortized),
        ]);
    }
    let s = driver.stats();
    let m = PlanCacheMetrics {
        requests: s.requests,
        hits: s.hits,
        misses: s.misses,
        evictions: s.evictions,
        hit_rate: s.hit_rate(),
        cold_ms: cold_total / n,
        amortized_ms: amortized_total / n,
    };
    let text = format!(
        "Plan-cache amortization: {} requests over {} graphs — {} hits / {} misses \
         (hit rate {:.1}%), amortized {:.4} vs cold {:.4} ms/request (sim)\n{}",
        m.requests,
        ids.len(),
        m.hits,
        m.misses,
        m.hit_rate * 100.0,
        m.amortized_ms,
        m.cold_ms,
        t.render()
    );
    (text, m)
}

/// Fault recovery: the plan-cache request mix served twice — once
/// fault-free, once under a deterministic injected-fault schedule — to
/// price the resilience layer. Every `Ok` outcome under faults must be
/// bit-exact to the fault-free run (results only ever come from zero-fault
/// attempts); degraded requests record the retry/fallback overhead as
/// discarded simulated time. These counters feed the CI
/// `--max-degraded-rate` assertion.
pub fn fault_recovery(
    cache: &mut DatasetCache,
    dev: &DeviceSpec,
) -> (String, FaultRecoveryMetrics) {
    const ROUNDS: usize = 8;
    const FAULT_SEED: u64 = 42;
    const FAULT_RATE: f64 = 0.25;
    let ids = [DatasetId::CR, DatasetId::PM, DatasetId::PT, DatasetId::AZ];
    let graphs: Vec<Arc<graph_sparse::Csr>> = ids
        .iter()
        .map(|&id| Arc::new(cache.get(id).adj.clone()))
        .collect();
    let requests: Vec<Request> = (0..ROUNDS)
        .flat_map(|round| {
            graphs.iter().enumerate().map(move |(i, g)| Request {
                graph: Arc::clone(g),
                features: DenseMatrix::random_features(g.ncols, 32, (round * ids.len() + i) as u64),
            })
        })
        .collect();

    // Fault-free reference pass, then the same mix under the schedule.
    let mut clean_driver = BatchDriver::new(1 << 30, PlanSpec::hybrid());
    let clean = clean_driver.run(&requests, dev);
    let policy = ResiliencePolicy {
        faults: FaultConfig::uniform(FAULT_SEED, FAULT_RATE),
        ..Default::default()
    };
    let mut driver = BatchDriver::with_policy(1 << 30, PlanSpec::hybrid(), policy);
    let responses = driver.run(&requests, dev);
    let sum = BatchSummary::of(&responses, KernelFamily::Hybrid);

    // Ok means "primary family, zero retries, zero faults" — such a result
    // must match the fault-free pass bit for bit.
    let ok_exact = responses
        .iter()
        .zip(&clean)
        .filter(|(r, _)| matches!(r.outcome, Outcome::Ok(_)))
        .all(|(r, c)| r.z() == c.z());

    let mut t = Table::new(&[
        "Dataset",
        "requests",
        "ok",
        "degraded",
        "failed",
        "retries",
        "wasted (ms)",
    ]);
    for (g, &id) in ids.iter().enumerate() {
        let (mut ok, mut degraded, mut failed, mut retries, mut wasted) =
            (0u64, 0u64, 0u64, 0u64, 0.0f64);
        for (i, r) in responses.iter().enumerate() {
            if i % ids.len() != g {
                continue;
            }
            wasted += r.wasted_sim_ms;
            match &r.outcome {
                Outcome::Ok(_) => ok += 1,
                Outcome::Degraded { retries: n, .. } => {
                    degraded += 1;
                    retries += u64::from(*n);
                }
                Outcome::Failed(_) => failed += 1,
            }
        }
        t.row(vec![
            id.code().into(),
            ROUNDS.to_string(),
            ok.to_string(),
            degraded.to_string(),
            failed.to_string(),
            retries.to_string(),
            f3(wasted),
        ]);
    }
    let m = FaultRecoveryMetrics {
        requests: sum.requests,
        ok: sum.ok,
        degraded: sum.degraded,
        failed: sum.failed,
        retries: sum.retries,
        fallbacks: sum.fallbacks,
        quarantined: driver.stats().quarantined,
        degraded_rate: sum.degraded_rate(),
        wasted_sim_ms: sum.wasted_sim_ms,
    };
    let text = format!(
        "Fault recovery (extension): {} requests under a seeded fault schedule \
         (seed {FAULT_SEED}, rate {FAULT_RATE}) — {} ok / {} degraded / {} failed \
         (degraded rate {:.1}%), {} retries, {} fallbacks, {} structures quarantined, \
         {:.4} ms wasted (sim); ok outputs bit-exact to fault-free run: {}\n{}",
        m.requests,
        m.ok,
        m.degraded,
        m.failed,
        m.degraded_rate * 100.0,
        m.retries,
        m.fallbacks,
        m.quarantined,
        m.wasted_sim_ms,
        ok_exact,
        t.render()
    );
    (text, m)
}

/// Hot-path workspace study: host cost of the serving loop with each
/// plan's workspace warm (block-cost vectors and LOA scratch recycled
/// across requests) versus cold (a fresh plan per request, every launch
/// re-deriving costs and re-allocating staging buffers). Outputs are
/// checked bit-equal between the two passes, and the counters feed the
/// BENCH.json `hot_path` block.
pub fn hot_path(cache: &mut DatasetCache, dev: &DeviceSpec) -> (String, HotPathMetrics) {
    use hc_core::Plan;
    const ROUNDS: usize = 8;
    let ids = [DatasetId::CR, DatasetId::PM, DatasetId::PT, DatasetId::AZ];
    let spec = PlanSpec {
        family: KernelFamily::Hybrid,
        use_loa: true,
    };

    hc_parallel::reset_pool_stats();
    // The printed table carries only deterministic counters — run_all's
    // cross-thread-count diff requires byte-identical experiment bodies,
    // so the host timings go exclusively to the BENCH.json block.
    let mut t = Table::new(&[
        "Dataset",
        "requests",
        "cost builds",
        "cost reuses",
        "scratch allocs",
        "scratch reuses",
    ]);
    let mut stats = hc_core::WorkspaceStats::default();
    let mut warm_total = 0.0f64;
    let mut cold_total = 0.0f64;
    let mut bit_exact = true;
    for &id in &ids {
        let a = cache.get(id).adj.clone();
        let xs: Vec<DenseMatrix> = (0..ROUNDS)
            .map(|r| DenseMatrix::random_features(a.nrows, 32, (id as usize * ROUNDS + r) as u64))
            .collect();
        // One warm plan serves every request; the cold pass gets a fresh
        // clone per request (cloning resets the workspace), prepared
        // outside the timed region so both passes time pure execution.
        let warm_plan = Plan::prepare(&a, spec, dev);
        let cold_plans: Vec<Plan> = (0..ROUNDS).map(|_| warm_plan.clone()).collect();

        let t0 = std::time::Instant::now();
        let warm_z: Vec<DenseMatrix> = xs.iter().map(|x| warm_plan.execute(&a, x, dev).z).collect();
        let warm_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = std::time::Instant::now();
        let cold_z: Vec<DenseMatrix> = cold_plans
            .iter()
            .zip(&xs)
            .map(|(p, x)| p.execute(&a, x, dev).z)
            .collect();
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

        bit_exact &= warm_z == cold_z;
        let ps = warm_plan.workspace_stats();
        stats.add(&ps);
        warm_total += warm_ms;
        cold_total += cold_ms;
        t.row(vec![
            id.code().into(),
            ROUNDS.to_string(),
            ps.cost_builds.to_string(),
            ps.cost_reuses.to_string(),
            ps.scratch_allocs.to_string(),
            ps.scratch_reuses.to_string(),
        ]);
    }
    let pool = hc_parallel::pool_stats();
    let requests = (ids.len() * ROUNDS) as u64;
    let m = HotPathMetrics {
        requests,
        cost_builds: stats.cost_builds,
        cost_reuses: stats.cost_reuses,
        scratch_allocs: stats.scratch_allocs,
        scratch_reuses: stats.scratch_reuses,
        allocs_per_request: (stats.cost_builds + stats.scratch_allocs) as f64 / requests as f64,
        parallel_regions: pool.parallel_regions,
        serial_fallbacks: pool.serial_fallbacks,
        warm_ms: warm_total / requests as f64,
        cold_ms: cold_total / requests as f64,
    };
    let text = format!(
        "Hot-path workspace reuse (extension): {} requests over {} LOA plans — \
         {} cost builds / {} reuses, {} scratch allocs / {} reuses \
         ({:.3} allocs/request); outputs bit-exact across warm/cold passes: {} \
         (host ms/request in BENCH.json's hot_path block)\n{}",
        m.requests,
        ids.len(),
        m.cost_builds,
        m.cost_reuses,
        m.scratch_allocs,
        m.scratch_reuses,
        m.allocs_per_request,
        bit_exact,
        t.render()
    );
    (text, m)
}

/// Serving-load: a multi-tenant request mix through the cohorting
/// [`Front`] vs. the same admitted mix through the uncohorted in-order
/// [`BatchDriver`], both under a cache budget one byte short of the
/// structure working set. The cyclic structure mix then thrashes the
/// LRU — the victim is always the next structure needed — so the
/// uncohorted control pays a full preparation per request, while the
/// front pays one preparation per cohort and amortizes it across every
/// member (the fleet-level version of Appendix F's ≈13× amortization
/// argument). The printed body carries only deterministic counters and
/// simulated times; host wall time goes to BENCH.json.
pub fn serving_load(cache: &mut DatasetCache, dev: &DeviceSpec) -> (String, ServingLoadMetrics) {
    use hc_core::Plan;
    use hc_serve::{Front, FrontConfig, FrontRequest, TenantId};
    const EPOCHS: usize = 6;
    const EPOCH_LEN: usize = 16;
    let ids = [DatasetId::CR, DatasetId::PM, DatasetId::PT, DatasetId::AZ];
    let graphs: Vec<Arc<graph_sparse::Csr>> = ids
        .iter()
        .map(|&id| Arc::new(cache.get(id).adj.clone()))
        .collect();

    // One cold preparation per structure pins the budget and the SLO
    // deterministically: budget = working set − 1 byte (cyclic-scan LRU
    // thrash), SLO = 130 % of the costliest preparation (members queued
    // deep behind a cold prepare blow it).
    let plans: Vec<Plan> = graphs
        .iter()
        .map(|g| Plan::prepare(g, PlanSpec::hybrid(), dev))
        .collect();
    let budget: u64 = plans.iter().map(Plan::approx_bytes).sum::<u64>() - 1;
    let slo_sim_ms = 1.3
        * plans
            .iter()
            .map(Plan::sim_prepare_ms)
            .fold(0.0f64, f64::max);

    // 96 arrivals: 4 tenants over 4 structures, tenant 0 submitting at
    // double rate so it overruns its quota; the queue bound clips each
    // epoch's tail. Structure cycles per arrival, so every epoch carries
    // all 4 structures ≈4× each — prime cohorting material.
    let trace: Vec<FrontRequest> = (0..EPOCHS * EPOCH_LEN)
        .map(|i| {
            let g = &graphs[i % ids.len()];
            FrontRequest {
                tenant: TenantId([0, 1, 2, 3, 0][i % 5]),
                request: Request {
                    graph: Arc::clone(g),
                    features: DenseMatrix::random_features(g.ncols, 32, i as u64),
                },
            }
        })
        .collect();

    let front = Front::new(
        budget,
        PlanSpec::hybrid(),
        1, // one lane: the budget math must match the control's single LRU
        FrontConfig {
            workers: 4, // fixed: the printed body must not depend on --threads
            queue_depth: 14,
            tenant_quota: 5,
            arrivals_per_epoch: EPOCH_LEN,
            max_cohort: 8,
            slo_sim_ms,
            ..Default::default()
        },
    );
    let rep = front.run_trace(&trace, dev);

    // Uncohorted control: the *admitted* mix, in trace order, through the
    // in-order BatchDriver under the identical budget.
    let admitted: Vec<&hc_serve::FrontResponse> =
        rep.responses.iter().filter(|r| !r.is_rejected()).collect();
    let control_reqs: Vec<Request> = admitted
        .iter()
        .map(|r| trace[r.trace_index].request.clone())
        .collect();
    let mut driver = BatchDriver::new(budget, PlanSpec::hybrid());
    let control = driver.run(&control_reqs, dev);
    let uncohorted_sim_ms = control
        .iter()
        .map(|r| r.prepare_sim_ms + r.exec_sim_ms + r.wasted_sim_ms)
        .sum::<f64>()
        / control.len() as f64;
    let bit_exact = admitted
        .iter()
        .zip(&control)
        .all(|(f, c)| f.z() == c.outcome.z());

    let mut t = Table::new(&[
        "tenant",
        "submitted",
        "admitted",
        "rejected",
        "served",
        "SLO viol",
        "p99 sim (ms)",
    ]);
    for ts in &rep.tenants {
        t.row(vec![
            ts.tenant.to_string(),
            ts.submitted.to_string(),
            ts.admitted.to_string(),
            ts.rejected.to_string(),
            ts.served.to_string(),
            ts.slo_violations.to_string(),
            f3(ts.p99_sim_ms),
        ]);
    }

    let c = rep.counters;
    let m = ServingLoadMetrics {
        submitted: c.submitted,
        admitted: c.admitted,
        rejected_queue: c.rejected_queue,
        rejected_quota: c.rejected_quota,
        served: c.ok + c.degraded,
        cohorts: c.cohorts,
        cohort_rate: c.cohort_rate(),
        p50_sim_ms: rep.latency.p50_sim_ms,
        p99_sim_ms: rep.latency.p99_sim_ms,
        amortized_sim_ms: rep.amortized_sim_ms(),
        uncohorted_sim_ms,
        tenants: rep
            .tenants
            .iter()
            .map(|ts| TenantSlo {
                tenant: u64::from(ts.tenant.0),
                submitted: ts.submitted,
                admitted: ts.admitted,
                rejected: ts.rejected,
                slo_violations: ts.slo_violations,
                p99_sim_ms: ts.p99_sim_ms,
            })
            .collect(),
    };
    let text = format!(
        "Serving load (extension): {} arrivals / {} admitted ({} quota-shed, \
         {} queue-shed) over {} structures under a thrash-tight cache — \
         {} cohorts, cohort rate {:.3}; amortized {} ms/req cohorted vs \
         {} ms/req uncohorted; latency p50 {} / p99 {} ms (sim, SLO {} ms); \
         outputs bit-exact to uncohorted control: {}\n{}",
        m.submitted,
        m.admitted,
        m.rejected_quota,
        m.rejected_queue,
        ids.len(),
        m.cohorts,
        m.cohort_rate,
        f3(m.amortized_sim_ms),
        f3(m.uncohorted_sim_ms),
        f3(m.p50_sim_ms),
        f3(m.p99_sim_ms),
        f3(slo_sim_ms),
        bit_exact,
        t.render()
    );
    (text, m)
}

/// Dynamic-graph churn: the incremental re-planning numbers the serving
/// story rests on.
///
/// Part 1 (scaling sweep): a fixed two-edge delta against community
/// graphs of growing size. Full preprocessing scales with the window
/// count (the simulated makespan grows once windows outnumber the
/// device's SMs), while [`hc_core::Plan::patch`] re-condenses only the
/// dirtied windows — so the patch/full cost ratio must *shrink* as the
/// graph grows. The largest ratio in the sweep is the number CI gates
/// with `bench_gate --max-patch-cost-ratio`.
///
/// Part 2 (serving under churn): the churn trace from the front-end
/// hammer — serves interleaved with mutations, stale-plan tolerance on —
/// against the identical trace with the mutations removed. The amortized
/// per-request simulated cost (patch cost charged to the stream) must
/// stay flat. Everything reported is simulated time and deterministic
/// counters, so the BENCH.json block is exactly comparable across runs.
pub fn churn(_cache: &mut DatasetCache, dev: &DeviceSpec) -> (String, DynamicGraphsMetrics) {
    use graph_sparse::{gen, DeltaCsr};
    use hc_core::Plan;
    use hc_serve::{Front, FrontConfig, FrontEvent, FrontRequest, Mutation, TenantId};

    // Part 1: patch cost vs. full prepare as the graph grows. Sizes are
    // absolute (not HC_SCALE-scaled): sublinearity only shows once the
    // window count clears the simulated device's SM count.
    let mut sweep = Table::new(&[
        "rows",
        "nnz",
        "windows",
        "full pre (ms)",
        "patch (ms)",
        "ratio",
    ]);
    let mut scale_points = Vec::new();
    for (i, n) in [4096usize, 8192, 16384].into_iter().enumerate() {
        let a = gen::community(n, n * 8, 64, 0.9, 40 + i as u64);
        let plan = Plan::prepare(&a, PlanSpec::hybrid(), dev);
        let delta = one_edge_churn(&a).expect("community graphs have edges and free cells");
        let patched = plan
            .patch(&a, &delta, dev)
            .expect("valid delta patches its own base");
        let p = ChurnScalePoint {
            nrows: n as u64,
            nnz: a.nnz() as u64,
            windows: a.nrows.div_ceil(16) as u64,
            full_prepare_sim_ms: plan.sim_prepare_ms(),
            patch_sim_ms: patched.sim_prepare_ms(),
            patch_ratio: patched.sim_prepare_ms() / plan.sim_prepare_ms(),
        };
        sweep.row(vec![
            p.nrows.to_string(),
            p.nnz.to_string(),
            p.windows.to_string(),
            f3(p.full_prepare_sim_ms),
            f3(p.patch_sim_ms),
            format!("{:.4}", p.patch_ratio),
        ]);
        scale_points.push(p);
    }
    let max_patch_ratio = scale_points
        .iter()
        .map(|p| p.patch_ratio)
        .fold(0.0f64, f64::max);
    let sublinear = scale_points
        .windows(2)
        .all(|w| w[1].patch_ratio < w[0].patch_ratio);

    // Part 2: serving under churn. Two structures, two mutations, four
    // epochs — the front keeps serving the stale plan while each patch
    // is built and swaps it in at the epoch barrier.
    let g0 = Arc::new(gen::erdos_renyi(1024, 6_000, 50));
    let g1 = Arc::new(gen::erdos_renyi(1024, 6_000, 51));
    let d0 = one_edge_churn(&g0).expect("generated graph churns");
    let d1 = one_edge_churn(&g1).expect("generated graph churns");
    let g0p = Arc::new(d0.apply(&g0).expect("valid delta"));
    let g1p = Arc::new(d1.apply(&g1).expect("valid delta"));

    let serve = |g: &Arc<graph_sparse::Csr>, i: usize| {
        FrontEvent::Serve(FrontRequest {
            tenant: TenantId([0, 1, 2, 3][i % 4]),
            request: Request {
                graph: Arc::clone(g),
                features: DenseMatrix::random_features(g.ncols, 32, i as u64),
            },
        })
    };
    let mutate = |base: &Arc<graph_sparse::Csr>, delta: &DeltaCsr| {
        FrontEvent::Mutate(Mutation {
            base: Arc::clone(base),
            delta: delta.clone(),
        })
    };
    // Same epoch layout as the front-hammer churn mix: warm, mutate g0,
    // mutate g1, then serve only the mutated structures.
    let churn_graphs: [&Arc<graph_sparse::Csr>; 22] = [
        &g0, &g1, &g0, &g1, &g0, &g1, // epoch 0
        &g0, &g0, &g1, &g0, &g1, // epoch 1 (mutation after first serve)
        &g0p, &g0p, &g1, &g1, &g0p, // epoch 2 (mutation mid-epoch)
        &g0p, &g1p, &g0p, &g1p, &g0p, &g1p, // epoch 3
    ];
    let mut events = Vec::new();
    let mut steady_events = Vec::new();
    for (i, &g) in churn_graphs.iter().enumerate() {
        if i == 7 {
            events.push(mutate(&g0, &d0));
        }
        if i == 14 {
            events.push(mutate(&g1, &d1));
        }
        events.push(serve(g, i));
        // The steady control serves the *base* structures throughout:
        // same arrivals, same features, no churn.
        let base = if Arc::ptr_eq(g, &g0p) || Arc::ptr_eq(g, &g0) {
            &g0
        } else {
            &g1
        };
        steady_events.push(serve(base, i));
    }

    let run = |events: &[FrontEvent]| {
        let front = Front::new(
            1 << 30,
            PlanSpec::hybrid(),
            1,
            FrontConfig {
                workers: 4, // fixed: the printed body must not depend on --threads
                queue_depth: 8,
                tenant_quota: 6,
                arrivals_per_epoch: 6,
                max_cohort: 3,
                ..Default::default()
            },
        );
        front.run_events(events, dev)
    };
    let churn_rep = run(&events);
    let steady_rep = run(&steady_events);
    let patch_total: f64 = churn_rep.mutations.iter().map(|m| m.patch_sim_ms).sum();
    // Patch cost is control-plane work; charge it to the request stream
    // anyway — the flat-cost claim must survive the honest accounting.
    let amortized_churn =
        churn_rep.amortized_sim_ms() + patch_total / churn_rep.counters.admitted as f64;
    let amortized_steady = steady_rep.amortized_sim_ms();

    let c = churn_rep.counters;
    let m = DynamicGraphsMetrics {
        scale_points,
        max_patch_ratio,
        sublinear,
        mutations: c.mutations,
        patched_plans: c.patched_plans,
        stale_served: c.stale_served,
        swaps: churn_rep.cache.swaps,
        amortized_churn_sim_ms: amortized_churn,
        amortized_steady_sim_ms: amortized_steady,
        churn_overhead_ratio: amortized_churn / amortized_steady,
    };
    let text = format!(
        "Dynamic-graph churn (extension): incremental re-planning vs full preprocessing\n{}\
         serving under churn: {} requests, {} mutations ({} patched, {} swapped in), \
         {} served stale while patches were in flight;\n\
         amortized {} ms/req with churn (patch cost charged) vs {} ms/req steady \
         — overhead ratio {:.4}\n",
        sweep.render(),
        c.submitted,
        m.mutations,
        m.patched_plans,
        m.swaps,
        m.stale_served,
        f3(m.amortized_churn_sim_ms),
        f3(m.amortized_steady_sim_ms),
        m.churn_overhead_ratio
    );
    (text, m)
}

/// VW sweep: layout quality (mean computing intensity, SpMM time) and LOA
/// cost as the candidate window grows.
pub fn vw_sensitivity(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let ds = cache.get(DatasetId::AZ);
    let dim = ds.spec.dim.min(512);
    let a = ds.adj.clone();
    let x = DenseMatrix::random_features(a.nrows, dim, 1);
    let hc = HcSpmm::default();
    let base = hc.spmm(&a, &x, dev).run.time_ms;

    let mut t = Table::new(&[
        "VW",
        "LOA ops",
        "mean intensity",
        "SpMM (us)",
        "improvement",
    ]);
    for vw in [8usize, 16, 32, 64, 128, 256] {
        let (opt, rep) = Loa { vw }.optimize(&a);
        let ms = hc.spmm(&opt, &x, dev).run.time_ms;
        t.row(vec![
            vw.to_string(),
            rep.ops.to_string(),
            f3(RowWindowPartition::build(&opt).mean_computing_intensity()),
            f3(ms * 1e3),
            format!("{:+.2}%", (base - ms) / base * 100.0),
        ]);
    }
    format!(
        "LOA vertices-window sweep on AZ (§V-B leaves VW unspecified; default {})\n{}",
        Loa::default().vw,
        t.render()
    )
}

/// Concurrent-core execution (Appendix H future work): what overlapping
/// the CUDA and Tensor streams on an SM partition would buy over the
/// paper's serialized single-stream design.
pub fn concurrent_cores(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&[
        "Dataset",
        "serialized (us)",
        "concurrent (us)",
        "potential gain",
    ]);
    for id in [DatasetId::PT, DatasetId::DD, DatasetId::GH, DatasetId::AZ] {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        // Post-LOA layouts: mixed CUDA/Tensor window populations are where
        // concurrency can help.
        let a = Loa::default().optimize(&ds.adj).0;
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let hc = HcSpmm::default();
        let pre = hc.preprocess(&a, dev);
        let serial = hc.spmm_preprocessed(&pre, &a, &x, dev).run.time_ms;
        let conc = hc.spmm_concurrent(&pre, &a, &x, dev).run.time_ms;
        t.row(vec![
            id.code().into(),
            f3(serial * 1e3),
            f3(conc * 1e3),
            format!("{:+.2}%", (serial - conc) / serial * 100.0),
        ]);
    }
    format!(
        "Concurrent hybrid execution (Appendix H future work): SM-partitioned streams\n{}",
        t.render()
    )
}

/// Memory-budgeted chunked SpMM (the §VI-C1 DP out-of-memory scenario):
/// overhead of running DP's SpMM under shrinking device-memory budgets.
pub fn oom_chunking(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    use hc_core::chunked::{resident_bytes, spmm_auto};
    let ds = cache.get(DatasetId::DP);
    let dim = ds.spec.dim.min(512);
    let a = ds.adj.clone();
    let x = DenseMatrix::random_features(a.nrows, dim, 7);
    let hc = HcSpmm::default();
    let pre = hc.preprocess(&a, dev);
    let full_bytes = resident_bytes(&a, dim);
    let base = hc.spmm_preprocessed(&pre, &a, &x, dev).run.time_ms;
    let mut t = Table::new(&["budget", "panels", "time (ms)", "overhead"]);
    for frac in [1.0f64, 0.5, 0.25, 0.125] {
        let budget = (full_bytes as f64 * frac) as u64;
        match hc.spmm_chunked(&pre, &a, &x, dev, budget) {
            Some(c) => t.row(vec![
                format!("{:.0}%", frac * 100.0),
                c.panels.to_string(),
                f3(c.run.time_ms),
                format!("{:+.2}%", (c.run.time_ms - base) / base * 100.0),
            ]),
            None => t.row(vec![
                format!("{:.0}%", frac * 100.0),
                "-".into(),
                "OOM".into(),
                "-".into(),
            ]),
        }
    }
    let _ = spmm_auto(&hc, &pre, &a, &x, dev, full_bytes);
    format!(
        "Memory-budgeted SpMM on DP (§VI-C1's OOM case): column-panel chunking\n{}",
        t.render()
    )
}

/// Selector-quality study: the trained LR model against the per-window
/// cost oracle and the fixed all-CUDA/all-Tensor policies — how much of the
/// selection headroom the §IV-C model captures.
pub fn selector_vs_oracle(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    use hc_core::preprocess_oracle;
    let mut t = Table::new(&[
        "Dataset",
        "all-CUDA",
        "all-Tensor",
        "LR model",
        "oracle",
        "model/oracle",
    ]);
    for id in [
        DatasetId::PT,
        DatasetId::DD,
        DatasetId::AZ,
        DatasetId::GH,
        DatasetId::YS,
    ] {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = Loa::default().optimize(&ds.adj).0; // deployed layout
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let hc = HcSpmm::default();
        let model_pre = hc.preprocess(&a, dev);
        let oracle_pre = preprocess_oracle(&a, dim, dev);
        let run =
            |pre: &hc_core::Preprocessed| hc.spmm_preprocessed(pre, &a, &x, dev).run.time_ms * 1e3;
        let t_model = run(&model_pre);
        let t_oracle = run(&oracle_pre);
        let t_cuda = hc_core::CudaSpmm::optimized().spmm(&a, &x, dev).run.time_ms * 1e3;
        let t_tensor = hc_core::TensorSpmm::optimized()
            .spmm(&a, &x, dev)
            .run
            .time_ms
            * 1e3;
        t.row(vec![
            id.code().into(),
            f3(t_cuda),
            f3(t_tensor),
            f3(t_model),
            f3(t_oracle),
            format!("{:.3}x", t_model / t_oracle),
        ]);
    }
    format!(
        "Selector quality (extension): trained LR vs per-window cost oracle (us, post-LOA layouts)\n{}",
        t.render()
    )
}

/// §IV-B feature ablation (footnote 7): the paper picks sparsity and
/// #non-zero columns and dismisses other factors as insignificant. We train
/// logistic-regression selectors on feature subsets — plus a third feature
/// (per-row nnz imbalance) — and compare selection accuracy.
pub fn feature_ablation(dev: &DeviceSpec) -> String {
    use graph_sparse::gen;
    use hc_core::{CudaSpmm, TensorSpmm};

    // Labeled windows with three candidate features.
    let rows = 16usize;
    let dim = 32usize;
    let cuda = CudaSpmm::optimized();
    let tensor = TensorSpmm::optimized();
    let mut samples: Vec<(Vec<f64>, f64)> = Vec::new();
    for cols in (16..=130).step_by(2) {
        for lvl in 0..8 {
            let nnz = cols + (cols * (rows - 1) - cols) * lvl / 7;
            let w = gen::training_window(rows, cols, nnz, (cols * 977 + lvl) as u64);
            let win = &graph_sparse::RowWindowPartition::build(&w).windows[0];
            // Feature 3: row-imbalance = stddev(row nnz) / mean(row nnz).
            let row_nnz: Vec<f64> = (0..rows).map(|r| w.degree(r) as f64).collect();
            let mean = row_nnz.iter().sum::<f64>() / rows as f64;
            let var = row_nnz.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / rows as f64;
            let imbalance = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };

            let bc = cuda
                .window_block_cost(win.nnz, win.nnz_cols(), rows, dim, dev)
                .warm();
            let bt = tensor
                .window_block_cost(win.nnz, win.nnz_cols(), rows, dim, dev)
                .warm();
            let label = if dev.execute(&[bc]).makespan_cycles < dev.execute(&[bt]).makespan_cycles {
                1.0
            } else {
                0.0
            };
            samples.push((
                vec![win.nnz_cols() as f64, win.sparsity(), imbalance],
                label,
            ));
        }
    }

    // Tiny generic logistic regression (standardized features, GD).
    let train_on = |keep: &[usize]| -> f64 {
        let k = keep.len();
        let n = samples.len() as f64;
        let mut means = vec![0.0; k];
        let mut stds = vec![0.0; k];
        for (f, _) in &samples {
            for (j, &i) in keep.iter().enumerate() {
                means[j] += f[i];
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        for (f, _) in &samples {
            for (j, &i) in keep.iter().enumerate() {
                stds[j] += (f[i] - means[j]).powi(2);
            }
        }
        stds.iter_mut().for_each(|s| *s = (*s / n).sqrt().max(1e-9));

        let mut w = vec![0.0f64; k];
        let mut b = 0.0f64;
        for _ in 0..40_000 {
            let mut gw = vec![0.0; k];
            let mut gb = 0.0;
            for (f, y) in &samples {
                let z: f64 = keep
                    .iter()
                    .enumerate()
                    .map(|(j, &i)| w[j] * (f[i] - means[j]) / stds[j])
                    .sum::<f64>()
                    + b;
                let p = 1.0 / (1.0 + (-z).exp());
                let d = p - y;
                for (j, &i) in keep.iter().enumerate() {
                    gw[j] += d * (f[i] - means[j]) / stds[j];
                }
                gb += d;
            }
            for j in 0..k {
                w[j] -= 2.0 * gw[j] / n;
            }
            b -= 2.0 * gb / n;
        }
        // Accuracy.
        let hits = samples
            .iter()
            .filter(|(f, y)| {
                let z: f64 = keep
                    .iter()
                    .enumerate()
                    .map(|(j, &i)| w[j] * (f[i] - means[j]) / stds[j])
                    .sum::<f64>()
                    + b;
                (z > 0.0) == (*y > 0.5)
            })
            .count();
        hits as f64 / n
    };

    let mut t = Table::new(&["features", "accuracy"]);
    for (name, keep) in [
        ("cols only", vec![0usize]),
        ("sparsity only", vec![1]),
        ("cols + sparsity (paper)", vec![0, 1]),
        ("+ row imbalance", vec![0, 1, 2]),
    ] {
        t.row(vec![
            name.into(),
            format!("{:.2}%", train_on(&keep) * 100.0),
        ]);
    }
    format!(
        "Feature ablation (§IV-B, footnote 7): selection accuracy by feature subset\n{}",
        t.render()
    )
}

/// §I claim check: "SpMM … accounting for more than 80 % of the GNN
/// training time". We decompose an unfused GCN epoch into Aggregation
/// (SpMM), Update (GEMM) and elementwise time, at the harness scale and at
/// a larger scale (the share grows with graph size because the GEMMs scale
/// with |V| while aggregation scales with |E|·locality costs).
pub fn aggregation_share(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    use gnn::aggregator::{Aggregator, HcAggregator};
    let mut t = Table::new(&["Dataset", "agg (ms)", "gemm+elem (ms)", "agg share"]);
    for id in [DatasetId::DD, DatasetId::YS, DatasetId::RD, DatasetId::TT] {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = ds.adj.gcn_normalize();
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let agg = HcAggregator::new_unfused(&a, dev);

        // The epoch's dense side, measured by running a full epoch and
        // subtracting the aggregation time.
        let labels = gnn::train::synthetic_labels(a.nrows, 22);
        let mut model = gnn::Gcn::new(dim, 32, 22, 3);
        let e = &gnn::train::Trainer {
            lr: 0.01,
            epochs: 1,
        }
        .train_gcn(&mut model, &a, &x, &labels, &agg, dev)[0];
        let total = e.forward_ms + e.backward_ms;
        // The epoch's aggregations run at mixed dims (dim, hidden, classes);
        // approximate the true aggregation share by timing them directly.
        let dims = [dim, 22, 22, 32];
        let mut true_agg = 0.0;
        for d in dims {
            let probe = DenseMatrix::random_features(a.nrows, d, 9);
            true_agg += agg.aggregate(&a, &probe, dev).1.time_ms;
        }
        let dense = (total - true_agg).max(0.0);
        t.row(vec![
            id.code().into(),
            f3(true_agg),
            f3(dense),
            format!("{:.1}%", true_agg / total * 100.0),
        ]);
    }
    format!(
        "Aggregation share of a GCN epoch (§I claims >80 % at production scale; \
the share shrinks at 1/{} scale because fixed kernel costs loom)\n{}",
        cache.scale(),
        t.render()
    )
}

/// Deeper models (the Fig. 16 discussion: "deeper models that require more
/// epochs to converge" make LOA's fixed cost more negligible): epoch time
/// vs depth for a K-layer GCN, with the LOA overhead share.
pub fn deep_models(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    use gnn::aggregator::HcAggregator;
    use gnn::optim::Adam;
    use gnn::DeepGcn;
    let ds = cache.get(DatasetId::YS);
    let dim = ds.spec.dim.min(512);
    let a = ds.adj.gcn_normalize();
    let x = DenseMatrix::random_features(a.nrows, dim, 3);
    let labels = gnn::train::synthetic_labels(a.nrows, 8);
    let loa_s = Loa::default().run(&ds.adj).seconds;
    let agg = HcAggregator::new(&a, dev);

    let mut t = Table::new(&["layers", "epoch (ms)", "LOA share of 200 epochs"]);
    for depth in [2usize, 4, 8] {
        let mut dims = vec![dim];
        dims.extend(std::iter::repeat_n(32, depth - 1));
        dims.push(8);
        let mut model = DeepGcn::new(&dims, 5);
        let mut opt = Adam::new(0.01);
        let (cache_fwd, fwd) = model.forward(&a, &x, &agg, dev);
        let (_, dl, lrun) =
            gnn::ops::softmax_cross_entropy(cache_fwd.h.last().unwrap(), &labels, dev);
        let bwd = model.backward(&a, &cache_fwd, &dl, &agg, &mut opt, dev);
        let epoch_ms = fwd.time_ms + lrun.time_ms + bwd.time_ms;
        t.row(vec![
            depth.to_string(),
            f3(epoch_ms),
            format!("{:.2}%", loa_s / (epoch_ms * 200.0 / 1e3) * 100.0),
        ]);
    }
    format!(
        "Deeper models (Fig. 16 discussion): LOA's fixed cost amortizes faster as depth grows\n{}",
        t.render()
    )
}

/// Crash-recovery cost: the churn serving trace is crashed at the last
/// point of its schedule, recovered from (snapshot, WAL) and resumed.
/// Warm recovery rebuilds the resident plans deterministically (full
/// `prepare` at a materialized root plus `patch` replay along the logged
/// lineage) instead of re-running the completed prefix — so its simulated
/// cost is compared against the cold baseline: the prepare + execution +
/// wasted time of every request the prefix had already served, plus its
/// patch work. The ratio feeds `bench_gate --max-recovery-ratio`; the
/// recovered report must be bit-identical to the uncrashed control with
/// zero double-applied deltas, both also gated.
pub fn recovery(_cache: &mut DatasetCache, dev: &DeviceSpec) -> (String, RecoveryMetrics) {
    use gpu_sim::CrashConfig;
    use graph_sparse::gen;
    use hc_serve::{
        run_to_completion, DurabilityConfig, Front, FrontConfig, FrontEvent, FrontRequest,
        Mutation, TenantId,
    };

    const EPOCH: usize = 6;

    let g0 = Arc::new(gen::erdos_renyi(1024, 6_000, 50));
    let g1 = Arc::new(gen::erdos_renyi(1024, 6_000, 51));
    let d0 = one_edge_churn(&g0).expect("generated graph churns");
    let d1 = one_edge_churn(&g1).expect("generated graph churns");
    let g0p = Arc::new(d0.apply(&g0).expect("valid delta"));
    let g1p = Arc::new(d1.apply(&g1).expect("valid delta"));

    let serve = |g: &Arc<graph_sparse::Csr>, i: usize| {
        FrontEvent::Serve(FrontRequest {
            tenant: TenantId([0, 1, 2, 3][i % 4]),
            request: Request {
                graph: Arc::clone(g),
                features: DenseMatrix::random_features(g.ncols, 64, i as u64),
            },
        })
    };
    // Eight epochs: warm, two mutation epochs, then five epochs of
    // tip-of-chain traffic — a long completed prefix for the cold
    // baseline to price.
    let mut events = Vec::new();
    for i in 0..EPOCH * 8 {
        if i == 7 {
            events.push(FrontEvent::Mutate(Mutation {
                base: Arc::clone(&g0),
                delta: d0.clone(),
            }));
        }
        if i == 14 {
            events.push(FrontEvent::Mutate(Mutation {
                base: Arc::clone(&g1),
                delta: d1.clone(),
            }));
        }
        let g = match i {
            0..=6 => [&g0, &g1][i % 2],
            7..=13 => [&g0, &g1][i % 2],
            14..=20 => [&g0p, &g1][i % 2],
            _ => [&g0p, &g1p][i % 2],
        };
        events.push(serve(g, i));
    }
    let total_epochs = events.len().div_ceil(EPOCH);

    let mk_front = || {
        Front::new(
            1 << 30,
            PlanSpec::hybrid(),
            2,
            FrontConfig {
                workers: 4, // fixed: the printed body must not depend on --threads
                queue_depth: 8,
                tenant_quota: 6,
                arrivals_per_epoch: EPOCH,
                max_cohort: 3,
                ..Default::default()
            },
        )
    };
    let scratch = |name: &str| {
        let dir = std::env::temp_dir();
        let mut wal_path = dir.clone();
        wal_path.push(format!("hc-bench-rec-{}-{}.wal", std::process::id(), name));
        let mut snapshot_path = dir;
        snapshot_path.push(format!("hc-bench-rec-{}-{}.snap", std::process::id(), name));
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&snapshot_path);
        DurabilityConfig {
            wal_path,
            snapshot_path,
            snapshot_every: 2,
        }
    };
    let cleanup = |cfg: &DurabilityConfig| {
        let _ = std::fs::remove_file(&cfg.wal_path);
        let _ = std::fs::remove_file(&cfg.snapshot_path);
    };

    let control = mk_front().run_events(&events, dev);

    // Uncrashed probe for the schedule horizon, then crash at its last
    // point — the longest completed prefix the recovery can be asked to
    // stand in for.
    let cfg = scratch("probe");
    let probe = run_to_completion(&mk_front, &cfg, &events, dev, CrashConfig::off())
        .expect("uncrashed durable run");
    cleanup(&cfg);
    let crash_points = probe.crash_points;

    let cfg = scratch("crash");
    let out = run_to_completion(
        &mk_front,
        &cfg,
        &events,
        dev,
        CrashConfig::at(crash_points - 1),
    )
    .expect("crashed run recovers");
    cleanup(&cfg);
    let rec = out
        .recoveries
        .first()
        .expect("the injected crash forces one recovery");

    let equivalent = out.report.responses == control.responses
        && out.report.counters == control.counters
        && out.report.mutations == control.mutations
        && out.report.latency == control.latency
        && out.report.tenants == control.tenants
        && out.report.cache == control.cache;

    // Cold baseline: what a restart with no durability layer pays — every
    // request the completed prefix had served, re-prepared and re-executed,
    // plus the prefix's patch work.
    let resume_epoch = rec.resume_epoch as usize;
    let cold_replay_sim_ms: f64 = control
        .responses
        .iter()
        .filter(|r| r.epoch < resume_epoch)
        .map(|r| r.prepare_sim_ms + r.exec_sim_ms + r.wasted_sim_ms)
        .sum::<f64>()
        + control
            .mutations
            .iter()
            .filter(|m| m.epoch < resume_epoch)
            .map(|m| m.patch_sim_ms)
            .sum::<f64>();
    let warm_recovery_sim_ms = rec.recovery_sim_ms;

    let m = RecoveryMetrics {
        crash_points,
        resume_epoch: rec.resume_epoch,
        total_epochs: total_epochs as u64,
        replayed_deltas: rec.reapplied_deltas,
        skipped_duplicates: rec.skipped_duplicates,
        double_applied: rec.double_applied,
        rolled_back_records: rec.rolled_back_records,
        restored_plans: rec.restored_plans,
        full_prepares: rec.full_prepares,
        patch_replays: rec.patch_replays,
        warm_recovery_sim_ms,
        cold_replay_sim_ms,
        recovery_ratio: warm_recovery_sim_ms / cold_replay_sim_ms,
        equivalent,
    };
    let text = format!(
        "Crash recovery (extension): warm restart from (snapshot, WAL) vs cold prefix replay\n\
         schedule: {} crash points over {} epochs; crashed at the last point \
         ({:?}), resumed at epoch {}\n\
         recovery: {} plans restored ({} full prepares, {} patch replays), \
         {} deltas replayed ({} duplicates skipped, {} double-applied), \
         {} records rolled back\n\
         warm {} ms vs cold {} ms (sim) — ratio {:.4}; recovered report \
         bit-identical to the uncrashed control: {}\n",
        m.crash_points,
        m.total_epochs,
        out.crashes[0],
        m.resume_epoch,
        m.restored_plans,
        m.full_prepares,
        m.patch_replays,
        m.replayed_deltas,
        m.skipped_duplicates,
        m.double_applied,
        m.rolled_back_records,
        f3(m.warm_recovery_sim_ms),
        f3(m.cold_replay_sim_ms),
        m.recovery_ratio,
        m.equivalent
    );
    (text, m)
}

/// Tile-metadata compression and tensor pipelining on dense-community
/// graphs: the condense step's occupancy-bitmap + delta-varint window
/// metadata against the pre-compression dense form (a u32 condensed index
/// per entry plus a u32 per unique column), and the double-buffered
/// tensor schedule against the synchronous one. Everything here is exact
/// bytes or simulated cycles — deterministic, so the `bench_gate`
/// `--max-plan-bytes-ratio` / `--max-prepare-cost-ratio` assertions gate
/// it with no noise margin.
pub fn tile_compress(_cache: &mut DatasetCache, dev: &DeviceSpec) -> (String, TileCompressMetrics) {
    use graph_sparse::gen;
    use hc_core::{window_preprocess_cost_with, Plan, TensorSpmm};

    let pipelined = TensorSpmm::optimized();
    let synchronous = TensorSpmm::uncompressed_unpipelined();
    let dim = 32usize;

    let mut t = Table::new(&[
        "rows",
        "windows",
        "meta KB (cmp)",
        "meta KB (dense)",
        "plan KB (cmp)",
        "plan KB (dense)",
        "prep ms (cmp)",
        "prep ms (dense)",
        "tensor Mcyc (pipe)",
        "tensor Mcyc (sync)",
    ]);
    let mut m = TileCompressMetrics {
        windows: 0,
        meta_bytes_compressed: 0,
        meta_bytes_uncompressed: 0,
        bytes_ratio: 0.0,
        plan_bytes_compressed: 0,
        plan_bytes_uncompressed: 0,
        plan_bytes_ratio: 0.0,
        prepare_sim_ms_compressed: 0.0,
        prepare_sim_ms_uncompressed: 0.0,
        prepare_cost_ratio: 0.0,
        tensor_cycles_pipelined: 0.0,
        tensor_cycles_unpipelined: 0.0,
        tensor_cycle_ratio: 0.0,
    };
    // Same absolute-size community sweep as the churn experiment: dense
    // 64-vertex communities are exactly the windows the bitmap form and
    // the Tensor-core path are built for.
    for (i, n) in [2048usize, 4096, 8192].into_iter().enumerate() {
        let a = gen::community(n, n * 8, 64, 0.9, 70 + i as u64);
        let plan = Plan::prepare(&a, PlanSpec::hybrid(), dev);
        let windows: Vec<_> = plan
            .pre
            .partition
            .windows
            .iter()
            .filter(|w| !w.is_empty())
            .collect();

        let (mut meta_cmp, mut meta_dense) = (0u64, 0u64);
        let (mut blocks_cmp, mut blocks_dense) = (Vec::new(), Vec::new());
        let (mut cyc_pipe, mut cyc_sync) = (0.0f64, 0.0f64);
        for w in &windows {
            meta_cmp += w.meta.heap_bytes() as u64;
            meta_dense += 4 * (w.nnz + w.nnz_cols()) as u64;
            if let Some(b) = window_preprocess_cost_with(w, dev, true) {
                blocks_cmp.push(b);
            }
            if let Some(b) = window_preprocess_cost_with(w, dev, false) {
                blocks_dense.push(b);
            }
            let (nnz, cols, rows) = (w.nnz, w.nnz_cols(), w.rows);
            cyc_pipe += pipelined
                .window_block_cost(nnz, cols, rows, dim, dev)
                .cycles(dev);
            cyc_sync += synchronous
                .window_block_cost(nnz, cols, rows, dim, dev)
                .cycles(dev);
        }
        // The dense-form plan differs from the compressed one only in the
        // per-window metadata heap, so its footprint is the measured
        // `approx_bytes` with that heap swapped out.
        let plan_cmp = plan.approx_bytes();
        let plan_dense = plan_cmp - meta_cmp + meta_dense;
        let prep_cmp = dev.execute(&blocks_cmp).time_ms;
        let prep_dense = dev.execute(&blocks_dense).time_ms;

        t.row(vec![
            n.to_string(),
            windows.len().to_string(),
            f3(meta_cmp as f64 / 1024.0),
            f3(meta_dense as f64 / 1024.0),
            f3(plan_cmp as f64 / 1024.0),
            f3(plan_dense as f64 / 1024.0),
            f3(prep_cmp),
            f3(prep_dense),
            f3(cyc_pipe / 1e6),
            f3(cyc_sync / 1e6),
        ]);
        m.windows += windows.len() as u64;
        m.meta_bytes_compressed += meta_cmp;
        m.meta_bytes_uncompressed += meta_dense;
        m.plan_bytes_compressed += plan_cmp;
        m.plan_bytes_uncompressed += plan_dense;
        m.prepare_sim_ms_compressed += prep_cmp;
        m.prepare_sim_ms_uncompressed += prep_dense;
        m.tensor_cycles_pipelined += cyc_pipe;
        m.tensor_cycles_unpipelined += cyc_sync;
    }
    m.bytes_ratio = m.meta_bytes_compressed as f64 / m.meta_bytes_uncompressed.max(1) as f64;
    m.plan_bytes_ratio = m.plan_bytes_compressed as f64 / m.plan_bytes_uncompressed.max(1) as f64;
    m.prepare_cost_ratio = m.prepare_sim_ms_compressed / m.prepare_sim_ms_uncompressed.max(1e-12);
    m.tensor_cycle_ratio = m.tensor_cycles_pipelined / m.tensor_cycles_unpipelined.max(1e-12);

    let text = format!(
        "Extension: compressed tile metadata + pipelined tensor path \
         (community sweep, dim {dim})\n{}\
         totals over {} windows: metadata {:.1} KB vs {:.1} KB dense \
         (ratio {:.4}); plan {:.1} KB vs {:.1} KB (ratio {:.4});\n\
         preprocessing {:.4} ms vs {:.4} ms (ratio {:.4}); tensor \
         {:.3} Mcycles pipelined vs {:.3} Mcycles synchronous (ratio {:.4})\n",
        t.render(),
        m.windows,
        m.meta_bytes_compressed as f64 / 1024.0,
        m.meta_bytes_uncompressed as f64 / 1024.0,
        m.bytes_ratio,
        m.plan_bytes_compressed as f64 / 1024.0,
        m.plan_bytes_uncompressed as f64 / 1024.0,
        m.plan_bytes_ratio,
        m.prepare_sim_ms_compressed,
        m.prepare_sim_ms_uncompressed,
        m.prepare_cost_ratio,
        m.tensor_cycles_pipelined / 1e6,
        m.tensor_cycles_unpipelined / 1e6,
        m.tensor_cycle_ratio
    );
    (text, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakeven_is_finite_where_hc_wins() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let out = dynamic_graphs(&mut cache, &dev);
        // At least one dataset must show a finite break-even (HC faster per
        // execution), supporting the amortization argument.
        let finite = out
            .lines()
            .filter(|l| !l.contains("never") && l.split_whitespace().count() == 6)
            .count();
        assert!(finite >= 1, "no finite break-even found:\n{out}");
        // Every dataset row carries the incremental-patch column, and the
        // patch must be cheaper than preprocessing from scratch.
        assert!(out.contains("HC patch (ms)"), "{out}");
    }

    #[test]
    fn churn_patch_is_sublinear_and_serving_stays_flat() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let (text, m) = churn(&mut cache, &dev);
        // Sublinearity: a fixed small delta gets relatively cheaper as
        // the graph (and its window count) grows.
        assert_eq!(m.scale_points.len(), 3, "{text}");
        assert!(m.sublinear, "patch ratio must shrink with size:\n{text}");
        assert!(
            m.max_patch_ratio < 0.5,
            "patching must beat full preprocessing everywhere:\n{text}"
        );
        for p in &m.scale_points {
            assert!(p.patch_sim_ms > 0.0 && p.patch_sim_ms < p.full_prepare_sim_ms);
        }
        // Churn serving: both mutations patched and swapped, stale-plan
        // tolerance kept requests flowing, and the amortized cost stays
        // flat even with the patch cost charged to the stream.
        assert_eq!((m.mutations, m.patched_plans, m.swaps), (2, 2, 2), "{text}");
        assert!(m.stale_served > 0, "{text}");
        assert!(
            m.churn_overhead_ratio < 1.25,
            "churn must not inflate amortized cost by >25%:\n{text}"
        );
    }

    #[test]
    fn fault_recovery_serves_every_request() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let (text, m) = fault_recovery(&mut cache, &dev);
        // The CPU-reference safety net means no request is ever dropped.
        assert_eq!(m.failed, 0, "{text}");
        assert_eq!(m.ok + m.degraded, m.requests);
        // The chosen rate must actually exercise the recovery machinery.
        assert!(m.degraded > 0, "fault schedule degraded nothing:\n{text}");
        assert!(m.wasted_sim_ms > 0.0);
        assert!(text.contains("bit-exact to fault-free run: true"), "{text}");
    }

    #[test]
    fn hot_path_reuse_is_counted_and_bit_exact() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let (text, m) = hot_path(&mut cache, &dev);
        assert!(
            text.contains("bit-exact across warm/cold passes: true"),
            "{text}"
        );
        // 4 plans x 8 requests at one (family, dim, device) key each:
        // exactly one build + one scratch allocation per plan.
        assert_eq!(m.requests, 32);
        assert_eq!((m.cost_builds, m.cost_reuses), (4, 28), "{text}");
        assert_eq!((m.scratch_allocs, m.scratch_reuses), (4, 28), "{text}");
        assert!(m.allocs_per_request <= 0.25 + 1e-12, "{text}");
        assert!(m.warm_ms > 0.0 && m.cold_ms > 0.0);
    }

    #[test]
    fn serving_load_cohorting_beats_the_uncohorted_control() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let (text, m) = serving_load(&mut cache, &dev);
        // Admission arithmetic is scale-independent: it depends only on
        // the trace shape and the front config.
        assert_eq!(m.submitted, 96, "{text}");
        assert_eq!(
            m.submitted,
            m.admitted + m.rejected_queue + m.rejected_quota
        );
        assert!(
            m.rejected_quota > 0,
            "tenant 0 must overrun its quota:\n{text}"
        );
        assert_eq!(
            m.served, m.admitted,
            "clean mix: everything admitted serves"
        );
        assert_eq!(m.tenants.len(), 4);
        let t0 = &m.tenants[0];
        assert!(t0.rejected > 0 && t0.tenant == 0);
        // The gate pair: structure-heavy mixes must cohort, and cohorting
        // must strictly beat re-preparing per request on a thrashed cache.
        assert!(
            m.cohort_rate >= 0.5,
            "cohort rate {}:\n{text}",
            m.cohort_rate
        );
        assert!(
            m.amortized_sim_ms < m.uncohorted_sim_ms,
            "amortized {} !< uncohorted {}:\n{text}",
            m.amortized_sim_ms,
            m.uncohorted_sim_ms
        );
        assert!(m.p99_sim_ms >= m.p50_sim_ms && m.p50_sim_ms > 0.0);
        assert!(
            text.contains("bit-exact to uncohorted control: true"),
            "{text}"
        );
    }

    #[test]
    fn tile_compression_pays_for_itself() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let (text, m) = tile_compress(&mut cache, &dev);
        assert!(text.contains("ratio"), "summary must render the ratios");
        assert!(m.windows > 100, "sweep too small: {} windows", m.windows);
        // The headline claims the gate enforces in CI: ≥30 % smaller
        // metadata and plan footprint, cheaper preprocessing, fewer
        // tensor cycles.
        assert!(m.bytes_ratio < 0.7, "metadata ratio {}", m.bytes_ratio);
        assert!(
            m.plan_bytes_ratio < 0.7,
            "plan bytes ratio {}",
            m.plan_bytes_ratio
        );
        assert!(
            m.prepare_cost_ratio < 1.0,
            "prepare ratio {}",
            m.prepare_cost_ratio
        );
        assert!(
            m.tensor_cycle_ratio < 1.0,
            "tensor cycle ratio {}",
            m.tensor_cycle_ratio
        );
    }

    #[test]
    fn wider_vw_costs_more_ops() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let out = vw_sensitivity(&mut cache, &dev);
        let ops: Vec<u64> = out
            .lines()
            .filter_map(|l| {
                let w: Vec<&str> = l.split_whitespace().collect();
                if w.len() == 5 && w[0].parse::<usize>().is_ok() {
                    w[1].parse().ok()
                } else {
                    None
                }
            })
            .collect();
        assert!(ops.len() >= 4);
        assert!(ops.last().unwrap() > ops.first().unwrap());
    }
}
