//! Fig. 1 (core characteristics), Table I (memory vs compute costs) and
//! Fig. 8 (row-window feature scatter).

use gpu_sim::DeviceSpec;
use graph_sparse::{gen, DatasetId, RowWindowPartition};
use hc_core::{CudaSpmm, Selector, TensorSpmm, WindowFeatures};

use crate::harness::{f3, pct, DatasetCache, Table};

/// Fig. 1: CUDA vs Tensor execution time on a synthetic 16×32 row window at
/// dense dimension 32, (a) sweeping sparsity at full column occupancy and
/// (b) sweeping the number of non-zero columns at fixed nnz.
pub fn fig01(dev: &DeviceSpec) -> String {
    let cuda = CudaSpmm::optimized();
    // Fig. 1 characterizes the plain Tensor pipeline the paper measured —
    // before HC's compressed tile metadata and cp.async pipelining existed.
    // The legacy cost configuration keeps the calibrated ~83 % crossover.
    let tensor = TensorSpmm::uncompressed_unpipelined();
    let dim = 32usize;
    let us = |cycles: f64| cycles / dev.clock_hz() * 1e6;

    let mut out = String::from("Fig. 1(a): execution time vs sparsity (16x32 window, dim 32)\n");
    let mut t = Table::new(&["sparsity", "CUDA (us)", "Tensor (us)", "winner"]);
    for k in (1..=15).rev() {
        let nnz = 32 * k;
        let w = gen::training_window(16, 32, nnz, 42);
        let win = &RowWindowPartition::build(&w).windows[0];
        let tc = dev
            .execute(&[cuda
                .window_block_cost(win.nnz, win.nnz_cols(), 16, dim, dev)
                .warm()])
            .makespan_cycles;
        let tt = dev
            .execute(&[tensor
                .window_block_cost(win.nnz, win.nnz_cols(), 16, dim, dev)
                .warm()])
            .makespan_cycles;
        t.row(vec![
            format!("{:.3}", 1.0 - nnz as f64 / 512.0),
            f3(us(tc)),
            f3(us(tt)),
            if tc < tt { "CUDA" } else { "Tensor" }.into(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nFig. 1(b): execution time vs non-zero columns (fixed nnz = 128)\n");
    let mut t = Table::new(&["nnz cols", "CUDA (us)", "Tensor (us)", "winner"]);
    for cols in [16, 32, 48, 64, 80, 96, 112, 128] {
        let nnz = 128.max(cols);
        let w = gen::training_window(16, cols, nnz, 43);
        let win = &RowWindowPartition::build(&w).windows[0];
        let tc = dev
            .execute(&[cuda
                .window_block_cost(win.nnz, win.nnz_cols(), 16, dim, dev)
                .warm()])
            .makespan_cycles;
        let tt = dev
            .execute(&[tensor
                .window_block_cost(win.nnz, win.nnz_cols(), 16, dim, dev)
                .warm()])
            .makespan_cycles;
        t.row(vec![
            cols.to_string(),
            f3(us(tc)),
            f3(us(tt)),
            if tc < tt { "CUDA" } else { "Tensor" }.into(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table I: per-dataset memory-access vs computing cost for each core type
/// (units: 10⁻² ms, like the paper).
pub fn table01(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let cuda = CudaSpmm::optimized();
    // Like Fig. 1, Table I is a paper measurement of the plain kernels.
    let tensor = TensorSpmm::uncompressed_unpipelined();
    let mut t = Table::new(&["Dataset", "C-m", "C-c", "m/c(C)", "T-m", "T-c", "m/c(T)"]);
    for id in [DatasetId::DD, DatasetId::YS, DatasetId::RD] {
        let ds = cache.get(id);
        let dim = 32usize;
        let part = RowWindowPartition::build(&ds.adj);
        let (mut cm, mut cc, mut tm, mut tc) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for w in part.windows.iter().filter(|w| !w.is_empty()) {
            // Table I is also measured with the repeated-execution (warm)
            // protocol; see `BlockCost::warm`.
            let b = cuda
                .window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev)
                .warm();
            cm += b.memory_cycles(dev);
            cc += b.compute_cycles(dev);
            let b = tensor
                .window_block_cost(w.nnz, w.nnz_cols(), w.rows, dim, dev)
                .warm();
            tm += b.memory_cycles(dev);
            tc += b.compute_cycles(dev);
        }
        // Aggregate SM-cycles → device time (cycles spread over all SMs),
        // reported in 10⁻² ms.
        let to_unit = |cycles: f64| cycles / dev.num_sms as f64 / dev.clock_hz() * 1e3 / 1e-2;
        t.row(vec![
            id.code().into(),
            f3(to_unit(cm)),
            f3(to_unit(cc)),
            f3(cm / cc),
            f3(to_unit(tm)),
            f3(to_unit(tc)),
            f3(tm / tc),
        ]);
    }
    t.render()
}

/// Fig. 8: distribution of row-window features on PT and GH, with the share
/// the logistic model deems Tensor-suited (the paper reports 15 % and 22 %).
pub fn fig08(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let _ = dev;
    let sel = Selector::DEFAULT;
    let mut out = String::new();
    for id in [DatasetId::PT, DatasetId::GH] {
        let ds = cache.get(id);
        let part = RowWindowPartition::build(&ds.adj);
        // Histogram over sparsity deciles with mean nnz-col per bin.
        let mut bins = [(0usize, 0.0f64); 10];
        let mut tensor_suited = 0usize;
        let mut live = 0usize;
        for w in part.windows.iter().filter(|w| !w.is_empty()) {
            let f = WindowFeatures::of(w);
            let b = ((f.sparsity * 10.0) as usize).min(9);
            bins[b].0 += 1;
            bins[b].1 += f.nnz_cols;
            live += 1;
            if sel.choose(&f) == hc_core::CoreChoice::Tensor {
                tensor_suited += 1;
            }
        }
        out.push_str(&format!(
            "Fig. 8 [{}]: {} windows, {} Tensor-suited\n",
            id.code(),
            live,
            pct(tensor_suited as f64 / live.max(1) as f64)
        ));
        let mut t = Table::new(&["sparsity bin", "#windows", "mean nnz cols"]);
        for (i, (n, cols)) in bins.iter().enumerate() {
            t.row(vec![
                format!("{:.1}-{:.1}", i as f64 / 10.0, (i + 1) as f64 / 10.0),
                n.to_string(),
                if *n > 0 {
                    f3(cols / *n as f64)
                } else {
                    "-".into()
                },
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(&format!(
        "LR boundary: {:.4}*cols + {:.4}*sparsity + {:.4} = 0 (positive => CUDA)\n",
        sel.w1, sel.w2, sel.b
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_shows_crossover_near_83_percent() {
        // The load-bearing calibration check: the paper measures the CUDA
        // curve crossing the flat Tensor curve at ~83 % sparsity.
        let dev = DeviceSpec::rtx3090();
        let s = fig01(&dev);
        let lines: Vec<&str> = s
            .lines()
            .skip_while(|l| !l.starts_with("Fig. 1(a)"))
            .take_while(|l| !l.starts_with("Fig. 1(b)"))
            .filter(|l| l.contains("0."))
            .collect();
        // Rows are printed sparsity-ascending, so the flip is
        // Tensor → CUDA; the crossover is between the two rows.
        let mut crossover = None;
        for pair in lines.windows(2) {
            if pair[0].ends_with("Tensor") && pair[1].ends_with("CUDA") {
                let lo: f64 = pair[0].split_whitespace().next().unwrap().parse().unwrap();
                let hi: f64 = pair[1].split_whitespace().next().unwrap().parse().unwrap();
                crossover = Some((lo + hi) / 2.0);
            }
        }
        let c = crossover.expect("no crossover found");
        assert!(
            (0.72..=0.90).contains(&c),
            "crossover at {c}, expected near 0.83"
        );
    }

    #[test]
    fn fig01b_tensor_grows_cuda_flat() {
        let dev = DeviceSpec::rtx3090();
        let s = fig01(&dev);
        let rows: Vec<(f64, f64)> = s
            .lines()
            .skip_while(|l| !l.starts_with("Fig. 1(b)"))
            .filter_map(|l| {
                let w: Vec<&str> = l.split_whitespace().collect();
                if w.len() == 4 && w[0].parse::<usize>().is_ok() {
                    Some((w[1].parse().unwrap(), w[2].parse().unwrap()))
                } else {
                    None
                }
            })
            .collect();
        assert!(rows.len() >= 6);
        let (c_first, t_first) = rows[1]; // skip cols=16 (nnz floor kicks in)
        let (c_last, t_last) = *rows.last().unwrap();
        let tensor_growth = t_last / t_first;
        let cuda_growth = c_last / c_first;
        // The paper's claim is *relative*: Tensor-core cost climbs with the
        // column count while CUDA-core cost stays comparatively flat.
        assert!(
            tensor_growth > 1.8,
            "tensor should grow with cols: {t_first} → {t_last}"
        );
        assert!(
            tensor_growth > 1.5 * cuda_growth,
            "tensor must grow much faster than cuda: {tensor_growth} vs {cuda_growth}"
        );
    }
}
