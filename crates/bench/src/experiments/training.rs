//! Figs. 11–13 / Tables VIII–IX (GNN training), Table VI (kernel fusion)
//! and Table XII (memory usage).

use gnn::aggregator::{Aggregator, HcAggregator, KernelAggregator};
use gnn::gin::gin_propagation;
use gnn::memory::{training_memory_bytes, Framework};
use gnn::train::{mean_timing, synthetic_labels, Trainer};
use gnn::{Gcn, Gin};
use gpu_sim::DeviceSpec;
use graph_sparse::{DatasetId, DenseMatrix};
use hc_core::fusion::{fused_agg_update, unfused_agg_update};
use hc_core::HcSpmm;

use crate::harness::{f3, DatasetCache, Table};

/// Hidden width used by the end-to-end models.
const HIDDEN: usize = 32;
/// Output classes (Table II: "we uniformly use 22").
const CLASSES: usize = 22;

/// Fig. 11 + Fig. 12 (and Table VIII's absolute numbers): GCN forward and
/// backward epoch time per framework, in ms.
pub fn fig11_12_gcn(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&[
        "Dataset",
        "phase",
        "GE-SpMM",
        "TC-GNN",
        "HC-SpMM",
        "HC speedup vs GE",
    ]);
    for id in DatasetId::SPMM_SET {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = ds.adj.gcn_normalize();
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let labels = synthetic_labels(a.nrows, CLASSES);
        let tr = Trainer {
            lr: 0.01,
            epochs: 1,
        };

        let run = |agg: &dyn Aggregator| {
            let mut m = Gcn::new(dim, HIDDEN, CLASSES, 3);
            mean_timing(&tr.train_gcn(&mut m, &a, &x, &labels, agg, dev))
        };
        let hc = run(&HcAggregator::new(&a, dev));
        let ge = run(&KernelAggregator::new(baselines::GeSpmm));
        let tc = run(&KernelAggregator::new(baselines::TcGnnSpmm::default()));

        t.row(vec![
            id.code().into(),
            "Forward".into(),
            f3(ge.forward_ms),
            f3(tc.forward_ms),
            f3(hc.forward_ms),
            format!("{:.2}x", ge.forward_ms / hc.forward_ms),
        ]);
        t.row(vec![
            id.code().into(),
            "Backward".into(),
            f3(ge.backward_ms),
            f3(tc.backward_ms),
            f3(hc.backward_ms),
            format!("{:.2}x", ge.backward_ms / hc.backward_ms),
        ]);
    }
    format!(
        "Figs. 11/12 + Table VIII: GCN average epoch time (ms)\n{}",
        t.render()
    )
}

/// Fig. 13 (and Table IX): GIN forward/backward on the five large datasets.
pub fn fig13_gin(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&[
        "Dataset",
        "phase",
        "GE-SpMM",
        "TC-GNN",
        "HC-SpMM",
        "HC speedup vs GE",
    ]);
    for id in DatasetId::ABLATION_SET {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let s = gin_propagation(&ds.adj, 0.1);
        let x = DenseMatrix::random_features(s.nrows, dim, id as u64);
        let labels = synthetic_labels(s.nrows, CLASSES);
        let tr = Trainer {
            lr: 0.01,
            epochs: 1,
        };

        let run = |agg: &dyn Aggregator| {
            let mut m = Gin::new(dim, HIDDEN, CLASSES, 5);
            mean_timing(&tr.train_gin(&mut m, &s, &x, &labels, agg, dev))
        };
        let hc = run(&HcAggregator::new(&s, dev));
        let ge = run(&KernelAggregator::new(baselines::GeSpmm));
        let tc = run(&KernelAggregator::new(baselines::TcGnnSpmm::default()));

        t.row(vec![
            id.code().into(),
            "Forward".into(),
            f3(ge.forward_ms),
            f3(tc.forward_ms),
            f3(hc.forward_ms),
            format!("{:.2}x", ge.forward_ms / hc.forward_ms),
        ]);
        t.row(vec![
            id.code().into(),
            "Backward".into(),
            f3(ge.backward_ms),
            f3(tc.backward_ms),
            f3(hc.backward_ms),
            format!("{:.2}x", ge.backward_ms / hc.backward_ms),
        ]);
    }
    format!(
        "Fig. 13 + Table IX: GIN average epoch time (ms)\n{}",
        t.render()
    )
}

/// Table VI: a single backward GNN layer (Aggregation+Update) with and
/// without kernel fusion.
pub fn table06(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&["Dataset", "Fusing kernel", "No optimization", "Speedup"]);
    for id in DatasetId::ABLATION_SET {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = ds.adj.gcn_normalize();
        let g = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let w = DenseMatrix::random_features(dim, HIDDEN, 7);
        let hc = HcSpmm::default();
        let pre = hc.preprocess(&a, dev);
        let tf = fused_agg_update(&hc, &pre, &a, &g, &w, dev).run.time_ms;
        let tu = unfused_agg_update(&hc, &pre, &a, &g, &w, dev).run.time_ms;
        t.row(vec![
            id.code().into(),
            format!("{}ms", f3(tf)),
            format!("{}ms", f3(tu)),
            format!("{:.2}%", (tu - tf) / tf * 100.0),
        ]);
    }
    format!("Table VI: effectiveness of kernel fusion\n{}", t.render())
}

/// Table XII: modeled training memory (MB) per framework.
pub fn table12(cache: &mut DatasetCache) -> String {
    let mut t = Table::new(&["Dataset", "GE-SpMM", "TC-GNN", "HC-SpMM", "HC/GE"]);
    for id in DatasetId::ABLATION_SET {
        let ds = cache.get(id);
        let dim = ds.spec.dim;
        let mb = |fw| training_memory_bytes(fw, &ds.adj, dim, HIDDEN, CLASSES) as f64 / 1e6;
        let ge = mb(Framework::GeSpmm);
        let tc = mb(Framework::TcGnn);
        let hc = mb(Framework::HcSpmm);
        t.row(vec![
            id.code().into(),
            format!("{ge:.0}"),
            format!("{tc:.0}"),
            format!("{hc:.0}"),
            format!("{:.2}%", (hc / ge - 1.0) * 100.0),
        ]);
    }
    format!(
        "Table XII: memory usage (MB, at harness scale)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> DatasetCache {
        DatasetCache::with_scale(512)
    }

    #[test]
    fn fusion_speedups_positive_everywhere() {
        let mut cache = small_cache();
        let dev = DeviceSpec::rtx3090();
        let out = table06(&mut cache, &dev);
        for l in out.lines().filter(|l| l.ends_with('%')) {
            let v: f64 = l
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(v > 0.0, "fusion must help:\n{out}");
        }
    }

    #[test]
    fn memory_table_orders_frameworks() {
        let mut cache = small_cache();
        let out = table12(&mut cache);
        for l in out.lines().skip(3).filter(|l| l.contains('%')) {
            let w: Vec<&str> = l.split_whitespace().collect();
            let ge: f64 = w[1].parse().unwrap();
            let tc: f64 = w[2].parse().unwrap();
            let hc: f64 = w[3].parse().unwrap();
            assert!(tc <= ge && ge <= hc, "ordering broken: {l}");
        }
    }
}
