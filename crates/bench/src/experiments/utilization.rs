//! Tables XIII–XV: Tensor-core utilization, per-core execution time, and
//! compute/memory throughput.

use baselines::{DtcSpmm, GeSpmm, SputnikSpmm, TcGnnSpmm};
use gpu_sim::DeviceSpec;
use graph_sparse::{Csr, DatasetId, DenseMatrix};
use hc_core::{HcSpmm, Loa, SpmmKernel};

use crate::harness::{f3, DatasetCache, Table};

/// The deployed HC-SpMM pipeline applies LOA before long training runs
/// (§VI-C3), so utilization is measured on the optimized layout.
fn loa_layout(cache: &mut DatasetCache, id: DatasetId) -> Csr {
    let ds = cache.get(id);
    Loa::default().optimize(&ds.adj).0
}

/// Table XIII: Tensor-core utilization (%) for the Tensor-using kernels.
pub fn table13(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&["Dataset", "DTC-SpMM", "TC-GNN", "HC-SpMM"]);
    for id in DatasetId::ABLATION_SET {
        let a = loa_layout(cache, id);
        let dim = cache.get(id).spec.dim.min(512);
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let util = |k: &dyn SpmmKernel| {
            let r = k.spmm(&a, &x, dev);
            f3(r.run.profile.tensor_core_utilization(dev, r.run.time_ms))
        };
        t.row(vec![
            id.code().into(),
            util(&DtcSpmm::default()),
            util(&TcGnnSpmm::default()),
            util(&HcSpmm::default()),
        ]);
    }
    format!("Table XIII: Tensor cores' utilization (%)\n{}", t.render())
}

/// Table XIV: execution time (ms) split by core type within HC-SpMM.
pub fn table14(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&["GPU cores", "YS", "OC", "YH", "RD", "TT"]);
    let mut cuda_row = vec!["CUDA cores".to_string()];
    let mut tensor_row = vec!["Tensor cores".to_string()];
    for id in DatasetId::ABLATION_SET {
        let a = loa_layout(cache, id);
        let dim = cache.get(id).spec.dim.min(512);
        let hc = HcSpmm::default();
        let pre = hc.preprocess(&a, dev);
        let (tc, tt) = hc.per_core_time(&pre, dim, dev);
        cuda_row.push(f3(tc));
        tensor_row.push(f3(tt));
    }
    t.row(cuda_row);
    t.row(tensor_row);
    format!("Table XIV: per-core execution time (ms)\n{}", t.render())
}

/// Table XV: compute and memory throughput (%) for all kernels.
pub fn table15(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(TcGnnSpmm::default()),
        Box::new(SputnikSpmm),
        Box::new(GeSpmm),
        Box::new(DtcSpmm::default()),
        Box::new(HcSpmm::default()),
    ];
    let mut t = Table::new(&["Type", "Method", "YS", "OC", "YH", "RD", "TT"]);
    for metric in ["Computing", "Memory"] {
        for k in &kernels {
            let mut row = vec![metric.to_string(), k.name().to_string()];
            for id in DatasetId::ABLATION_SET {
                let ds = cache.get(id);
                let x = DenseMatrix::random_features(ds.adj.nrows, ds.spec.dim.min(512), id as u64);
                let r = k.spmm(&ds.adj, &x, dev);
                let v = if metric == "Computing" {
                    r.run.profile.compute_throughput(dev, r.run.time_ms)
                } else {
                    r.run.profile.memory_throughput(dev, r.run.time_ms)
                };
                row.push(f3(v));
            }
            t.row(row);
        }
    }
    format!(
        "Table XV: computing and memory throughput (%)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hc_has_highest_memory_throughput() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let out = table15(&mut cache, &dev);
        // Parse the Memory block: HC-SpMM row must dominate each column.
        let mem: Vec<Vec<f64>> = out
            .lines()
            .filter(|l| l.trim_start().starts_with("Memory"))
            .map(|l| {
                l.split_whitespace()
                    .filter_map(|w| w.parse().ok())
                    .collect()
            })
            .collect();
        assert_eq!(mem.len(), 5);
        let hc = mem.last().unwrap();
        for row in mem.iter().take(4) {
            for (h, r) in hc.iter().zip(row) {
                assert!(h >= &(r * 0.7), "HC memory throughput unexpectedly low");
            }
        }
    }
}
