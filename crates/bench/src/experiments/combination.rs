//! §IV-A ablation: row-window hybrid unit vs the straightforward per-tile
//! strategy (Fig. 4a vs Fig. 4b). Not a numbered table in the paper — the
//! text reports only "overhead up to 31 %" (footnote 4) — but the argument
//! drives the central design choice, so we regenerate the measurement.

use gpu_sim::DeviceSpec;
use graph_sparse::{DatasetId, DenseMatrix};
use hc_core::{HcSpmm, Loa, SpmmKernel, StraightforwardHybrid};

use crate::harness::{f3, DatasetCache, Table};

/// Compare the two combination strategies across the ablation datasets, on
/// LOA-optimized layouts (the deployed configuration): mixed dense/sparse
/// tiles inside a window are exactly where the per-tile strategy pays its
/// merging overhead.
pub fn run(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&[
        "Dataset",
        "row window (us)",
        "per-tile (us)",
        "per-tile overhead",
    ]);
    // PT/DD/GH/AZ have the wide mixed windows (dense molecule head, sparse
    // bond tail) where per-tile dispatch must merge results; the
    // low-degree star datasets have single-tile windows and nothing to
    // merge.
    for id in [DatasetId::PT, DatasetId::DD, DatasetId::GH, DatasetId::AZ] {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = Loa::default().optimize(&ds.adj).0;
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let rw = HcSpmm::default().spmm(&a, &x, dev).run.time_ms;
        let pt = StraightforwardHybrid::default()
            .spmm(&a, &x, dev)
            .run
            .time_ms;
        t.row(vec![
            id.code().into(),
            f3(rw * 1e3),
            f3(pt * 1e3),
            format!("{:+.2}%", (pt - rw) / rw * 100.0),
        ]);
    }
    format!(
        "Combination-strategy ablation (§IV-A): row-window unit vs per-16x8-tile hybrid\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tile_strategy_is_never_better() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let out = run(&mut cache, &dev);
        for l in out.lines().filter(|l| l.contains('%')) {
            let v: f64 = l
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(v >= -2.0, "per-tile should not win: {out}");
        }
    }
}
