//! Figs. 14–16: the LOA layout-optimization experiments.

use gnn::aggregator::HcAggregator;
use gnn::train::{mean_timing, synthetic_labels, Trainer};
use gnn::Gcn;
use gpu_sim::DeviceSpec;
use graph_sparse::{DatasetId, DenseMatrix};
use hc_core::{HcSpmm, Loa, SpmmKernel};

use crate::harness::{bar_chart, f3, DatasetCache, Table};

/// Datasets Fig. 14 evaluates (all SpMM datasets except DP, which OOMs the
/// paper's GNN runs; GH is kept to show the ≈0 case).
const LOA_SET: [DatasetId; 12] = [
    DatasetId::CS,
    DatasetId::CR,
    DatasetId::PM,
    DatasetId::PT,
    DatasetId::DD,
    DatasetId::AZ,
    DatasetId::YS,
    DatasetId::OC,
    DatasetId::GH,
    DatasetId::YH,
    DatasetId::RD,
    DatasetId::TT,
];

/// Fig. 14: SpMM time before vs after LOA, and the improvement.
pub fn fig14(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&["Dataset", "before(us)", "after(us)", "improvement"]);
    let mut bars = Vec::new();
    for id in LOA_SET {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = ds.adj.clone();
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let hc = HcSpmm::default();
        let before = hc.spmm(&a, &x, dev).run.time_ms;
        let (opt, _) = Loa::default().optimize(&a);
        let after = hc.spmm(&opt, &x, dev).run.time_ms;
        let imp = (before - after) / before * 100.0;
        t.row(vec![
            id.code().into(),
            f3(before * 1e3),
            f3(after * 1e3),
            format!("{imp:.2}%"),
        ]);
        bars.push((id.code().to_string(), imp.max(0.0)));
    }
    format!(
        "Fig. 14: improvement of layout optimization (SpMM time)\n{}\nimprovement (%):\n{}",
        t.render(),
        bar_chart(&bars, 40)
    )
}

/// Fig. 15: row windows per core type before and after LOA.
pub fn fig15(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&[
        "Dataset",
        "CUDA before",
        "Tensor before",
        "CUDA after",
        "Tensor after",
    ]);
    for id in LOA_SET {
        let ds = cache.get(id);
        let a = ds.adj.clone();
        let hc = HcSpmm::default();
        let (cb, tb) = hc.preprocess(&a, dev).window_split();
        let (opt, _) = Loa::default().optimize(&a);
        let (ca, ta) = hc.preprocess(&opt, dev).window_split();
        t.row(vec![
            id.code().into(),
            cb.to_string(),
            tb.to_string(),
            ca.to_string(),
            ta.to_string(),
        ]);
    }
    format!(
        "Fig. 15: row windows suitable for each core type\n{}",
        t.render()
    )
}

/// Fig. 16: LOA preprocessing overhead vs 200-epoch GCN training time.
pub fn fig16(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    const EPOCHS: f64 = 200.0;
    let mut t = Table::new(&[
        "Dataset",
        "LOA (s)",
        "200-epoch train (s)",
        "overhead",
        "LOA benefit",
    ]);
    for id in LOA_SET {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = ds.adj.gcn_normalize();
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let labels = synthetic_labels(a.nrows, 8);
        let mut model = Gcn::new(dim, 32, 8, 3);
        let agg = HcAggregator::new(&a, dev);
        let tr = Trainer {
            lr: 0.01,
            epochs: 1,
        };
        let epoch = mean_timing(&tr.train_gcn(&mut model, &a, &x, &labels, &agg, dev));
        let train_s = (epoch.forward_ms + epoch.backward_ms) * EPOCHS / 1e3;
        let rep = Loa::default().run(&ds.adj);
        // Benefit: SpMM-time saving from Fig. 14 applied to the aggregation
        // share of training (reported for context).
        let hc = HcSpmm::default();
        let before = hc.spmm(&ds.adj, &x, dev).run.time_ms;
        let opt = ds.adj.permute_symmetric(&rep.perm);
        let after = hc.spmm(&opt, &x, dev).run.time_ms;
        t.row(vec![
            id.code().into(),
            f3(rep.seconds),
            f3(train_s),
            format!("{:.2}%", rep.seconds / train_s * 100.0),
            format!("{:.2}%", (before - after) / before * 100.0),
        ]);
    }
    format!(
        "Fig. 16: LOA overhead relative to 200-epoch GCN training\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loa_helps_scattered_datasets_most() {
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let out = fig14(&mut cache, &dev);
        let find = |code: &str| -> f64 {
            out.lines()
                .find(|l| l.trim_start().starts_with(code))
                .unwrap()
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        // AZ (scattered) must improve more than GH (mesh, already good).
        let az = find("AZ");
        let gh = find("GH");
        assert!(az > gh, "AZ ({az}%) should improve more than GH ({gh}%)");
    }
}
