//! One module per evaluation experiment. Every `run` function returns the
//! formatted table(s) it regenerates; binaries print them.

pub mod ablations;
pub mod characterization;
pub mod combination;
pub mod extensions;
pub mod loa_exp;
pub mod selector_exp;
pub mod sensitivity;
pub mod spmm;
pub mod training;
pub mod utilization;
