//! The §IV-C selector-training pipeline as a reproducible experiment:
//! regenerates the hard-coded coefficients and reports accuracy.

use gpu_sim::{DeviceKind, DeviceSpec};
use hc_core::selector::{generate_training_set, Selector};

use crate::harness::{f3, pct, Table};

/// Run the 4-step pipeline on every GPU preset and report coefficients +
/// accuracy (the Appendix A claim: "the performance of the logistic
/// regression model is stable on different types of GPUs").
pub fn run() -> String {
    let mut t = Table::new(&["GPU", "w1", "w2", "b", "train acc", "DEFAULT acc"]);
    for kind in DeviceKind::ALL {
        let dev = DeviceSpec::new(kind);
        // Generate the deterministic training grid once per device and
        // share it between training and the DEFAULT-accuracy column
        // (previously it was generated twice with identical contents).
        let set = generate_training_set(&dev, 8);
        let m = Selector::train(&set);
        let acc = m.accuracy(&set);
        let default_acc = Selector::DEFAULT.accuracy(&set);
        t.row(vec![
            kind.name().into(),
            format!("{:.6}", m.w1),
            format!("{:.6}", m.w2),
            format!("{:.6}", m.b),
            pct(acc),
            pct(default_acc),
        ]);
    }
    format!(
        "Selector training pipeline (§IV-C); hard-coded DEFAULT = ({}, {}, {})\n{}",
        f3(Selector::DEFAULT.w1),
        f3(Selector::DEFAULT.w2),
        f3(Selector::DEFAULT.b),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_transfers_across_gpus() {
        // The RTX 3090-trained coefficients should stay >85 % accurate on
        // the other presets (the paper retrains per architecture but finds
        // stability).
        for kind in DeviceKind::ALL {
            let dev = DeviceSpec::new(kind);
            let set = generate_training_set(&dev, 4);
            let acc = Selector::DEFAULT.accuracy(&set);
            assert!(acc > 0.85, "{kind:?}: default model accuracy {acc}");
        }
    }
}
