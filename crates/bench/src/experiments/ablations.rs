//! Tables III–V: ablations of the §IV-D kernel optimizations.

use gpu_sim::DeviceSpec;
use graph_sparse::{DatasetId, DenseMatrix};
use hc_core::{CudaSpmm, SpmmKernel, TensorSpmm};

use crate::harness::{f3, DatasetCache, Table};

/// Table III: the generalization technique on datasets with unaligned
/// embedding dimensions.
pub fn table03(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&["Dataset", "Generalization", "No optimization", "Speedup"]);
    // DD (89), YS (74), OC (66), YH (75) — the paper's unaligned-dim picks.
    for id in [DatasetId::DD, DatasetId::YS, DatasetId::OC, DatasetId::YH] {
        let ds = cache.get(id);
        let dim = ds.spec.dim;
        assert_ne!(dim % 32, 0, "table III needs unaligned dims");
        let x = DenseMatrix::random_features(ds.adj.nrows, dim, id as u64);
        let a = ds.adj.clone();
        let opt = CudaSpmm::optimized();
        let plain = CudaSpmm {
            generalized: false,
            ..CudaSpmm::default()
        };
        let to = opt.spmm(&a, &x, dev).run.time_ms;
        let tp = plain.spmm(&a, &x, dev).run.time_ms;
        t.row(vec![
            id.code().into(),
            format!("{}ms", f3(to)),
            format!("{}ms", f3(tp)),
            format!("{:.1}%", (tp - to) / to * 100.0),
        ]);
    }
    format!("Table III: effectiveness of generalization\n{}", t.render())
}

/// Table IV: shared-memory CSR staging on the five large datasets.
pub fn table04(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&["Dataset", "Shared memory", "No optimization", "Speedup"]);
    for id in DatasetId::ABLATION_SET {
        let ds = cache.get(id);
        let x = DenseMatrix::random_features(ds.adj.nrows, 32, id as u64);
        let a = ds.adj.clone();
        let with = CudaSpmm::optimized();
        let without = CudaSpmm {
            shared_mem_edges: false,
            ..CudaSpmm::default()
        };
        let tw = with.spmm(&a, &x, dev).run.time_ms;
        let to = without.spmm(&a, &x, dev).run.time_ms;
        t.row(vec![
            id.code().into(),
            format!("{}ms", f3(tw)),
            format!("{}ms", f3(to)),
            format!("{:.2}%", (to - tw) / tw * 100.0),
        ]);
    }
    format!(
        "Table IV: effectiveness of shared-memory staging\n{}",
        t.render()
    )
}

/// Table V: the Tensor-core data-loading strategy (only Tensor-core
/// calculation time, like the paper).
pub fn table05(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&["Dataset", "Opt. data loading", "No optimization", "Speedup"]);
    for id in DatasetId::ABLATION_SET {
        let ds = cache.get(id);
        let x = DenseMatrix::random_features(ds.adj.nrows, 32, id as u64);
        let a = ds.adj.clone();
        let to = TensorSpmm::optimized().spmm(&a, &x, dev).run.time_ms;
        let tp = TensorSpmm::unoptimized().spmm(&a, &x, dev).run.time_ms;
        t.row(vec![
            id.code().into(),
            format!("{}ms", f3(to)),
            format!("{}ms", f3(tp)),
            format!("{:.2}%", (tp - to) / to * 100.0),
        ]);
    }
    format!(
        "Table V: effectiveness of the data-loading strategy\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> DatasetCache {
        DatasetCache::with_scale(512)
    }

    fn speedups(out: &str) -> Vec<f64> {
        out.lines()
            .filter(|l| l.ends_with('%'))
            .map(|l| {
                l.split_whitespace()
                    .last()
                    .unwrap()
                    .trim_end_matches('%')
                    .parse()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn all_ablations_show_positive_speedups() {
        let mut cache = small_cache();
        let dev = DeviceSpec::rtx3090();
        for out in [
            table03(&mut cache, &dev),
            table04(&mut cache, &dev),
            table05(&mut cache, &dev),
        ] {
            let s = speedups(&out);
            assert!(!s.is_empty());
            for v in s {
                assert!(v > 0.0, "ablation should help:\n{out}");
            }
        }
    }

    #[test]
    fn data_loading_speedup_larger_than_shared_memory() {
        // The paper: data loading ≈17.5 %, shared memory ≈2.85 %.
        let mut cache = small_cache();
        let dev = DeviceSpec::rtx3090();
        let s4: f64 = speedups(&table04(&mut cache, &dev)).iter().sum();
        let s5: f64 = speedups(&table05(&mut cache, &dev)).iter().sum();
        assert!(s5 > s4, "loading ablation should dominate: {s5} vs {s4}");
    }
}
