//! Fig. 17: sensitivity of SpMM performance to the logistic-regression
//! parameters (Appendix E).

use gpu_sim::DeviceSpec;
use graph_sparse::{DatasetId, DenseMatrix};
use hc_core::{HcSpmm, Selector, SpmmKernel};

use crate::harness::{DatasetCache, Table};

/// Sweep each model parameter ±50 % on YH and RD and report the SpMM-time
/// change relative to the default model.
pub fn fig17(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut out = String::from("Fig. 17: sensitivity of performance to LR parameters\n");
    for id in [DatasetId::YH, DatasetId::RD] {
        let ds = cache.get(id);
        let dim = ds.spec.dim.min(512);
        let a = ds.adj.clone();
        let x = DenseMatrix::random_features(a.nrows, dim, id as u64);
        let base_time = HcSpmm::default().spmm(&a, &x, dev).run.time_ms;
        let mut t = Table::new(&["param", "-50%", "-25%", "+25%", "+50%"]);
        for (name, pick) in [("w1", 0usize), ("w2", 1), ("b", 2)] {
            let mut row = vec![name.to_string()];
            for delta in [-0.5, -0.25, 0.25, 0.5] {
                let mut s = Selector::DEFAULT;
                match pick {
                    0 => s.w1 *= 1.0 + delta,
                    1 => s.w2 *= 1.0 + delta,
                    _ => s.b *= 1.0 + delta,
                }
                let hc = HcSpmm {
                    selector: s,
                    ..HcSpmm::default()
                };
                let tms = hc.spmm(&a, &x, dev).run.time_ms;
                row.push(format!("{:+.2}%", (tms - base_time) / base_time * 100.0));
            }
            t.row(row);
        }
        out.push_str(&format!(
            "[{}] relative SpMM time change:\n{}",
            id.code(),
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbations_never_speed_things_up_much() {
        // The default model is (near-)optimal: perturbing it should not
        // improve performance beyond noise.
        let mut cache = DatasetCache::with_scale(512);
        let dev = DeviceSpec::rtx3090();
        let out = fig17(&mut cache, &dev);
        // Only data cells carry an explicit sign prefix ("+x%"/"-x%"
        // with a decimal point); header labels like "-50%" do not.
        for tok in out
            .split_whitespace()
            .filter(|t| t.ends_with('%') && t.contains('.'))
        {
            if let Ok(v) = tok.trim_end_matches('%').parse::<f64>() {
                assert!(v > -8.0, "perturbed model suspiciously faster: {v}%\n{out}");
            }
        }
    }
}
