//! Fig. 10 (SpMM kernel comparison), Table X (sparsity sweep), Table XVI
//! (GPU architectures), Table VII (FP types) and Table XI (preprocessing).

use baselines::{
    cpu_spmm_time_ms, CusparseSpmm, DtcSpmm, GeSpmm, SputnikHalfSpmm, SputnikSpmm, TcGnnSpmm,
    TileCsrSpmm,
};
use gpu_sim::{DeviceKind, DeviceSpec, Precision};
use graph_sparse::{gen, DatasetId, DenseMatrix};
use hc_core::{HcSpmm, SpmmKernel};

use crate::harness::{bar_chart, f3, geomean, DatasetCache, Table};

/// Per-dataset feature matrix with the Table II dimension.
fn features_for(cache: &mut DatasetCache, id: DatasetId) -> DenseMatrix {
    let ds = cache.get(id);
    DenseMatrix::random_features(ds.adj.nrows, ds.spec.dim.min(512), id as u64)
}

/// Fig. 10: all kernels on the SpMM datasets, normalized to cuSPARSE
/// (plus the absolute µs, which is Table XVI's RTX 3090 block, and the
/// CPU comparison of §VI-B1).
pub fn fig10(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(SputnikSpmm),
        Box::new(GeSpmm),
        Box::new(TcGnnSpmm::default()),
        Box::new(DtcSpmm::default()),
        Box::new(HcSpmm::default()),
    ];
    let mut t = Table::new(&[
        "Dataset",
        "cuSPARSE(us)",
        "Sputnik",
        "GE-SpMM",
        "TC-GNN",
        "DTC-SpMM",
        "HC-SpMM",
        "CPU(x)",
    ]);
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); kernels.len()];
    let mut cpu_speedups = Vec::new();
    for id in DatasetId::ALL {
        let x = features_for(cache, id);
        let a = cache.get(id).adj.clone();
        let base = CusparseSpmm.spmm_run(&a, &x, dev).time_ms;
        let mut cells = vec![id.code().to_string(), f3(base * 1e3)];
        let mut hc_ms = base;
        for (k, kern) in kernels.iter().enumerate() {
            let ms = kern.spmm_run(&a, &x, dev).time_ms;
            speedups[k].push(base / ms);
            cells.push(format!("{:.2}x", base / ms));
            if k + 1 == kernels.len() {
                hc_ms = ms; // HC-SpMM is last; reuse its measurement
            }
        }
        let cpu = cpu_spmm_time_ms(&a, &x);
        cpu_speedups.push(cpu / hc_ms);
        cells.push(format!("{:.0}x", cpu / hc_ms));
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string(), "-".into()];
    let names = ["Sputnik", "GE-SpMM", "TC-GNN", "DTC-SpMM", "HC-SpMM"];
    let mut bars = Vec::new();
    for (s, name) in speedups.iter().zip(names) {
        let g = geomean(s);
        cells.push(format!("{g:.2}x"));
        bars.push((name.to_string(), g));
    }
    cells.push(format!("{:.0}x", geomean(&cpu_speedups)));
    t.row(cells);
    format!(
        "Fig. 10: speedup over cuSPARSE (higher is better); CPU(x) = PyTorch-CPU time / HC-SpMM time\n{}\ngeomean speedup vs cuSPARSE:\n{}",
        t.render(),
        bar_chart(&bars, 40)
    )
}

/// Table X: kernel runtimes on synthetic block-sparse matrices of varying
/// in-block sparsity (Appendix D), in µs.
pub fn table10(dev: &DeviceSpec) -> String {
    let kernels: Vec<Box<dyn SpmmKernel>> = vec![
        Box::new(SputnikSpmm),
        Box::new(GeSpmm),
        Box::new(TcGnnSpmm::default()),
        Box::new(DtcSpmm::default()),
        Box::new(HcSpmm::default()),
    ];
    let mut t = Table::new(&["Method", "80%", "85%", "90%", "95%"]);
    let sparsities = [0.80, 0.85, 0.90, 0.95];
    let mats: Vec<_> = sparsities
        .iter()
        .map(|&s| gen::block_sparse(512, s, 7))
        .collect();
    for kern in &kernels {
        let mut cells = vec![kern.name().to_string()];
        for m in &mats {
            let x = DenseMatrix::random_features(m.ncols, 32, 9);
            cells.push(f3(kern.spmm_run(m, &x, dev).time_ms * 1e3));
        }
        t.row(cells);
    }
    format!(
        "Table X: runtime (us) on synthetic matrices by sparsity\n{}",
        t.render()
    )
}

/// Table XVI: HC-SpMM and baselines across the three GPU presets, µs.
pub fn table16(cache: &mut DatasetCache) -> String {
    let mut t = Table::new(&[
        "Dataset", "GPU", "Sputnik", "GE-SpMM", "TC-GNN", "DTC-SpMM", "cuSPARSE", "HC-SpMM",
    ]);
    for id in DatasetId::ALL {
        let x = features_for(cache, id);
        let a = cache.get(id).adj.clone();
        for kind in DeviceKind::ALL {
            let dev = DeviceSpec::new(kind);
            let us = |k: &dyn SpmmKernel| f3(k.spmm_run(&a, &x, &dev).time_ms * 1e3);
            t.row(vec![
                id.code().into(),
                kind.name().into(),
                us(&SputnikSpmm),
                us(&GeSpmm),
                us(&TcGnnSpmm::default()),
                us(&DtcSpmm::default()),
                us(&CusparseSpmm),
                us(&HcSpmm::default()),
            ]);
        }
    }
    format!(
        "Table XVI: SpMM overhead (us) across GPU architectures\n{}",
        t.render()
    )
}

/// Table VII: SpMM time (µs) across FP types — Sputnik (half-optimized),
/// TC-GNN (half), HC-SpMM (half and bfloat16).
pub fn table07(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&[
        "Dataset",
        "Sputnik(half)",
        "TC-GNN(half)",
        "Tile-CSR(half)",
        "HC-SpMM(half)",
        "HC-SpMM(bfloat)",
    ]);
    for id in DatasetId::SPMM_SET {
        let x = features_for(cache, id);
        let a = cache.get(id).adj.clone();
        let us = |k: &dyn SpmmKernel| f3(k.spmm_run(&a, &x, dev).time_ms * 1e3);
        t.row(vec![
            id.code().into(),
            us(&SputnikHalfSpmm),
            us(&TcGnnSpmm {
                precision: Precision::Fp16,
            }),
            us(&TileCsrSpmm),
            us(&HcSpmm::with_precision(Precision::Fp16)),
            us(&HcSpmm::with_precision(Precision::Bf16)),
        ]);
    }
    format!(
        "Table VII: SpMM overhead (us) on reduced-precision FP types\n{}",
        t.render()
    )
}

/// Table XI: preprocessing overhead (ms) — DTC-SpMM, TC-GNN, HC-SpMM.
pub fn table11(cache: &mut DatasetCache, dev: &DeviceSpec) -> String {
    let mut t = Table::new(&["Dataset", "DTC-SpMM", "TC-GNN", "HC-SpMM", "HC pre/SpMM"]);
    for id in DatasetId::ABLATION_SET {
        let x = features_for(cache, id);
        let a = cache.get(id).adj.clone();
        let hc = HcSpmm::default();
        let pre = hc.preprocess(&a, dev);
        let spmm = hc.spmm_preprocessed(&pre, &a, &x, dev);
        t.row(vec![
            id.code().into(),
            f3(DtcSpmm::default().preprocess_run(&a, dev).time_ms),
            f3(TcGnnSpmm::default().preprocess_run(&a, dev).time_ms),
            f3(pre.run.time_ms),
            format!("{:.1}x", pre.run.time_ms / spmm.run.time_ms),
        ]);
    }
    format!("Table XI: preprocessing overhead (ms)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> DatasetCache {
        DatasetCache::with_scale(512)
    }

    #[test]
    fn hc_wins_geomean_in_fig10() {
        let mut cache = small_cache();
        let dev = DeviceSpec::rtx3090();
        let out = fig10(&mut cache, &dev);
        let geo: Vec<f64> = out
            .lines()
            .find(|l| l.trim_start().starts_with("geomean"))
            .unwrap()
            .split_whitespace()
            .filter_map(|w| w.trim_end_matches('x').parse().ok())
            .collect();
        // Columns: Sputnik, GE, TC-GNN, DTC, HC, CPU — HC (index 4) must be
        // the largest GPU-kernel speedup.
        let hc = geo[4];
        for (i, g) in geo.iter().take(5).enumerate() {
            assert!(hc >= *g, "HC geomean {hc} below column {i} ({g})");
        }
        assert!(hc > 1.0, "HC must beat cuSPARSE: {hc}");
    }

    #[test]
    fn table10_hc_best_at_every_sparsity() {
        let dev = DeviceSpec::rtx3090();
        let out = table10(&dev);
        let rows: Vec<Vec<f64>> = out
            .lines()
            .filter(|l| {
                l.contains("Sputnik")
                    || l.contains("GE-SpMM")
                    || l.contains("TC-GNN")
                    || l.contains("DTC")
                    || l.contains("HC-SpMM")
            })
            .map(|l| {
                l.split_whitespace()
                    .filter_map(|w| w.parse().ok())
                    .collect()
            })
            .collect();
        assert_eq!(rows.len(), 5);
        let hc = &rows[4];
        for col in 0..4 {
            for r in rows.iter().take(4) {
                // These block matrices sit right at the selector's decision
                // boundary, where the ~95 %-accurate model misassigns a few
                // windows: allow HC within 5 % of the best kernel.
                assert!(
                    hc[col] <= r[col] * 1.05,
                    "HC not within 5% of best at sparsity col {col}: {hc:?} vs {r:?}"
                );
            }
        }
    }
}
