//! # bench — experiment harness for every table and figure (§VI + appendix)
//!
//! Each experiment lives in [`experiments`] as a `run()` function that
//! returns its formatted table; the `src/bin/*` binaries are thin wrappers.
//! `cargo run --release -p bench --bin run_all` regenerates everything and
//! is the source of the numbers recorded in `EXPERIMENTS.md`.

pub mod experiments;
pub mod harness;
pub mod metrics;
