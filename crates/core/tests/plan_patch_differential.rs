//! Differential equivalence: a patched plan must be indistinguishable
//! from a plan prepared from scratch on the mutated graph.
//!
//! [`Plan::patch`] re-condenses only the windows a delta dirties and
//! splices cached block costs for the untouched ones, so the property
//! worth money is that none of that thrift is observable: for random
//! graphs and random valid deltas, across all four kernel families, the
//! patched plan has the identical fingerprint, checkpoint state, window
//! partition and selector choices as `Plan::prepare` on the mutated
//! graph — and executes to the bit-identical output with the
//! bit-identical simulated time (which prices every block cost, so a
//! single mis-spliced cost entry would show up here).

use gpu_sim::DeviceSpec;
use graph_sparse::{Coo, Csr, DeltaCsr, DenseMatrix};
use hc_core::{KernelFamily, Plan, PlanSpec};
use proptest::prelude::*;

fn arb_entries() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f32)>)> {
    (8usize..80, 8usize..80).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r as u32, 0..c as u32, -5.0f32..5.0), 1..400)
            .prop_map(move |es| (r, c, es))
    })
}

/// A graph plus a valid delta against it, same recipe as the sparse-side
/// property tests: a mask picks edges to delete, candidate cells not
/// already present become inserts.
fn arb_case() -> impl Strategy<Value = (Csr, DeltaCsr)> {
    arb_entries().prop_flat_map(|(r, c, es)| {
        let a = Coo::from_triples(r, c, es).to_csr();
        let nnz = a.nnz().max(1);
        (
            Just(a),
            proptest::collection::vec(0u32..2, nnz),
            proptest::collection::vec((0..r as u32, 0..c as u32, 0.5f32..2.0), 0..10),
        )
            .prop_map(|(a, mask, candidates)| {
                let mut deletes = Vec::new();
                let mut k = 0;
                for row in 0..a.nrows {
                    for &col in a.row_cols(row) {
                        if mask.get(k).copied().unwrap_or(0) == 1 {
                            deletes.push((row as u32, col));
                        }
                        k += 1;
                    }
                }
                let mut seen = std::collections::HashSet::new();
                let mut inserts = Vec::new();
                for (ri, ci, v) in candidates {
                    if !a.row_cols(ri as usize).contains(&ci) && seen.insert((ri, ci)) {
                        inserts.push((ri, ci, v));
                    }
                }
                let delta = DeltaCsr::new(a.nrows, a.ncols, inserts, deletes)
                    .expect("constructed valid against the base");
                (a, delta)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn patched_plan_is_indistinguishable_from_fresh_prepare(
        (a, delta) in arb_case(),
    ) {
        let dev = DeviceSpec::rtx3090();
        let b = delta.apply(&a).expect("valid against its base");
        let x = DenseMatrix::random_features(a.ncols, 8, 5);
        for family in [
            KernelFamily::Straightforward,
            KernelFamily::Cuda,
            KernelFamily::Tensor,
            KernelFamily::Hybrid,
        ] {
            let spec = PlanSpec { family, use_loa: false };
            let base = Plan::prepare(&a, spec, &dev);
            // Warm the workspace so the patch exercises cost splicing,
            // not just the rebuild path.
            base.execute(&a, &x, &dev);
            let patched = base.patch(&a, &delta, &dev).expect("valid delta patches");
            let fresh = Plan::prepare(&b, spec, &dev);

            prop_assert_eq!(patched.fingerprint, fresh.fingerprint);
            prop_assert_eq!(&patched.fingerprint_state, &fresh.fingerprint_state);
            prop_assert_eq!(&patched.pre.partition, &fresh.pre.partition);
            prop_assert_eq!(&patched.pre.choices, &fresh.pre.choices);

            // The partition equality above compares windows structurally;
            // spell out the compressed-metadata half of the claim: the
            // patch path re-encodes only dirty windows, so every window's
            // column stream and occupancy bitmaps — and therefore the
            // plan's size accounting — must come out byte-identical to a
            // from-scratch condense.
            for (pw, fw) in patched
                .pre
                .partition
                .windows
                .iter()
                .zip(&fresh.pre.partition.windows)
            {
                prop_assert_eq!(pw.meta.parts(), fw.meta.parts());
            }
            prop_assert_eq!(patched.approx_bytes(), fresh.approx_bytes());

            let got = patched.execute(&b, &x, &dev);
            let want = fresh.execute(&b, &x, &dev);
            prop_assert_eq!(&got.z, &want.z, "family {:?}: outputs differ", family);
            prop_assert_eq!(
                got.run.time_ms.to_bits(),
                want.run.time_ms.to_bits(),
                "family {:?}: simulated time differs — a block cost was mis-spliced",
                family
            );
        }
    }
}
