//! Fault injection: seeded kernel mutants that each sanitizer check must
//! catch — and catch *alone*.
//!
//! Each mutant starts from the real CUDA-kernel window trace of a generated
//! graph and applies one targeted defect: a dropped barrier, a shared-memory
//! overflow, a skewed `BlockCost` counter, or a cross-warp shared-memory
//! race. The test then asserts that exactly the intended check fires and the
//! other three stay silent, so a regression that makes one analysis
//! over-eager (or blind) shows up immediately. The unmutated trace is
//! checked clean first, proving the mutation — not the baseline — is what
//! trips the check.

use gpu_sim::{
    sanitize_block, BlockCost, BlockTrace, CheckKind, DeviceSpec, SanitizerConfig, WarpOp,
};
use graph_sparse::{gen, RowWindowPartition};
use hc_core::CudaSpmm;

const DIM: usize = 16;

/// Cost + trace of a real multi-warp CUDA-kernel row window.
fn real_pair(dev: &DeviceSpec) -> (BlockCost, BlockTrace) {
    let a = gen::community(512, 4_000, 16, 0.9, 7);
    let part = RowWindowPartition::build(&a);
    let w = part
        .windows
        .iter()
        .find(|w| w.rows >= 2 && w.nnz >= 8)
        .expect("community graph has a dense-enough window");
    let k = CudaSpmm::optimized();
    (
        k.window_block_cost(w.nnz, w.nnz_cols(), w.rows, DIM, dev),
        k.window_trace(w.nnz, w.nnz_cols(), w.rows, DIM, dev),
    )
}

/// Assert that `check` fired and the other three checks stayed silent.
fn assert_only(trace: &BlockTrace, cost: &BlockCost, dev: &DeviceSpec, check: CheckKind) {
    let report = sanitize_block(trace, Some(cost), dev, &SanitizerConfig::default());
    assert!(
        report.findings_for(check).next().is_some(),
        "{} missed its seeded defect",
        check.name()
    );
    for other in CheckKind::ALL {
        if other != check {
            let stray: Vec<_> = report.findings_for(other).collect();
            assert!(
                stray.is_empty(),
                "{} fired on a defect seeded for {}: {:?}",
                other.name(),
                check.name(),
                stray
            );
        }
    }
}

#[test]
fn baseline_window_is_clean() {
    let dev = DeviceSpec::rtx3090();
    let (cost, trace) = real_pair(&dev);
    let report = sanitize_block(&trace, Some(&cost), &dev, &SanitizerConfig::default());
    assert!(report.is_clean(), "unmutated trace: {:?}", report.findings);
    assert!(trace.warps.len() >= 2, "mutants need at least two warps");
    assert!(trace.shared_alloc_words > 0, "mutants need a shared buffer");
}

#[test]
fn dropped_barrier_trips_synccheck_only() {
    let dev = DeviceSpec::rtx3090();
    let (cost, mut trace) = real_pair(&dev);
    // Warp 0 skips the epilogue __syncthreads every other warp executes.
    for w in trace.warps.iter_mut().skip(1) {
        w.ops.push(WarpOp::Barrier);
    }
    assert_only(&trace, &cost, &dev, CheckKind::SyncCheck);
}

#[test]
fn shared_overflow_trips_memcheck_only() {
    let dev = DeviceSpec::rtx3090();
    let (cost, mut trace) = real_pair(&dev);
    // One lane writes the word just past the declared allocation. A single
    // extra access stays inside the conformance lint's absolute tolerance,
    // so only the bounds check may fire.
    let past_end = trace.shared_alloc_words;
    trace.warps[0].ops.push(WarpOp::shared_write(past_end, 1));
    assert_only(&trace, &cost, &dev, CheckKind::MemCheck);
}

#[test]
fn skewed_cost_counter_trips_conformance_only() {
    let dev = DeviceSpec::rtx3090();
    let (mut cost, trace) = real_pair(&dev);
    // The kernel bills far more FMA issues than its trace performs —
    // the classic copy-paste error in an analytic cost term.
    cost.cuda_fma_issues += 1_000;
    assert_only(&trace, &cost, &dev, CheckKind::CostConformance);
}

#[test]
fn cross_warp_race_trips_racecheck_only() {
    let dev = DeviceSpec::rtx3090();
    let (cost, mut trace) = real_pair(&dev);
    // Warps 0 and 1 both write shared word 0 in the final epoch with no
    // separating barrier: a write/write hazard. The word is inside the
    // allocation and the two extra accesses stay inside the conformance
    // tolerance, so only racecheck may fire.
    trace.warps[0].ops.push(WarpOp::shared_write(0, 1));
    trace.warps[1].ops.push(WarpOp::shared_write(0, 1));
    assert_only(&trace, &cost, &dev, CheckKind::RaceCheck);
}
